//! # wsrf-grid
//!
//! Umbrella crate for the WSRF / WS-Notification stack and the UVaCG
//! remote job execution testbed — a Rust reproduction of *"Exploiting
//! WSRF and WSRF.NET for Remote Job Execution in Grid Environments"*
//! (Wasson & Humphrey, IPPS 2005).
//!
//! The layers, bottom to top:
//!
//! | crate | provides |
//! |---|---|
//! | [`xml`] | namespace-aware XML infoset, parser, writer, XPath-lite |
//! | [`clock`] | the virtual clock every simulated subsystem shares |
//! | [`obs`] | lock-cheap metrics: counters, log-bucket histograms, virtual/real timers |
//! | [`soap`] | SOAP envelopes, WS-Addressing EPRs, WS-BaseFaults |
//! | [`security`] | SHA-256 / HMAC / ChaCha20 / toy PKI / WS-Security tokens |
//! | [`transport`] | simulated campus network + real HTTP and `soap.tcp` |
//! | [`wsrf`] | the WSRF framework: resource properties, lifetime, service groups, the container |
//! | [`notification`] | WS-BaseNotification, WS-Topics, the broker |
//! | [`node`] | simulated machines: filesystem, PS CPU model, ProcSpawn |
//! | [`testbed`] | the paper's services: FSS, ES, NIS, Scheduler, client |
//!
//! ## Quickstart
//!
//! ```
//! use wsrf_grid::prelude::*;
//! use std::time::Duration;
//!
//! // Boot a 4-machine campus grid on a manual virtual clock.
//! let grid = CampusGrid::build(GridConfig::with_machines(4), Clock::manual());
//! let client = grid.client("demo");
//!
//! // A one-job job set: 2 CPU-seconds, one output file.
//! client.put_file("C:\\prog.exe",
//!     JobProgram::compute(2.0).writing("result.dat", 256).to_manifest());
//! let spec = JobSetSpec::new("demo-set")
//!     .job(JobSpec::new("job1", FileRef::parse("local://C:\\prog.exe").unwrap())
//!         .output("result.dat"));
//!
//! let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
//! grid.clock.advance(Duration::from_secs(10));
//! assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
//! assert_eq!(handle.fetch_output("job1", "result.dat").unwrap().len(), 256);
//! ```

pub use simclock as clock;
pub use ws_notification as notification;
pub use wsrf_core as wsrf;
pub use wsrf_obs as obs;
pub use wsrf_security as security;
pub use wsrf_soap as soap;
pub use wsrf_transport as transport;
pub use wsrf_xml as xml;

pub use grid_node as node;
pub use uvacg as testbed;

/// Everything a testbed user typically needs.
pub mod prelude {
    pub use grid_node::{JobProgram, Machine, MachineSpec};
    pub use simclock::{Clock, SimTime};
    pub use uvacg::{
        AuthorityStatus, CampusGrid, Client, EventPump, FastestAvailable, FileRef, GridCatalog,
        GridConfig, JobSetHandle, JobSetOutcome, JobSetSpec, JobSpec, LeastLoaded, MachineOutcome,
        MetricsFeedback, MetricsSource, MonitorService, NodeSnapshot, OutcomeKind, PenaltyRow,
        Random, RemoteEvent, RoundRobin, Scheduler, SchedulingPolicy, Standby,
    };
    pub use wsrf_core::DurableStore;
    pub use wsrf_obs::{
        MetricsRegistry, MetricsSnapshot, ObsConfig, TraceConfig, TraceSnapshot, Tracer,
    };
    pub use wsrf_soap::{BaseFault, EndpointReference, Envelope, SoapFault, TraceContext};
    pub use wsrf_transport::{InProcNetwork, LinkProfile, NetConfig};
    pub use wsrf_xml::Element;
}
