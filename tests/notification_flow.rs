//! WS-Notification behaviour over live job-set traffic: topic
//! filtering, pause/resume mid-run, direct-vs-brokered parity, and
//! listener callback wiring.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wsrf_grid::notification::{broker, NotificationListener, TopicExpression};
use wsrf_grid::prelude::*;

fn grid() -> CampusGrid {
    CampusGrid::build(GridConfig::with_machines(2), Clock::manual())
}

fn submit_n_jobs(_grid: &CampusGrid, client: &Client, n: usize, cpu: f64) -> JobSetHandle {
    client.put_file("C:\\p.exe", JobProgram::compute(cpu).to_manifest());
    let mut spec = JobSetSpec::new("batch");
    for i in 0..n {
        spec = spec.job(JobSpec::new(
            format!("j{i}"),
            FileRef::parse("local://C:\\p.exe").unwrap(),
        ));
    }
    client.submit(&spec, "griduser", "gridpass").unwrap()
}

#[test]
fn third_party_can_subscribe_to_exit_events_only() {
    let grid = grid();
    let client = grid.client("c");
    // An auditor subscribing to only the exit subtopics of everything.
    let auditor = NotificationListener::register(&grid.net, "inproc://audit/listener");
    broker::subscribe(
        &grid.net,
        &grid.broker,
        &auditor.epr(),
        &TopicExpression::full("//exit"),
        None,
    )
    .unwrap();
    let handle = submit_n_jobs(&grid, &client, 3, 1.0);
    grid.clock.advance(Duration::from_secs(10));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    assert_eq!(auditor.count(), 3, "exactly the three exit events");
    assert!(auditor
        .received()
        .iter()
        .all(|m| m.topic.to_string().ends_with("/exit")));
}

#[test]
fn paused_subscription_misses_events_and_resumes() {
    let grid = grid();
    let client = grid.client("c");
    let watcher = NotificationListener::register(&grid.net, "inproc://w/listener");
    let sub = broker::subscribe(
        &grid.net,
        &grid.broker,
        &watcher.epr(),
        &TopicExpression::full("//"),
        None,
    )
    .unwrap();

    let handle = submit_n_jobs(&grid, &client, 1, 5.0);
    let before = watcher.count();
    assert!(before >= 2, "dir + started seen: {before}");

    // Pause across the exit.
    broker::set_subscription_paused(&grid.net, &sub, true).unwrap();
    grid.clock.advance(Duration::from_secs(10));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    assert_eq!(watcher.count(), before, "paused: no exit/completed events");

    // Resume and observe a second run.
    broker::set_subscription_paused(&grid.net, &sub, false).unwrap();
    let handle2 = submit_n_jobs(&grid, &client, 1, 1.0);
    grid.clock.advance(Duration::from_secs(5));
    assert_eq!(handle2.outcome(), Some(JobSetOutcome::Completed));
    assert!(watcher.count() > before);
}

#[test]
fn callbacks_fire_during_live_runs() {
    let grid = grid();
    let client = grid.client("c");
    let exits = Arc::new(AtomicUsize::new(0));
    let e = exits.clone();
    client
        .listener()
        .on_topic(TopicExpression::full("//exit"), move |_| {
            e.fetch_add(1, Ordering::SeqCst);
        });
    let handle = submit_n_jobs(&grid, &client, 4, 1.0);
    grid.clock.advance(Duration::from_secs(20));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    assert_eq!(exits.load(Ordering::SeqCst), 4);
}

#[test]
fn producer_reference_lets_consumers_poll_the_job() {
    let grid = grid();
    let client = grid.client("c");
    let handle = submit_n_jobs(&grid, &client, 1, 100.0);
    // The "started" event's producer reference is the job EPR itself —
    // "this will ... allow either to poll the job for its status".
    let started = handle
        .events()
        .into_iter()
        .find(|m| m.topic.to_string().ends_with("/started"))
        .unwrap();
    let producer = started.producer.unwrap();
    let status = wsrf_grid::testbed::es::job_status(&grid.net, &producer).unwrap();
    assert_eq!(status, "Running");
}

#[test]
fn two_clients_receive_only_their_topics() {
    let grid = grid();
    let c1 = grid.client("one");
    let c2 = grid.client("two");
    let h1 = submit_n_jobs(&grid, &c1, 2, 1.0);
    let h2 = submit_n_jobs(&grid, &c2, 2, 1.0);
    grid.clock.advance(Duration::from_secs(20));
    assert_eq!(h1.outcome(), Some(JobSetOutcome::Completed));
    assert_eq!(h2.outcome(), Some(JobSetOutcome::Completed));
    assert!(c1
        .listener()
        .received()
        .iter()
        .all(|m| m.topic.to_string().starts_with(&h1.topic)));
    assert!(c2
        .listener()
        .received()
        .iter()
        .all(|m| m.topic.to_string().starts_with(&h2.topic)));
    assert_ne!(h1.topic, h2.topic, "unique topic per job set");
}

#[test]
fn broker_delivery_counts_scale_with_subscribers() {
    let grid = grid();
    let client = grid.client("c");
    // Add 5 wildcard listeners; every event then fans out 7 ways
    // (client + scheduler + 5).
    for i in 0..5 {
        let l = NotificationListener::register(&grid.net, &format!("inproc://extra{i}/l"));
        broker::subscribe(
            &grid.net,
            &grid.broker,
            &l.epr(),
            &TopicExpression::full("//"),
            None,
        )
        .unwrap();
    }
    let (_, before_oneways, _, _) = grid.net.metrics.snapshot();
    let handle = submit_n_jobs(&grid, &client, 1, 1.0);
    grid.clock.advance(Duration::from_secs(5));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    let (_, after_oneways, _, _) = grid.net.metrics.snapshot();
    // 4 events (dir, started, exit, completed) × 7 consumers plus the
    // 4 publisher→broker messages and the FSS upload pair.
    assert!(
        after_oneways - before_oneways >= 4 * 7 + 4,
        "fanout traffic: {}",
        after_oneways - before_oneways
    );
}

#[test]
fn direct_producer_matches_brokered_delivery_semantics() {
    // The same topic expression filters identically via the direct
    // SubscriptionManager and via the broker.
    let grid = grid();
    let direct = wsrf_grid::notification::NotificationProducer::new(
        EndpointReference::service("inproc://p/svc"),
        grid.net.clone(),
    );
    let l1 = NotificationListener::register(&grid.net, "inproc://d1/l");
    let l2 = NotificationListener::register(&grid.net, "inproc://d2/l");
    direct
        .subscriptions
        .subscribe(l1.epr(), TopicExpression::full("a//"));
    broker::subscribe(
        &grid.net,
        &grid.broker,
        &l2.epr(),
        &TopicExpression::full("a//"),
        None,
    )
    .unwrap();

    for topic in ["a/x", "a/y/z", "b/x"] {
        let payload = wsrf_grid::xml::Element::local("E").text(topic);
        direct.notify(topic, payload.clone());
        broker::publish(
            &grid.net,
            &grid.broker,
            &wsrf_grid::notification::NotificationMessage::new(topic, payload),
        )
        .unwrap();
    }
    let direct_topics: Vec<String> = l1.received().iter().map(|m| m.topic.to_string()).collect();
    let brokered_topics: Vec<String> = l2.received().iter().map(|m| m.topic.to_string()).collect();
    assert_eq!(direct_topics, brokered_topics);
    assert_eq!(direct_topics, ["a/x", "a/y/z"]);
}
