//! The monitoring-plane acceptance scenario: exposition round-trips,
//! bounded event rings, SLO burn-rate on the virtual clock, and
//! cross-authority aggregation.
//!
//! The grid already *measures* itself (observability.rs); this suite
//! proves the measurements travel: out the HTTP exposition endpoints,
//! through the structured event log onto the `monitor/events` topic,
//! into `{UVACG}Health` resource properties, and finally into one
//! [`GridCatalog`] spanning two authorities.

use std::sync::Arc;
use std::time::Duration;

use wsrf_grid::obs;
use wsrf_grid::prelude::*;
use wsrf_grid::testbed::monitor::parse_flat_metrics;
use wsrf_grid::transport::http::{http_get, HttpLimits, HttpSoapServer};
use wsrf_grid::transport::FnEndpoint;
use wsrf_grid::wsrf::proxy::ResourceProxy;

/// Submit `jobs` one-job sets of `secs` CPU-seconds and run the clock
/// until they settle.
fn run_jobs(grid: &CampusGrid, client_id: &str, jobs: usize, secs: f64) -> Vec<JobSetHandle> {
    let client = grid.client(client_id);
    client.put_file(
        "C:\\work.exe",
        JobProgram::compute(secs)
            .writing("out.dat", 32)
            .to_manifest(),
    );
    let handles: Vec<JobSetHandle> = (0..jobs)
        .map(|i| {
            let spec = JobSetSpec::new(format!("{client_id}-{i}")).job(
                JobSpec::new("crunch", FileRef::parse("local://C:\\work.exe").unwrap())
                    .output("out.dat"),
            );
            client
                .submit(&spec, "griduser", "gridpass")
                .expect("submit")
        })
        .collect();
    for _ in 0..120 {
        if handles.iter().all(|h| h.outcome().is_some()) {
            break;
        }
        grid.clock.advance(Duration::from_secs(1));
    }
    handles
}

/// Submit one job whose program exits non-zero, and run it to failure.
fn run_doomed(grid: &CampusGrid, client_id: &str) -> JobSetHandle {
    let client = grid.client(client_id);
    client.put_file(
        "C:\\bad.exe",
        JobProgram::compute(0.5).exiting(9).to_manifest(),
    );
    let spec = JobSetSpec::new(format!("{client_id}-doomed")).job(JobSpec::new(
        "boom",
        FileRef::parse("local://C:\\bad.exe").unwrap(),
    ));
    let handle = client
        .submit(&spec, "griduser", "gridpass")
        .expect("submit");
    for _ in 0..30 {
        if handle.outcome().is_some() {
            break;
        }
        grid.clock.advance(Duration::from_secs(1));
    }
    assert!(
        matches!(handle.outcome(), Some(JobSetOutcome::Failed(_))),
        "doomed set did not fail: {:?}",
        handle.outcome()
    );
    handle
}

/// A monitored HTTP server exposing `grid`'s registry (the SOAP
/// endpoint is a stub — only the GET surface is under test).
fn expose(grid: &CampusGrid) -> HttpSoapServer {
    HttpSoapServer::start_monitored(
        Arc::new(FnEndpoint::new("echo", Some)),
        &grid.metrics,
        grid.clock.clone(),
        HttpLimits::default(),
    )
    .expect("bind exposition server")
}

#[test]
fn exposition_round_trips_live_grid_metrics() {
    let grid = CampusGrid::build(
        GridConfig::with_machines(2).with_tracing(TraceConfig::enabled()),
        Clock::manual(),
    );
    let handles = run_jobs(&grid, "scientist", 2, 2.0);
    assert!(handles
        .iter()
        .all(|h| h.outcome() == Some(JobSetOutcome::Completed)));
    let server = expose(&grid);

    // Prometheus text: dotted registry names flatten to underscores,
    // histograms grow the standard _count/_sum series.
    let (code, prom) = http_get(&server.authority(), "/metrics").unwrap();
    assert_eq!(code, 200);
    assert!(prom.contains("scheduler_makespan_ns_count 2"), "{prom}");
    assert!(prom.contains("container_Scheduler_dispatches"), "{prom}");

    // The JSON endpoint renders the *identical* flat form the
    // in-process snapshot writes — one parser serves both paths.
    let (code, json) = http_get(&server.authority(), "/metrics.json").unwrap();
    assert_eq!(code, 200);
    let scraped = parse_flat_metrics(&json);
    let local = parse_flat_metrics(&grid.metrics_snapshot().to_json());
    assert_eq!(scraped["scheduler.makespan_ns"].count, 2);
    for key in ["scheduler.makespan_ns", "scheduler.step.03_es_run_ns"] {
        assert_eq!(
            scraped[key], local[key],
            "HTTP and in-process diverge on {key}"
        );
    }

    // Healthy grid → 200 with every machine's SLO window inside budget.
    let (code, hz) = http_get(&server.authority(), "/healthz").unwrap();
    assert_eq!(code, 200);
    assert!(hz.contains("\"status\": \"ok\""), "{hz}");
    // Placement picked one machine; whichever it was, its window shows.
    assert!(hz.contains("machine0"), "{hz}");
    assert!(hz.contains("\"service\": \"Scheduler\""), "{hz}");

    // Trace export: a root span recorded on the same registry comes
    // back in Chrome trace format under its hex id.
    let root = grid
        .metrics
        .tracer()
        .start_root("probe", "Monitor", &grid.clock);
    let trace_id = root.context().trace_id;
    drop(root);
    let (code, trace) =
        http_get(&server.authority(), &format!("/traces/{trace_id:x}.json")).unwrap();
    assert_eq!(code, 200);
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    assert!(trace.contains("\"name\": \"probe\""), "{trace}");
}

#[test]
fn event_log_rings_stay_bounded_under_grid_load() {
    // Retain only 2 events per severity: four failed job sets must
    // overflow the warn ring without disturbing sequence order.
    let grid = CampusGrid::build(
        GridConfig::with_machines(1).with_obs(ObsConfig::enabled().with_event_capacity(2)),
        Clock::manual(),
    );
    for i in 0..4 {
        run_doomed(&grid, &format!("chaos-{i}"));
    }

    let log = grid.metrics.events();
    assert_eq!(log.capacity(), 2);
    let all = log.all();
    let warns: Vec<_> = all
        .iter()
        .filter(|e| e.severity == obs::Severity::Warn)
        .collect();
    assert_eq!(warns.len(), 2, "warn ring must hold exactly its capacity");
    assert!(
        warns.iter().all(|e| e.kind == obs::EventKind::JobFailed),
        "{warns:?}"
    );
    // Four failures emitted, two retained — the drop was counted, the
    // sequence stayed global and monotone.
    assert!(log.last_seq() >= 4);
    assert!(
        all.windows(2).all(|w| w[0].seq < w[1].seq),
        "sequence order"
    );
    let snap = grid.metrics_snapshot();
    assert_eq!(snap.counter("events.job_failed"), Some(4));
    assert!(snap.counter("events.dropped") >= Some(2));
    // An incremental reader starting past the tail sees nothing.
    assert!(log.since(log.last_seq()).is_empty());
}

#[test]
fn slo_burn_rate_follows_the_virtual_window() {
    let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
    run_doomed(&grid, "chaos");

    // One failure against a 99.9% objective burns far past budget.
    let now = grid.clock.now().as_nanos();
    let health = grid
        .metrics
        .slo()
        .health("machine01", now)
        .expect("machine01 tracked");
    assert!(health.total >= 1);
    assert!(health.burn_rate > 1.0, "burn {}", health.burn_rate);
    assert!(!health.is_healthy());

    // Let the rolling window (8 × 30 virtual seconds) pass, then do
    // good work: the failure ages out and the window recovers.
    grid.clock.advance(Duration::from_secs(300));
    let handles = run_jobs(&grid, "scientist", 2, 1.0);
    assert!(handles
        .iter()
        .all(|h| h.outcome() == Some(JobSetOutcome::Completed)));
    let now = grid.clock.now().as_nanos();
    let health = grid.metrics.slo().health("machine01", now).unwrap();
    assert!(
        health.is_healthy(),
        "burn {} after recovery",
        health.burn_rate
    );
    assert_eq!(health.burn_rate, 0.0);
    assert_eq!(health.ok, health.total);
    assert!(health.p99_ns > 0, "virtual makespans feed the window p99");
}

#[test]
fn monitor_aggregates_registry_and_http_authorities() {
    // Two campuses on one clock. campus-a is read in-process; campus-b
    // is scraped over real HTTP from its exposition endpoint — the
    // catalog must not care which path a row came from.
    let clock = Clock::manual();
    let campus_a = CampusGrid::build(GridConfig::with_machines(2), clock.clone());
    let campus_b = CampusGrid::build(GridConfig::with_machines(1), clock.clone());
    let server_b = expose(&campus_b);

    let monitor = MonitorService::new(clock.clone());
    monitor
        .add_authority(
            "campus-a",
            &campus_a.net,
            &campus_a.broker,
            MetricsSource::Registry(campus_a.metrics.clone()),
        )
        .unwrap();
    monitor
        .add_authority(
            "campus-b",
            &campus_b.net,
            &campus_b.broker,
            MetricsSource::Http(server_b.authority()),
        )
        .unwrap();
    assert_eq!(monitor.authority_count(), 2);

    let ok = run_jobs(&campus_a, "ops-a", 2, 2.0);
    assert!(ok
        .iter()
        .all(|h| h.outcome() == Some(JobSetOutcome::Completed)));
    run_doomed(&campus_b, "chaos");
    assert!(campus_a.pump_events() > 0, "campus-a had events to stream");
    assert!(campus_b.pump_events() > 0, "campus-b had events to stream");

    let catalog = monitor.poll();
    let names: Vec<&str> = catalog
        .authorities
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    assert_eq!(names, ["campus-a", "campus-b"]);

    let a = &catalog.authorities[0];
    assert_eq!(a.sets_completed, 2);
    assert_eq!(a.jobs_completed, 2);
    assert_eq!(a.jobs_in_flight, 0);
    assert!(a.dispatches > 0);
    assert_eq!(a.faults, 0);
    assert!(!a.slowest_steps.is_empty());

    // campus-b's row was digested from the scraped /metrics.json, and
    // its failed set degraded /healthz into an alert.
    let b = &catalog.authorities[1];
    assert!(b.jobs_dispatched >= 1, "HTTP row saw no dispatches");
    assert!(
        b.alerts.iter().any(|al| al.contains("SLO burn")),
        "alerts: {:?}",
        b.alerts
    );

    // The pumped events crossed the notification fabric with their
    // authority stamp intact.
    let events = monitor.events();
    assert!(events
        .iter()
        .any(|e| e.authority == "campus-b" && e.kind == "job_failed"));
    assert!(events.iter().any(|e| e.authority == "campus-a"));
    let frame = catalog.render();
    assert!(frame.contains("campus-a") && frame.contains("campus-b"));

    // The same data is a WSRF resource: campus-b's monitor resource
    // serves {UVACG}Health and {UVACG}EventLog through the standard
    // port types.
    let proxy = ResourceProxy::new(&campus_b.net, campus_b.monitor_epr());
    let doc = proxy.document().unwrap();
    let health = doc.get_local("Health").first().expect("Health RP");
    let machine = health
        .elements()
        .find(|s| s.attr_value("name") == Some("machine01"))
        .expect("machine01 health entry");
    assert_eq!(machine.attr_value("healthy"), Some("false"));
    let log = doc.get_local("EventLog").first().expect("EventLog RP");
    assert!(log.elements().next().is_some(), "EventLog RP empty");
}
