//! Dependency-structure coverage: chains, fan-outs, diamonds and
//! random-ish wide DAGs, checking both correctness (every consumer
//! sees its producer's bytes) and schedule shape (dependents never
//! start before producers finish).

use std::time::Duration;

use wsrf_grid::prelude::*;

fn grid(n: usize) -> CampusGrid {
    CampusGrid::build(GridConfig::with_machines(n), Clock::manual())
}

fn exe(client: &Client, name: &str, prog: &JobProgram) -> FileRef {
    let path = format!("C:\\{name}");
    client.put_file(&path, prog.to_manifest());
    FileRef::parse(&format!("local://{path}")).unwrap()
}

fn run_to_completion(grid: &CampusGrid, handle: &JobSetHandle, budget_secs: u64) {
    let mut elapsed = 0;
    while handle.outcome().is_none() && elapsed < budget_secs {
        grid.clock.advance(Duration::from_secs(1));
        elapsed += 1;
    }
}

#[test]
fn linear_chain_of_five() {
    let grid = grid(3);
    let client = grid.client("c");
    let mut spec = JobSetSpec::new("chain");
    for i in 0..5 {
        let mut prog = JobProgram::compute(1.0).writing(format!("out{i}"), 64);
        if i > 0 {
            prog = prog.reading("prev");
        }
        let mut job = JobSpec::new(format!("j{i}"), exe(&client, &format!("j{i}.exe"), &prog))
            .output(format!("out{i}"));
        if i > 0 {
            job = job.input(
                FileRef::parse(&format!("j{}://out{}", i - 1, i - 1)).unwrap(),
                "prev",
            );
        }
        spec = spec.job(job);
    }
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    run_to_completion(&grid, &handle, 120);
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));

    // Events prove strict ordering: jN's start never precedes
    // j(N-1)'s exit.
    let topics: Vec<String> = handle
        .events()
        .iter()
        .map(|m| m.topic.to_string())
        .collect();
    for i in 1..5 {
        let started = topics
            .iter()
            .position(|t| t.ends_with(&format!("j{i}/started")))
            .unwrap();
        let prev_exit = topics
            .iter()
            .position(|t| t.ends_with(&format!("j{}/exit", i - 1)))
            .unwrap();
        assert!(prev_exit < started, "j{i} started before j{} exited", i - 1);
    }
}

#[test]
fn fan_out_runs_in_parallel() {
    let grid = grid(4);
    let client = grid.client("c");
    let producer = exe(
        &client,
        "seed.exe",
        &JobProgram::compute(1.0).writing("seed.dat", 128),
    );
    let consumer = exe(
        &client,
        "leaf.exe",
        &JobProgram::compute(10.0).reading("seed.dat"),
    );
    let mut spec = JobSetSpec::new("fanout").job(JobSpec::new("seed", producer).output("seed.dat"));
    for i in 0..4 {
        spec = spec.job(
            JobSpec::new(format!("leaf{i}"), consumer.clone())
                .input(FileRef::parse("seed://seed.dat").unwrap(), "seed.dat"),
        );
    }
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    // Finish the seed.
    grid.clock.advance(Duration::from_secs(2));
    // All four leaves should now be started, spread over machines.
    let mut machines = std::collections::HashSet::new();
    for i in 0..4 {
        let epr = handle
            .job_epr(&format!("leaf{i}"))
            .unwrap_or_else(|| panic!("leaf{i} not started"));
        machines.insert(epr.address.clone());
    }
    assert!(machines.len() >= 3, "parallel leaves spread: {machines:?}");
    run_to_completion(&grid, &handle, 200);
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
}

#[test]
fn diamond_consumes_one_output_twice() {
    let grid = grid(2);
    let client = grid.client("c");
    let spec = JobSetSpec::new("diamond")
        .job(
            JobSpec::new(
                "top",
                exe(
                    &client,
                    "top.exe",
                    &JobProgram::compute(1.0).writing("o", 100),
                ),
            )
            .output("o"),
        )
        .job(
            JobSpec::new(
                "left",
                exe(
                    &client,
                    "left.exe",
                    &JobProgram::compute(1.0).reading("i").writing("lo", 10),
                ),
            )
            .input(FileRef::parse("top://o").unwrap(), "i")
            .output("lo"),
        )
        .job(
            JobSpec::new(
                "right",
                exe(
                    &client,
                    "right.exe",
                    &JobProgram::compute(1.0).reading("i").writing("ro", 10),
                ),
            )
            .input(FileRef::parse("top://o").unwrap(), "i")
            .output("ro"),
        )
        .job(
            JobSpec::new(
                "bottom",
                exe(
                    &client,
                    "bottom.exe",
                    &JobProgram::compute(1.0)
                        .reading("a")
                        .reading("b")
                        .writing("fin", 5),
                ),
            )
            .input(FileRef::parse("left://lo").unwrap(), "a")
            .input(FileRef::parse("right://ro").unwrap(), "b"),
        );
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    run_to_completion(&grid, &handle, 120);
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    assert_eq!(handle.fetch_output("bottom", "fin").unwrap().len(), 5);
}

#[test]
fn wide_layered_dag_completes() {
    // Three layers of four jobs; each consumes one output from the
    // layer above (staggered), on a 3-machine grid.
    let grid = grid(3);
    let client = grid.client("c");
    let mut spec = JobSetSpec::new("layers");
    for layer in 0..3 {
        for i in 0..4 {
            let name = format!("l{layer}n{i}");
            let mut prog =
                JobProgram::compute(1.0 + i as f64 * 0.5).writing(format!("{name}.out"), 32);
            let mut job;
            if layer == 0 {
                job = JobSpec::new(&name, exe(&client, &format!("{name}.exe"), &prog));
            } else {
                prog = prog.reading("up.dat");
                let dep = format!("l{}n{}", layer - 1, (i + 1) % 4);
                job = JobSpec::new(&name, exe(&client, &format!("{name}.exe"), &prog)).input(
                    FileRef::parse(&format!("{dep}://{dep}.out")).unwrap(),
                    "up.dat",
                );
            }
            job = job.output(format!("{name}.out"));
            spec = spec.job(job);
        }
    }
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    run_to_completion(&grid, &handle, 300);
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    // Every leaf output is retrievable.
    for i in 0..4 {
        let name = format!("l2n{i}");
        assert_eq!(
            handle
                .fetch_output(&name, &format!("{name}.out"))
                .unwrap()
                .len(),
            32
        );
    }
}

#[test]
fn output_content_is_byte_identical_across_staging() {
    // The bytes a consumer reads must equal what the producer's
    // program deterministically generated.
    let grid = grid(2);
    let client = grid.client("c");
    let spec = JobSetSpec::new("bytes")
        .job(
            JobSpec::new(
                "p",
                exe(
                    &client,
                    "p.exe",
                    &JobProgram::compute(0.5).writing("data.bin", 1000),
                ),
            )
            .output("data.bin"),
        )
        .job(
            JobSpec::new(
                "q",
                exe(
                    &client,
                    "q.exe",
                    &JobProgram::compute(0.5).reading("data.bin"),
                ),
            )
            .input(FileRef::parse("p://data.bin").unwrap(), "data.bin"),
        );
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    run_to_completion(&grid, &handle, 60);
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    let from_p = handle.fetch_output("p", "data.bin").unwrap();
    let in_q_dir = handle.fetch_output("q", "data.bin").unwrap();
    assert_eq!(from_p, in_q_dir);
    assert_eq!(from_p, JobProgram::generate_output("data.bin", 1000));
}

#[test]
fn sixteen_independent_jobs_on_four_machines() {
    let grid = grid(4);
    let client = grid.client("c");
    let program = exe(&client, "work.exe", &JobProgram::compute(5.0));
    let mut spec = JobSetSpec::new("batch");
    for i in 0..16 {
        spec = spec.job(JobSpec::new(format!("job{i:02}"), program.clone()));
    }
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    run_to_completion(&grid, &handle, 600);
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    // All 16 exits observed.
    let exits = handle
        .events()
        .iter()
        .filter(|m| m.topic.to_string().ends_with("/exit"))
        .count();
    assert_eq!(exits, 16);
}
