//! Wire-path equivalence and transport framing hygiene.
//!
//! The zero-copy serializer (`Envelope::write_into` / `wire_len`) must
//! be byte-for-byte indistinguishable from the legacy
//! `to_element().to_document()` clone-and-render path — these tests pin
//! that across fixed vectors (faults, addressing headers, traceparent)
//! and randomly generated envelopes, and cover the Content-Length
//! handling both HTTP peers now share.

#![allow(clippy::result_large_err)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use proptest::prelude::*;
use wsrf_grid::prelude::*;
use wsrf_grid::soap::{ns, MessageInfo};
use wsrf_grid::transport::http::{http_post, HttpSoapServer};
use wsrf_grid::transport::{FnEndpoint, TransportError};
use wsrf_grid::xml::{Element as El, QName};

/// Assert every serialization surface agrees with the legacy
/// clone-and-render output: both sinks, the exact-size pass, the
/// compat wrapper, and (for hand-built vectors) the parser.
fn assert_wire_identical(env: &Envelope) {
    let legacy = env.to_element().to_document();
    let mut s = String::new();
    env.write_into(&mut s);
    assert_eq!(s, legacy, "String sink diverged from legacy render");
    let mut v: Vec<u8> = Vec::new();
    env.write_into(&mut v);
    assert_eq!(
        v.as_slice(),
        legacy.as_bytes(),
        "Vec<u8> sink diverged from legacy render"
    );
    assert_eq!(env.wire_len(), legacy.len(), "wire_len is not exact");
    assert_eq!(env.to_xml(), legacy, "to_xml wrapper diverged");
    assert_eq!(
        &Envelope::parse(&legacy).expect("legacy output reparses"),
        env,
        "parse roundtrip"
    );
}

#[test]
fn headerless_envelope_exact_bytes() {
    let env = Envelope::new(El::local("Ping"));
    assert_eq!(
        env.to_xml(),
        format!(
            "<?xml version=\"1.0\" encoding=\"utf-8\"?>\
             <ns0:Envelope xmlns:ns0=\"{soap}\"><ns0:Body><Ping/></ns0:Body></ns0:Envelope>",
            soap = ns::SOAP_ENV
        )
    );
    assert_wire_identical(&env);
}

#[test]
fn fault_envelope_is_wire_identical() {
    let env = SoapFault::server("boom").to_envelope();
    assert_wire_identical(&env);
    assert!(Envelope::parse(&env.to_xml()).unwrap().is_fault());
}

#[test]
fn addressed_namespaced_envelope_is_wire_identical() {
    let epr = EndpointReference::service("soap.tcp://machine01/ExecutionService");
    let mut env = Envelope::new(
        El::new(ns::UVACG, "CreateJob")
            .child(El::new(ns::UVACG, "JobName").text("run-42"))
            .child(El::new("urn:other", "Mixed").attr("k", "v<&>\"\n"))
            .child(
                El::new(ns::UVACG, "Attr")
                    .attr_ns(QName::new("urn:third", "scope"), "all")
                    .text("tail & <text>"),
            ),
    );
    MessageInfo::request(epr, format!("{}/CreateJob", ns::UVACG)).apply(&mut env);
    env = env.with_header(El::new("urn:custom", "Tag").text("x"));
    assert_wire_identical(&env);
}

#[test]
fn traceparent_stamped_header_is_wire_identical() {
    let tc = TraceContext::new(0xdead_beef_cafe_f00d, 0x0123_4567_89ab_cdef, true);
    let mut env = Envelope::new(El::local("Ping"));
    tc.stamp(&mut env);
    assert_wire_identical(&env);
    // Re-stamping (what hop_span does before byte accounting) must
    // replace the header in place and stay wire-identical too.
    let parsed = TraceContext::from_envelope(&env).expect("stamped header parses");
    parsed.stamp(&mut env);
    assert_wire_identical(&env);
}

// ---------------------------------------------------------------------------
// Randomized byte-equality: write_into / wire_len vs legacy render.
// (No parse-roundtrip here — the parser merges adjacent text nodes, so
// generated trees with sibling text are not reparse-stable by design.)
// ---------------------------------------------------------------------------

fn ns_strategy() -> BoxedStrategy<Option<&'static str>> {
    prop_oneof![
        Just(None),
        Just(Some("urn:x")),
        Just(Some("urn:y")),
        Just(Some(ns::WSA)),
    ]
    .boxed()
}

fn make_el(ns: Option<&'static str>, local: String) -> El {
    match ns {
        Some(uri) => El::new(uri, local),
        None => El::local(local),
    }
}

fn element_strategy() -> BoxedStrategy<El> {
    let leaf = (
        ns_strategy(),
        "[A-Za-z][A-Za-z0-9]{0,7}",
        proptest::option::of("[ -~]{0,12}"),
    )
        .prop_map(|(ns, local, text)| {
            let mut e = make_el(ns, local);
            if let Some(t) = text {
                e.push_text(t);
            }
            e
        })
        .boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            ns_strategy(),
            "[A-Za-z][A-Za-z0-9]{0,7}",
            proptest::collection::vec(
                (ns_strategy(), "[A-Za-z][A-Za-z0-9]{0,5}", "[ -~]{0,8}"),
                0..3,
            ),
            proptest::collection::vec(inner, 0..4),
            proptest::option::of("[ -~]{0,12}"),
        )
            .prop_map(|(ns, local, attrs, kids, tail)| {
                let mut e = make_el(ns, local);
                for (ans, alocal, aval) in attrs {
                    let q = match ans {
                        Some(uri) => QName::new(uri, alocal),
                        None => QName::local(alocal),
                    };
                    e.attrs.push((q, aval));
                }
                for k in kids {
                    e.push_child(k);
                }
                if let Some(t) = tail {
                    e.push_text(t);
                }
                e
            })
            .boxed()
    })
}

fn envelope_strategy() -> BoxedStrategy<Envelope> {
    (
        proptest::collection::vec(element_strategy(), 0..3),
        element_strategy(),
    )
        .prop_map(|(headers, body)| {
            let mut env = Envelope::new(body);
            env.headers = headers;
            env
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn write_into_matches_legacy_render(env in envelope_strategy()) {
        let legacy = env.to_element().to_document();
        let mut s = String::new();
        env.write_into(&mut s);
        prop_assert_eq!(&s, &legacy);
        let mut v: Vec<u8> = Vec::new();
        env.write_into(&mut v);
        prop_assert_eq!(v.as_slice(), legacy.as_bytes());
        prop_assert_eq!(env.wire_len(), legacy.len());
    }

    #[test]
    fn element_encoded_len_is_exact(e in element_strategy()) {
        prop_assert_eq!(e.encoded_len(), e.to_xml().len());
    }
}

// ---------------------------------------------------------------------------
// Byte accounting: the inproc zero-render path must charge exactly the
// bytes a real render would have produced.
// ---------------------------------------------------------------------------

#[test]
fn inproc_byte_accounting_matches_rendered_sizes() {
    let net = InProcNetwork::new(Clock::manual());
    net.register("inproc://m1/Echo", Arc::new(FnEndpoint::new("echo", Some)));
    let mut env = Envelope::new(El::new(ns::UVACG, "CreateJob").text("payload"));
    TraceContext::new(1, 2, true).stamp(&mut env);
    let wire = env.to_xml().len() as u64;

    net.call("inproc://m1/Echo", env.clone()).unwrap();
    let (_, _, bytes, _) = net.metrics.snapshot();
    assert_eq!(bytes, 2 * wire, "call charges request + response bytes");

    net.send_oneway("inproc://m1/Echo", env).unwrap();
    let (_, _, bytes, _) = net.metrics.snapshot();
    assert_eq!(bytes, 3 * wire, "one-way charges request bytes only");
}

// ---------------------------------------------------------------------------
// Content-Length handling — the one parser both HTTP peers share.
// ---------------------------------------------------------------------------

/// Read a full HTTP response off `stream` (server closes per
/// `Connection: close`); returns (status code, body text).
fn read_http_response(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let code = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, body)
}

#[test]
fn missing_content_length_yields_411_client_fault() {
    let server = HttpSoapServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    write!(s, "POST /svc HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let (code, body) = read_http_response(&mut s);
    assert_eq!(code, 411);
    let fault = Envelope::parse(&body)
        .expect("fault body is a SOAP envelope")
        .fault()
        .expect("411 body carries a fault");
    assert_eq!(fault.code, "Client");
    assert!(
        fault.reason.contains("Content-Length"),
        "reason names the header: {}",
        fault.reason
    );
}

#[test]
fn garbage_content_length_yields_400_client_fault() {
    let server = HttpSoapServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    write!(
        s,
        "POST /svc HTTP/1.1\r\nHost: test\r\nContent-Length: twelve\r\n\r\n"
    )
    .unwrap();
    let (code, body) = read_http_response(&mut s);
    assert_eq!(code, 400);
    let fault = Envelope::parse(&body)
        .expect("fault body is a SOAP envelope")
        .fault()
        .expect("400 body carries a fault");
    assert_eq!(fault.code, "Client");
    assert!(
        fault.reason.contains("twelve"),
        "reason echoes the bad value: {}",
        fault.reason
    );
}

/// Spawn a one-shot fake HTTP server that drains the full request
/// (headers plus declared body — closing earlier races the client into
/// a broken pipe) and answers with `response` verbatim.
fn fake_http_server(response: &'static str) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let mut data = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = s.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            data.extend_from_slice(&buf[..n]);
            let Some(head_end) = data.windows(4).position(|w| w == b"\r\n\r\n") else {
                continue;
            };
            let head = String::from_utf8_lossy(&data[..head_end]);
            let body_len: usize = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().unwrap())
                })
                .unwrap_or(0);
            if data.len() >= head_end + 4 + body_len {
                break;
            }
        }
        s.write_all(response.as_bytes()).unwrap();
        s.flush().unwrap();
    });
    addr
}

#[test]
fn response_without_content_length_is_protocol_error() {
    let addr = fake_http_server("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n<x/>");
    let err = http_post(&addr.to_string(), "svc", &Envelope::new(El::local("Ping"))).unwrap_err();
    match err {
        TransportError::Protocol(msg) => {
            assert!(msg.contains("Content-Length"), "{msg}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
}

#[test]
fn response_with_garbage_content_length_is_protocol_error() {
    let addr =
        fake_http_server("HTTP/1.1 200 OK\r\nContent-Length: NaN\r\nConnection: close\r\n\r\n");
    let err = http_post(&addr.to_string(), "svc", &Envelope::new(El::local("Ping"))).unwrap_err();
    match err {
        TransportError::Protocol(msg) => {
            assert!(msg.contains("NaN"), "{msg}");
        }
        other => panic!("expected Protocol error, got {other:?}"),
    }
}

#[test]
fn acknowledgement_without_content_length_is_still_accepted() {
    // A 202 one-way ack has no body; the client must not demand a
    // Content-Length before recognising it.
    let addr = fake_http_server("HTTP/1.1 202 Accepted\r\nConnection: close\r\n\r\n");
    let out = http_post(&addr.to_string(), "svc", &Envelope::new(El::local("Ping"))).unwrap();
    assert!(out.is_none(), "202 resolves to Ok(None)");
}
