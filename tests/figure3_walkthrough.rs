//! The canonical scenario: Figure 3's ten numbered steps, replayed and
//! asserted one by one.
//!
//! 1. the client sends the job-set description to the Scheduler,
//! 2. the Scheduler polls the Node Info Service,
//! 3. the chosen machine's Execution Service receives `Run`,
//! 4. the ES has its FSS create a working directory and upload inputs,
//! 5. files from the client come over the WSE-TCP file server,
//! 6. files from other grid machines come via FSS `Read`,
//! 7. the FSS one-way "upload complete" message releases the job,
//! 8. ProcSpawn starts the process as the requested user,
//! 9. the dir/job EPRs are broadcast so Scheduler + client can poll,
//! 10. process exit flows back and is re-broadcast via the broker.

use std::time::Duration;

use wsrf_grid::prelude::*;
use wsrf_grid::testbed::{es, nis};

fn grid() -> CampusGrid {
    // machine01 @1000 MHz and machine02 @1500 MHz / 2 cores.
    CampusGrid::build(GridConfig::with_machines(2), Clock::manual())
}

#[test]
fn all_ten_steps_observable() {
    let grid = grid();
    let client = grid.client("scientist");

    // The scientist's local files (served by the client's file
    // server thread — step 5's source).
    client.put_file(
        "C:\\proj\\stage1.exe",
        JobProgram::compute(2.0)
            .reading("in1")
            .writing("output2", 512)
            .to_manifest(),
    );
    client.put_file("C:\\proj\\file1", vec![7u8; 128]);
    client.put_file(
        "C:\\proj\\stage2.exe",
        JobProgram::compute(1.0)
            .reading("input.dat")
            .writing("final.out", 64)
            .to_manifest(),
    );

    // The paper's own example descriptions: "local://C:\file1" and
    // "job1://output2".
    let spec = JobSetSpec::new("walkthrough")
        .job(
            JobSpec::new(
                "job1",
                FileRef::parse("local://C:\\proj\\stage1.exe").unwrap(),
            )
            .input(FileRef::parse("local://C:\\proj\\file1").unwrap(), "in1")
            .output("output2"),
        )
        .job(
            JobSpec::new(
                "job2",
                FileRef::parse("local://C:\\proj\\stage2.exe").unwrap(),
            )
            .input(FileRef::parse("job1://output2").unwrap(), "input.dat"),
        );

    // Step 1: submission.
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    assert!(
        handle.topic.starts_with("jobset-"),
        "unique topic generated"
    );

    // Steps 2-9 for job1 happen synchronously on the zero-latency
    // manual-clock network: the scheduler polled the NIS, picked the
    // fastest machine (machine02: 1500 MHz x 2 cores), the ES created
    // a directory, the FSS pulled both files from the client's file
    // server, and ProcSpawn started the process.
    let dir1 = handle.job_dir("job1").expect("step 9: dir EPR broadcast");
    let job1 = handle.job_epr("job1").expect("step 9: job EPR broadcast");
    assert_eq!(
        job1.address, "inproc://machine02/Execution",
        "fastest machine chosen"
    );
    assert_eq!(dir1.address, "inproc://machine02/FileSystem");

    // Step 8/9: the client polls the job's Status resource property.
    assert_eq!(handle.poll_job_status("job1").unwrap(), "Running");

    // Step 5 evidence: both client files are in the working directory.
    let names: Vec<String> = handle
        .list_job_dir("job1")
        .unwrap()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert!(names.contains(&"stage1.exe".to_string()), "{names:?}");
    assert!(names.contains(&"in1".to_string()));

    // job2 must NOT have started yet — dependency.
    assert!(
        handle.job_epr("job2").is_none(),
        "step 7 gate: job2 waits for job1"
    );

    // Run job1 to completion (2 cpu-sec at 1.5 speed / free core).
    grid.clock.advance(Duration::from_secs(3));

    // Step 10: exit notification was re-broadcast; the scheduler
    // dispatched job2, filling in job1's directory EPR as its input
    // source (step 6: FSS-to-FSS Read if machines differ).
    let exit_events = handle
        .events()
        .into_iter()
        .filter(|m| m.topic.to_string().ends_with("/exit"))
        .collect::<Vec<_>>();
    assert!(!exit_events.is_empty(), "exit event for job1");
    assert_eq!(exit_events[0].payload.attr_value("code"), Some("0"));

    grid.clock.advance(Duration::from_secs(5));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));

    // job2 consumed job1's output (exit 66 otherwise) and produced its
    // own, fetchable through the directory EPR.
    assert_eq!(handle.fetch_output("job2", "final.out").unwrap().len(), 64);
    // job1's intermediate output also remains fetchable.
    assert_eq!(handle.fetch_output("job1", "output2").unwrap().len(), 512);

    // The full event stream, in order, as the client GUI would show it.
    let topics: Vec<String> = handle
        .events()
        .iter()
        .map(|m| m.topic.to_string())
        .collect();
    let t = &handle.topic;
    assert_eq!(
        topics,
        vec![
            format!("{t}/job/job1/dir"),
            format!("{t}/job/job1/started"),
            format!("{t}/job/job1/exit"),
            format!("{t}/job/job2/dir"),
            format!("{t}/job/job2/started"),
            format!("{t}/job/job2/exit"),
            format!("{t}/completed"),
        ]
    );
}

#[test]
fn scheduler_fills_in_cross_machine_transfers() {
    // Force the two jobs onto different machines (round robin) and
    // verify the FSS-to-FSS path (step 6) carries the intermediate.
    let grid = CampusGrid::build(
        GridConfig {
            machines: vec![MachineSpec::new("alpha"), MachineSpec::new("beta")],
            policy: std::sync::Arc::new(RoundRobin::default()),
            ..GridConfig::default()
        },
        Clock::manual(),
    );
    let client = grid.client("scientist");
    client.put_file(
        "C:\\a.exe",
        JobProgram::compute(1.0)
            .writing("mid.dat", 256)
            .to_manifest(),
    );
    client.put_file(
        "C:\\b.exe",
        JobProgram::compute(1.0).reading("mid.dat").to_manifest(),
    );
    let spec = JobSetSpec::new("x")
        .job(JobSpec::new("a", FileRef::parse("local://C:\\a.exe").unwrap()).output("mid.dat"))
        .job(
            JobSpec::new("b", FileRef::parse("local://C:\\b.exe").unwrap())
                .input(FileRef::parse("a://mid.dat").unwrap(), "mid.dat"),
        );
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(10));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    let da = handle.job_dir("a").unwrap();
    let db = handle.job_dir("b").unwrap();
    assert_ne!(da.address, db.address, "jobs on different machines");
}

#[test]
fn client_can_kill_a_job_mid_set() {
    let grid = grid();
    let client = grid.client("scientist");
    client.put_file("C:\\forever.exe", JobProgram::compute(1e6).to_manifest());
    let spec = JobSetSpec::new("runaway").job(JobSpec::new(
        "spin",
        FileRef::parse("local://C:\\forever.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(100));
    assert!(handle.outcome().is_none());
    assert!(handle.kill_job("spin").unwrap());
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            assert!(
                fault.root_cause().description.contains("code -9"),
                "{fault}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn cpu_time_property_tracks_the_processor_sharing_model() {
    let grid = grid();
    let client = grid.client("scientist");
    client.put_file("C:\\p.exe", JobProgram::compute(100.0).to_manifest());
    let spec = JobSetSpec::new("cpu").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    let job = handle.job_epr("j").unwrap();
    grid.clock.advance(Duration::from_secs(4));
    let cpu = es::job_cpu_time(&grid.net, &job).unwrap();
    // machine02 (1.5 GHz, idle core) ran 4 virtual seconds.
    assert!((cpu - 6.0).abs() < 1e-3, "cpu so far {cpu}");
}

#[test]
fn nis_snapshot_reflects_running_jobs() {
    let grid = grid();
    let client = grid.client("scientist");
    client.put_file("C:\\p.exe", JobProgram::compute(1000.0).to_manifest());
    let before = nis::snapshot(&grid.net, &grid.nis_address).unwrap();
    assert!(before.iter().all(|n| n.utilization == 0.0));
    let spec = JobSetSpec::new("load").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let _handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    let after = nis::snapshot(&grid.net, &grid.nis_address).unwrap();
    let loaded: Vec<&NodeSnapshot> = after.iter().filter(|n| n.utilization > 0.0).collect();
    assert_eq!(loaded.len(), 1, "one machine took the job: {after:?}");
}
