//! Service self-description (the WSDL analogue) across a live grid,
//! and machine-failure behaviour: a dead machine must surface as a
//! routable fault chain, not a hang.

use std::time::Duration;

use wsrf_grid::prelude::*;
use wsrf_grid::wsrf::wsdl::fetch_description;

#[test]
fn every_grid_service_self_describes() {
    let grid = CampusGrid::build(GridConfig::with_machines(2), Clock::manual());

    let es = fetch_description(&grid.net, "inproc://machine01/Execution").unwrap();
    assert_eq!(es.name, "Execution");
    assert!(es.supports_resource_properties());
    assert!(es.supports_lifetime());
    assert!(es.key_property.ends_with("JobKey"));
    assert!(es
        .computed_properties
        .iter()
        .any(|p| p.contains("CpuTimeUsed")));

    let fss = fetch_description(&grid.net, "inproc://machine01/FileSystem").unwrap();
    assert!(fss.supports(&wsrf_grid::wsrf::container::action_uri(
        "FileSystem",
        "Read"
    )));
    assert!(fss.key_property.ends_with("DirectoryKey"));

    let sched = fetch_description(&grid.net, "inproc://hub/Scheduler").unwrap();
    assert!(sched.supports(&wsrf_grid::wsrf::container::action_uri(
        "Scheduler",
        "SubmitJobSet"
    )));
    assert!(sched.supports(&wsrf_grid::wsrf::container::action_uri(
        "Scheduler",
        "FindJobSets"
    )));

    let broker = fetch_description(&grid.net, "inproc://hub/Broker").unwrap();
    assert!(broker
        .operations
        .iter()
        .any(|(a, _)| a.ends_with("/Subscribe")));
    assert!(broker
        .operations
        .iter()
        .any(|(a, _)| a.ends_with("/GetCurrentMessage")));
}

#[test]
fn client_can_discover_capabilities_before_calling() {
    // A generic client decides which interface to use from the
    // description — the interoperability story of §5.
    let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
    let desc = fetch_description(&grid.net, "inproc://machine01/Execution").unwrap();
    // The client sees GetResourceProperty is available and uses the
    // generic proxy rather than a bespoke interface.
    assert!(desc.supports_resource_properties());
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(100.0).to_manifest());
    let spec = JobSetSpec::new("d").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    let job = handle.job_epr("j").unwrap();
    let proxy = wsrf_grid::wsrf::ResourceProxy::new(&grid.net, job);
    assert_eq!(proxy.get_text("Status").unwrap(), "Running");
}

#[test]
fn machine_dead_before_dispatch_fails_with_transport_fault_chain() {
    let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
    // The machine's services vanish (power cut) before any submission.
    assert!(grid.net.unregister("inproc://machine01/Execution"));
    assert!(grid.net.unregister("inproc://machine01/FileSystem"));

    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(1.0).to_manifest());
    let spec = JobSetSpec::new("dead").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            assert_eq!(fault.error_code, "uvacg:JobSetFailed");
            let chain = fault.to_string();
            assert!(chain.contains("uvacg:DispatchFailed"), "{chain}");
            assert!(chain.contains("no route"), "{chain}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn broker_get_current_message_catches_up_a_late_observer() {
    // A monitoring tool that attaches after events happened can still
    // read the last event per topic.
    let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
    let client = grid.client("c");
    client.put_file(
        "C:\\p.exe",
        JobProgram::compute(1.0).exiting(5).to_manifest(),
    );
    let spec = JobSetSpec::new("observed").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(5));
    assert!(matches!(handle.outcome(), Some(JobSetOutcome::Failed(_))));

    // Late observer, no subscription at all:
    let topic = format!("{}/job/j/exit", handle.topic);
    let last =
        wsrf_grid::notification::broker::get_current_message(&grid.net, &grid.broker, &topic)
            .unwrap()
            .expect("exit event cached");
    assert_eq!(last.payload.attr_value("code"), Some("5"));
    assert_eq!(
        wsrf_grid::notification::broker::get_current_message(
            &grid.net,
            &grid.broker,
            "never-published",
        )
        .unwrap(),
        None
    );
}

#[test]
fn proxies_work_against_every_resource_kind_on_the_grid() {
    // One generic tool, four resource kinds (the §5 payoff).
    let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(60.0).to_manifest());
    let spec = JobSetSpec::new("kinds").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(1));

    // Job resource.
    let job = wsrf_grid::wsrf::ResourceProxy::new(&grid.net, handle.job_epr("j").unwrap());
    assert_eq!(job.get_text("Status").unwrap(), "Running");
    assert!(job.get_f64("CpuTimeUsed").unwrap() > 0.0);

    // Directory resource.
    let dir = wsrf_grid::wsrf::ResourceProxy::new(&grid.net, handle.job_dir("j").unwrap());
    assert!(dir.get_text("Path").unwrap().starts_with("grid/"));

    // Job-set resource.
    let set = wsrf_grid::wsrf::ResourceProxy::new(&grid.net, handle.jobset.clone());
    assert_eq!(set.get_text("Status").unwrap(), "Running");
    assert_eq!(set.document().unwrap().get_local("JobStatus").len(), 1);

    // Processor entry resource (via the NIS group).
    let entries = {
        use wsrf_grid::soap::{Envelope, MessageInfo};
        use wsrf_grid::xml::Element as El;
        let mut env = Envelope::new(El::new(wsrf_grid::soap::ns::WSSG, "Entries"));
        MessageInfo::request(
            EndpointReference::service(&grid.nis_address),
            wsrf_grid::wsrf::servicegroup::group_action("NodeInfo", "Entries"),
        )
        .apply(&mut env);
        grid.net.call(&grid.nis_address, env).unwrap()
    };
    let entry_epr =
        EndpointReference::from_element(entries.body.elements().next().unwrap()).unwrap();
    let entry = wsrf_grid::wsrf::ResourceProxy::new(&grid.net, entry_epr);
    assert_eq!(entry.get_text("Machine").unwrap(), "machine01");
    assert_eq!(entry.get_f64("Utilization").unwrap(), 1.0);
}

#[test]
fn machine_crash_mid_run_trips_the_watchdog() {
    // A machine dies while a job runs: no exit notification ever
    // arrives. With the watchdog armed, the set fails with JobTimeout
    // instead of hanging forever.
    let grid = CampusGrid::build(
        GridConfig::with_machines(1).with_job_timeout(Duration::from_secs(120)),
        Clock::manual(),
    );
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(30.0).to_manifest());
    let spec = JobSetSpec::new("crash").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(5));
    assert_eq!(handle.poll_job_status("j").unwrap(), "Running");

    // Power cut.
    let machine = grid.machine("machine01").unwrap();
    assert_eq!(machine.crash(), 1);
    grid.net.unregister("inproc://machine01/Execution");
    grid.net.unregister("inproc://machine01/FileSystem");

    // The job would have finished at t=35; the watchdog fires at
    // t=125 (dispatch happened at t=0 + 120 + slack).
    grid.clock.advance(Duration::from_secs(100));
    assert!(handle.outcome().is_none(), "still waiting before timeout");
    grid.clock.advance(Duration::from_secs(30));
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            assert_eq!(fault.root_cause().error_code, "uvacg:JobTimeout", "{fault}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn job_completing_just_before_watchdog_keeps_the_set_completed() {
    // Race order 1: the exit event (t=119) lands before the watchdog
    // callback (t=120). The watchdog must see the terminal state and
    // stand down — a completed set must never flip to Failed.
    let grid = CampusGrid::build(
        GridConfig::with_machines(1).with_job_timeout(Duration::from_secs(120)),
        Clock::manual(),
    );
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(119.0).to_manifest());
    let spec = JobSetSpec::new("photo-finish").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(119));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    // Cross the watchdog deadline; the stale callback fires now.
    grid.clock.advance(Duration::from_secs(10));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    assert_eq!(handle.status().unwrap(), "Completed");
}

#[test]
fn exit_arriving_just_after_watchdog_keeps_the_set_failed() {
    // Race order 2: the watchdog (t=120) beats the exit event (t=121).
    // The set fails with JobTimeout, and the late exit must not
    // resurrect it to Completed.
    let grid = CampusGrid::build(
        GridConfig::with_machines(1).with_job_timeout(Duration::from_secs(120)),
        Clock::manual(),
    );
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(121.0).to_manifest());
    let spec = JobSetSpec::new("too-slow").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(120));
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            assert_eq!(fault.root_cause().error_code, "uvacg:JobTimeout", "{fault}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The job's real exit at t=121 arrives into a finished set.
    grid.clock.advance(Duration::from_secs(5));
    assert!(
        matches!(handle.outcome(), Some(JobSetOutcome::Failed(_))),
        "late exit must not resurrect a timed-out set"
    );
    assert_eq!(handle.status().unwrap(), "Failed");
}

#[test]
fn watchdog_does_not_fire_on_healthy_jobs() {
    let grid = CampusGrid::build(
        GridConfig::with_machines(1).with_job_timeout(Duration::from_secs(120)),
        Clock::manual(),
    );
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(10.0).to_manifest());
    let spec = JobSetSpec::new("healthy").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(500));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
}
