//! The whole testbed on a *scaled* clock: real threads, real waiting,
//! modeled network latencies — the closest the simulation gets to the
//! paper's live campus deployment.

use std::time::Duration;

use wsrf_grid::prelude::*;

/// 1 virtual second = 1 real millisecond.
const SPEEDUP: f64 = 1000.0;

fn scaled_grid(machines: usize) -> CampusGrid {
    CampusGrid::build(
        GridConfig::with_machines(machines).with_net(NetConfig::campus()),
        Clock::scaled(SPEEDUP),
    )
}

#[test]
fn pipeline_completes_in_real_time() {
    let grid = scaled_grid(3);
    let client = grid.client("c");
    client.put_file(
        "C:\\a.exe",
        JobProgram::compute(5.0)
            .writing("mid.dat", 50_000)
            .to_manifest(),
    );
    client.put_file(
        "C:\\b.exe",
        JobProgram::compute(3.0)
            .reading("mid.dat")
            .writing("fin.dat", 1000)
            .to_manifest(),
    );
    let spec = JobSetSpec::new("rt-pipeline")
        .job(JobSpec::new("a", FileRef::parse("local://C:\\a.exe").unwrap()).output("mid.dat"))
        .job(
            JobSpec::new("b", FileRef::parse("local://C:\\b.exe").unwrap())
                .input(FileRef::parse("a://mid.dat").unwrap(), "mid.dat"),
        );
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    let outcome = handle
        .wait(Duration::from_secs(30))
        .expect("finished in time");
    assert_eq!(outcome, JobSetOutcome::Completed);
    assert_eq!(handle.fetch_output("b", "fin.dat").unwrap().len(), 1000);
    // Virtual elapsed time is plausible: at least the serial CPU time,
    // but far less than the real-time budget would imply.
    let now = grid.clock.now().as_secs_f64();
    assert!(now >= 5.0, "virtual time ran: {now}");
}

#[test]
fn modeled_latency_orders_upload_before_start() {
    // With campus latencies the upload completion genuinely arrives
    // later than the Run response: the job is observed Staging first.
    let grid = scaled_grid(1);
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(30.0).to_manifest());
    let spec = JobSetSpec::new("latency").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    // Wait until the started event arrives.
    assert!(
        handle.wait_job_started("j", Duration::from_secs(20)),
        "job started"
    );
    let outcome = handle.wait(Duration::from_secs(60)).expect("finished");
    assert_eq!(outcome, JobSetOutcome::Completed);
}

#[test]
fn many_concurrent_clients() {
    let grid = scaled_grid(4);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let client = grid.client(&format!("client-{i}"));
            client.put_file("C:\\p.exe", JobProgram::compute(2.0).to_manifest());
            let spec = JobSetSpec::new(format!("set-{i}")).job(JobSpec::new(
                "j",
                FileRef::parse("local://C:\\p.exe").unwrap(),
            ));
            client.submit(&spec, "griduser", "gridpass").unwrap()
        })
        .collect();
    for h in &handles {
        assert_eq!(
            h.wait(Duration::from_secs(60)),
            Some(JobSetOutcome::Completed),
            "set {} finished",
            h.topic
        );
    }
}
