//! Chaos-tested crash-recovery failover: kill the primary Scheduler
//! immediately after each of the ten Figure 3 protocol steps and
//! assert the standby drives the job set to completion **exactly
//! once** — one `completed` broadcast, one `exit` and one `started`
//! per job, no duplicate dispatches.
//!
//! The kill points reuse the Figure 3 step instrumentation from the
//! tracing work: the scheduler invokes a hook after durably recording
//! each step, and the hook crashes the scheduler the first time the
//! target step is recorded. That gives the strongest possible
//! semantics for "crashed right after step N": the step is on disk,
//! nothing after it happened.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use grid_node::JobProgram;
use wsrf_grid::prelude::*;
use wsrf_grid::testbed::grid::SCHEDULER_ADDRESS;

/// Figure 3 step names, indexed by step number.
const STEP_NAMES: [&str; 10] = [
    "submit",
    "nis_poll",
    "es_run",
    "workdir",
    "client_stage",
    "grid_stage",
    "upload_complete",
    "spawn",
    "epr_broadcast",
    "exit_broadcast",
];

/// A two-job pipeline (job2 consumes job1's output), so recovery has
/// to resume mid-DAG: finish or re-own job1, then dispatch job2.
fn pipeline_spec(client: &Client) -> JobSetSpec {
    client.put_file(
        "C:\\stage1.exe",
        JobProgram::compute(2.0)
            .writing("mid.dat", 64)
            .to_manifest(),
    );
    client.put_file(
        "C:\\stage2.exe",
        JobProgram::compute(1.0)
            .reading("in.dat")
            .writing("final.dat", 32)
            .to_manifest(),
    );
    JobSetSpec::new("chaos")
        .job(
            JobSpec::new("job1", FileRef::parse("local://C:\\stage1.exe").unwrap())
                .output("mid.dat"),
        )
        .job(
            JobSpec::new("job2", FileRef::parse("local://C:\\stage2.exe").unwrap())
                .input(FileRef::parse("job1://mid.dat").unwrap(), "in.dat"),
        )
}

/// Run the whole kill-promote-recover cycle for one kill point and
/// return the client handle plus the promoted scheduler.
fn run_kill_point(kill_step: u8) -> (CampusGrid, JobSetHandle, Scheduler) {
    let grid = CampusGrid::build(
        GridConfig::with_machines(2).with_replication(),
        Clock::manual(),
    );
    let standby = grid.spawn_standby(None);
    let client = grid.client("chaos-client");
    let spec = pipeline_spec(&client);

    // Crash the primary the first time `kill_step` is recorded.
    let primary = grid.scheduler.clone();
    let net = grid.net.clone();
    let fired = Arc::new(AtomicBool::new(false));
    let fired2 = fired.clone();
    grid.scheduler.set_step_hook(move |step, _job| {
        if step == kill_step && !fired2.swap(true, Ordering::SeqCst) {
            primary.crash(&net);
        }
    });

    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();

    // Drive until the kill point is reached (steps 1-3 fire inline
    // during the submission itself; later ones need event delivery).
    for _ in 0..100 {
        if grid.scheduler.crashed() {
            break;
        }
        grid.clock.advance(Duration::from_millis(200));
    }
    assert!(
        grid.scheduler.crashed(),
        "step {kill_step} ({}) never recorded",
        STEP_NAMES[kill_step as usize - 1]
    );
    assert!(
        handle.outcome().is_none(),
        "set finished before the crash at step {kill_step} took effect"
    );

    // Let in-flight replication and job events drain to the standby,
    // then fail over onto the primary's address.
    grid.clock.advance(Duration::from_secs(1));
    let promoted = standby.promote(SCHEDULER_ADDRESS);

    for _ in 0..100 {
        if handle.outcome().is_some() {
            break;
        }
        grid.clock.advance(Duration::from_millis(500));
    }
    (grid, handle, promoted)
}

/// Exactly-once assertions over the client's full event history.
fn assert_exactly_once(handle: &JobSetHandle, kill_step: u8) {
    assert_eq!(
        handle.outcome(),
        Some(JobSetOutcome::Completed),
        "kill at step {kill_step}: set did not complete"
    );
    let topics: Vec<String> = handle
        .events()
        .iter()
        .map(|m| m.topic.to_string())
        .collect();
    let count = |suffix: &str| topics.iter().filter(|t| t.ends_with(suffix)).count();
    assert_eq!(
        count("/completed"),
        1,
        "kill at step {kill_step}: completed broadcasts {topics:?}"
    );
    for job in ["job1", "job2"] {
        assert_eq!(
            count(&format!("{job}/started")),
            1,
            "kill at step {kill_step}: '{job}' spawned a wrong number of times {topics:?}"
        );
        assert_eq!(
            count(&format!("{job}/exit")),
            1,
            "kill at step {kill_step}: '{job}' exited a wrong number of times {topics:?}"
        );
    }
}

/// One test per Figure 3 kill point, so a regression names the exact
/// protocol step whose recovery broke.
macro_rules! kill_point_test {
    ($name:ident, $step:expr) => {
        #[test]
        fn $name() {
            let (_grid, handle, promoted) = run_kill_point($step);
            assert_exactly_once(&handle, $step);
            // The promoted scheduler owns the terminal state.
            let states = promoted
                .job_states(handle.jobset.resource_key().unwrap())
                .expect("promoted scheduler adopted the set");
            for (job, state, code) in states {
                assert_eq!(state, "Completed", "job {job} after kill at {}", $step);
                assert_eq!(code, Some(0), "job {job} exit code");
            }
        }
    };
}

kill_point_test!(kill_after_step_01_submit, 1);
kill_point_test!(kill_after_step_02_nis_poll, 2);
kill_point_test!(kill_after_step_03_es_run, 3);
kill_point_test!(kill_after_step_04_workdir, 4);
kill_point_test!(kill_after_step_05_client_stage, 5);
kill_point_test!(kill_after_step_06_grid_stage, 6);
kill_point_test!(kill_after_step_07_upload_complete, 7);
kill_point_test!(kill_after_step_08_spawn, 8);
kill_point_test!(kill_after_step_09_epr_broadcast, 9);
kill_point_test!(kill_after_step_10_exit_broadcast, 10);

/// The crashed primary reports itself crashed and leaves the network:
/// probes to its endpoints become undeliverable instead of reaching a
/// stale handler.
#[test]
fn crashed_primary_is_inert() {
    let grid = CampusGrid::build(
        GridConfig::with_machines(1).with_replication(),
        Clock::manual(),
    );
    let _standby = grid.spawn_standby(None);
    assert!(!grid.scheduler.crashed());
    grid.scheduler.crash(&grid.net);
    assert!(grid.scheduler.crashed());
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(0.5).to_manifest());
    let spec = JobSetSpec::new("dead").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    assert!(
        client.submit(&spec, "griduser", "gridpass").is_err(),
        "submitting to a crashed scheduler must fail"
    );
}

/// Without a crash, a replicating grid behaves exactly like a plain
/// one — replication must never change scheduling outcomes.
#[test]
fn replication_is_transparent_without_failover() {
    let grid = CampusGrid::build(
        GridConfig::with_machines(2).with_replication(),
        Clock::manual(),
    );
    let standby = grid.spawn_standby(None);
    let client = grid.client("c");
    let spec = pipeline_spec(&client);
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(30));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    // The standby shadowed the whole run and saw it finish.
    assert_eq!(standby.shadow_count(), 1);
}
