//! Metrics-feedback placement (ROADMAP item 1): the Scheduler reports
//! observed per-machine outcomes back into the policy, and
//! `MetricsFeedback` steers work away from machines whose observed
//! latencies exceed the fleet median — closing the loop the paper
//! leaves open ("chooses the fastest, most available machine" from
//! catalog data alone).
//!
//! The E6b scenario: machine04 advertises the best hardware in the
//! NIS (3000 MHz × 2 cores) but sits behind a degraded uplink, so
//! every message to it pays 15 virtual seconds. Catalog-only placement
//! keeps choosing it; feedback placement learns after one job.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use wsrf_grid::prelude::*;
use wsrf_grid::wsrf::ResourceProxy;

const DEGRADED: &str = "machine04";
const LINK_LATENCY: Duration = Duration::from_secs(15);

/// Run a 6-link chain (each job consumes its predecessor's output) on
/// a 4-machine grid with `machine04` behind the slow uplink. Returns
/// the completed grid, the set's virtual makespan in seconds, and the
/// per-machine job placement counts.
fn run_chain(policy: Arc<dyn SchedulingPolicy>) -> (CampusGrid, f64, HashMap<String, usize>) {
    let grid = CampusGrid::build(
        GridConfig::with_machines(4)
            .with_policy(policy)
            .with_slow_authority(DEGRADED, LINK_LATENCY),
        Clock::manual(),
    );
    let client = grid.client("c");
    client.put_file(
        "C:\\step.exe",
        JobProgram::compute(10.0)
            .writing("out.dat", 256)
            .to_manifest(),
    );
    let mut spec = JobSetSpec::new("chain");
    let mut prev: Option<String> = None;
    for i in 0..6 {
        let name = format!("j{i}");
        let mut job =
            JobSpec::new(&name, FileRef::parse("local://C:\\step.exe").unwrap()).output("out.dat");
        if let Some(p) = &prev {
            job = job.input(FileRef::parse(&format!("{p}://out.dat")).unwrap(), "in.dat");
        }
        spec = spec.job(job);
        prev = Some(name);
    }
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    for _ in 0..500 {
        if handle.outcome().is_some() {
            break;
        }
        grid.clock.advance(Duration::from_secs(1));
    }
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));

    let set = ResourceProxy::new(&grid.net, handle.jobset.clone());
    let makespan = set.get_f64("Makespan").unwrap();
    let mut per_machine: HashMap<String, usize> = HashMap::new();
    for js in set.document().unwrap().get_local("JobStatus") {
        let machine = js.attr_value("machine").unwrap_or("?").to_string();
        *per_machine.entry(machine).or_default() += 1;
    }
    (grid, makespan, per_machine)
}

#[test]
fn feedback_placement_beats_catalog_placement_on_a_degraded_grid() {
    let (_fa_grid, fa_makespan, fa_placement) = run_chain(Arc::new(FastestAvailable));
    let (_mf_grid, mf_makespan, mf_placement) = run_chain(Arc::new(MetricsFeedback::new()));

    // Catalog-only placement never learns: machine04 advertises the
    // best hardware and gets every chain link, paying the slow uplink
    // twice per staging round trip.
    assert_eq!(
        fa_placement.get(DEGRADED).copied().unwrap_or(0),
        6,
        "fastest-available pins the chain to the degraded machine: {fa_placement:?}"
    );

    // Feedback placement pays the uplink once (the cold-start pick)
    // and steers the remaining links to healthy machines.
    assert!(
        mf_placement.get(DEGRADED).copied().unwrap_or(0) <= 1,
        "metrics-feedback steers off the degraded machine: {mf_placement:?}"
    );
    assert!(
        mf_makespan < fa_makespan * 0.6,
        "feedback makespan {mf_makespan}s should clearly beat catalog {fa_makespan}s"
    );
}

#[test]
fn penalty_table_is_a_queryable_resource_property() {
    let (grid, _, _) = run_chain(Arc::new(MetricsFeedback::new()));

    // The feedback table is an ordinary WS-Resource: any generic WSRF
    // client can read the {UVACG}MachinePenalty rows.
    let feedback = ResourceProxy::new(&grid.net, grid.scheduler.feedback_epr());
    assert_eq!(feedback.get_text("Policy").unwrap(), "metrics-feedback");
    let doc = feedback.document().unwrap();
    let rows = doc.get_local("MachinePenalty");
    assert_eq!(rows.len(), 4, "one row per machine");
    let penalty = |machine: &str| -> f64 {
        rows.iter()
            .find(|r| r.attr_value("machine") == Some(machine))
            .and_then(|r| r.attr_value("penalty"))
            .and_then(|p| p.parse().ok())
            .unwrap()
    };
    assert!(
        penalty(DEGRADED) > penalty("machine02"),
        "degraded machine carries the largest penalty: {rows:?}"
    );
    let degraded = rows
        .iter()
        .find(|r| r.attr_value("machine") == Some(DEGRADED))
        .unwrap();
    assert!(
        degraded
            .attr_value("observations")
            .unwrap()
            .parse::<u64>()
            .unwrap()
            > 0,
        "the cold-start job fed the EWMA"
    );
}

#[test]
fn feedback_resource_does_not_leak_into_job_set_rediscovery() {
    let (grid, _, _) = run_chain(Arc::new(MetricsFeedback::new()));
    let client = grid.client("late");
    let found = client.rediscover(None).unwrap();
    assert_eq!(found.len(), 1, "only the submitted set, not 'feedback'");
    assert_eq!(found[0].status().unwrap(), "Completed");
}

#[test]
fn feedbackless_policies_publish_an_empty_penalty_table() {
    let grid = CampusGrid::build(GridConfig::with_machines(2), Clock::manual());
    let feedback = ResourceProxy::new(&grid.net, grid.scheduler.feedback_epr());
    assert_eq!(feedback.get_text("Policy").unwrap(), "fastest-available");
    assert!(feedback
        .document()
        .unwrap()
        .get_local("MachinePenalty")
        .is_empty());
}
