//! Property-based tests over the live testbed: randomly shaped (but
//! valid) job sets must always complete, dependency order must always
//! hold, and random binary content must survive the staging path
//! byte-for-byte.

use std::time::Duration;

use proptest::prelude::*;
use wsrf_grid::prelude::*;
use wsrf_grid::wsrf::proxy::ResourceProxy;

/// A generated DAG description: `deps[i]` lists indices < i.
#[derive(Debug, Clone)]
struct DagShape {
    deps: Vec<Vec<usize>>,
    cpu: Vec<f64>,
}

fn dag_strategy(max_jobs: usize) -> impl Strategy<Value = DagShape> {
    (2..=max_jobs)
        .prop_flat_map(|n| {
            let deps = (0..n)
                .map(|i| {
                    if i == 0 {
                        Just(Vec::new()).boxed()
                    } else {
                        proptest::collection::vec(0..i, 0..=i.min(2)).boxed()
                    }
                })
                .collect::<Vec<_>>();
            (deps, proptest::collection::vec(0.1f64..2.0, n..=n))
        })
        .prop_map(|(mut deps, cpu)| {
            for d in &mut deps {
                d.sort_unstable();
                d.dedup();
            }
            DagShape { deps, cpu }
        })
}

/// Builds the spec and predicts the staging traffic: returns
/// `(spec, staged_bytes, staged_files)` where the counts cover every
/// file the FSS must pull per job — the executable manifest plus one
/// 16-byte intermediate per dependency.
fn build_spec(client: &Client, shape: &DagShape) -> (JobSetSpec, u64, u64) {
    let mut spec = JobSetSpec::new("prop");
    let mut staged_bytes = 0u64;
    let mut staged_files = 0u64;
    for (i, deps) in shape.deps.iter().enumerate() {
        let mut prog = JobProgram::compute(shape.cpu[i]).writing(format!("out{i}"), 16);
        for d in deps {
            prog = prog.reading(format!("dep{d}"));
        }
        let path = format!("C:\\prog{i}.exe");
        let manifest = prog.to_manifest();
        staged_bytes += manifest.len() as u64 + 16 * deps.len() as u64;
        staged_files += 1 + deps.len() as u64;
        client.put_file(&path, manifest);
        let mut job = JobSpec::new(
            format!("job{i}"),
            FileRef::parse(&format!("local://{path}")).unwrap(),
        )
        .output(format!("out{i}"));
        for d in deps {
            job = job.input(
                FileRef::parse(&format!("job{d}://out{d}")).unwrap(),
                format!("dep{d}"),
            );
        }
        spec = spec.job(job);
    }
    (spec, staged_bytes, staged_files)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_dags_always_complete(shape in dag_strategy(7), machines in 1usize..4) {
        let grid = CampusGrid::build(GridConfig::with_machines(machines), Clock::manual());
        let client = grid.client("p");
        let (spec, _, _) = build_spec(&client, &shape);
        prop_assert!(spec.validate().is_ok());
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        // Generous budget: total work is < 14 cpu-sec on >= 1 machine.
        for _ in 0..120 {
            if handle.outcome().is_some() {
                break;
            }
            grid.clock.advance(Duration::from_secs(1));
        }
        prop_assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed), "{:?}", shape);

        // Causality: each job started after all its deps exited.
        let topics: Vec<String> = handle.events().iter().map(|m| m.topic.to_string()).collect();
        for (i, deps) in shape.deps.iter().enumerate() {
            let started = topics.iter().position(|t| t.ends_with(&format!("job{i}/started")));
            prop_assert!(started.is_some());
            for d in deps {
                let dep_exit = topics.iter().position(|t| t.ends_with(&format!("job{d}/exit")));
                prop_assert!(dep_exit.unwrap() < started.unwrap(),
                    "job{i} started before job{d} exited");
            }
        }
    }

    #[test]
    fn random_bytes_survive_staging(content in proptest::collection::vec(any::<u8>(), 1..4096)) {
        // Client file -> FSS upload -> job input: the program requires
        // the file, so completion proves presence; then read it back
        // from the working directory and compare bytes.
        let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
        let client = grid.client("p");
        client.put_file("C:\\data.bin", content.clone());
        client.put_file(
            "C:\\check.exe",
            JobProgram::compute(0.1).reading("data.bin").to_manifest(),
        );
        let spec = JobSetSpec::new("bytes").job(
            JobSpec::new("check", FileRef::parse("local://C:\\check.exe").unwrap())
                .input(FileRef::parse("local://C:\\data.bin").unwrap(), "data.bin"),
        );
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        grid.clock.advance(Duration::from_secs(5));
        prop_assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
        let staged = handle.fetch_output("check", "data.bin").unwrap();
        prop_assert_eq!(staged.to_vec(), content);
    }

    #[test]
    fn metrics_conservation_laws_hold(shape in dag_strategy(6), machines in 1usize..4) {
        // Two conservation laws over the observability layer, for any
        // DAG: (a) CPU time charged to jobs cannot exceed the machine
        // capacity available during the makespan, and (b) the FSS
        // staging counters account for every staged byte exactly.
        let config = GridConfig::with_machines(machines);
        let capacity: f64 = config
            .machines
            .iter()
            .map(|m| (m.cpu_mhz as f64 / 1000.0) * m.cores as f64)
            .sum();
        let grid = CampusGrid::build(config, Clock::manual());
        let client = grid.client("p");
        let (spec, expected_bytes, expected_files) = build_spec(&client, &shape);
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        for _ in 0..120 {
            if handle.outcome().is_some() {
                break;
            }
            grid.clock.advance(Duration::from_secs(1));
        }
        prop_assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed), "{:?}", shape);

        // Makespan and per-job CPU are resource properties on the
        // job-set WS-Resource, read through the standard port types.
        let proxy = ResourceProxy::new(&grid.net, handle.jobset.clone());
        let makespan = proxy.get_f64("Makespan").unwrap();
        prop_assert!(makespan > 0.0, "makespan {makespan}");
        let mut cpu_sum = 0.0;
        let mut reported = 0usize;
        for el in proxy.query("//JobStatus").unwrap() {
            if let Some(cpu) = el.attr_value("cpu") {
                cpu_sum += cpu.parse::<f64>().unwrap();
                reported += 1;
            }
        }
        prop_assert_eq!(reported, shape.deps.len(), "every exited job reports cpu");
        prop_assert!(
            cpu_sum <= makespan * capacity + 1e-6,
            "cpu {cpu_sum} > makespan {makespan} x capacity {capacity}"
        );

        // The staging counters match the predicted traffic exactly.
        let snap = grid.metrics_snapshot();
        prop_assert_eq!(snap.counter("fss.staged_bytes"), Some(expected_bytes));
        prop_assert_eq!(snap.counter("fss.staged_files"), Some(expected_files));
        prop_assert_eq!(
            snap.histogram("fss.stage.real_ns").map(|h| h.count),
            Some(expected_files)
        );
    }

    #[test]
    fn all_policies_schedule_every_valid_set(policy_idx in 0usize..4, n_jobs in 1usize..6) {
        let policy: std::sync::Arc<dyn SchedulingPolicy> = match policy_idx {
            0 => std::sync::Arc::new(FastestAvailable),
            1 => std::sync::Arc::new(RoundRobin::default()),
            2 => std::sync::Arc::new(Random::new(42)),
            _ => std::sync::Arc::new(LeastLoaded),
        };
        let grid = CampusGrid::build(
            GridConfig::with_machines(3).with_policy(policy),
            Clock::manual(),
        );
        let client = grid.client("p");
        client.put_file("C:\\p.exe", JobProgram::compute(0.5).to_manifest());
        let mut spec = JobSetSpec::new("pol");
        for i in 0..n_jobs {
            spec = spec.job(JobSpec::new(
                format!("j{i}"),
                FileRef::parse("local://C:\\p.exe").unwrap(),
            ));
        }
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        grid.clock.advance(Duration::from_secs(30));
        prop_assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    }
}
