//! Failure injection across the whole stack: the WS-BaseFaults cause
//! chains the paper's design hinges on must survive every hop.

use std::sync::Arc;
use std::time::Duration;

use wsrf_grid::prelude::*;
use wsrf_grid::testbed::jobset::ValidationError;

fn grid() -> CampusGrid {
    CampusGrid::build(GridConfig::with_machines(2), Clock::manual())
}

fn stage(client: &Client, name: &str, prog: &JobProgram) -> FileRef {
    let path = format!("C:\\{name}");
    client.put_file(&path, prog.to_manifest());
    FileRef::parse(&format!("local://{path}")).unwrap()
}

#[test]
fn invalid_job_sets_fault_at_submission() {
    let grid = grid();
    let client = grid.client("c");
    // Cycle.
    let spec = JobSetSpec::new("cyclic")
        .job(
            JobSpec::new("a", FileRef::parse("local://C:\\x.exe").unwrap())
                .input(FileRef::parse("b://y").unwrap(), "i")
                .output("x"),
        )
        .job(
            JobSpec::new("b", FileRef::parse("local://C:\\x.exe").unwrap())
                .input(FileRef::parse("a://x").unwrap(), "i")
                .output("y"),
        );
    // Local validation catches it too.
    assert!(matches!(
        spec.validate(),
        Err(ValidationError::DependencyCycle(_))
    ));
    let err = client.submit(&spec, "griduser", "gridpass").unwrap_err();
    assert_eq!(err.error_code(), Some("uvacg:InvalidJobSet"));

    // Empty set.
    let err = client
        .submit(&JobSetSpec::new("empty"), "griduser", "gridpass")
        .unwrap_err();
    assert_eq!(err.error_code(), Some("uvacg:InvalidJobSet"));
}

#[test]
fn missing_local_file_fails_the_job_not_the_submission() {
    let grid = grid();
    let client = grid.client("c");
    let exe = stage(&client, "p.exe", &JobProgram::compute(1.0).reading("in"));
    let spec = JobSetSpec::new("missing-input").job(
        JobSpec::new("j", exe).input(FileRef::parse("local://C:\\does-not-exist").unwrap(), "in"),
    );
    // Submission succeeds: staging is asynchronous (one-way upload).
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(10));
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            assert_eq!(fault.error_code, "uvacg:JobSetFailed");
            assert!(fault.to_string().contains("does-not-exist"), "{fault}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn disk_quota_exhaustion_surfaces_as_job_failure() {
    let grid = CampusGrid::build(
        GridConfig {
            machines: vec![MachineSpec::new("tiny").with_disk_quota(512)],
            ..GridConfig::default()
        },
        Clock::manual(),
    );
    let client = grid.client("c");
    // Program writes 1 MB onto a 512-byte disk.
    let exe = stage(
        &client,
        "big.exe",
        &JobProgram::compute(1.0).writing("huge.dat", 1 << 20),
    );
    let spec = JobSetSpec::new("quota").job(JobSpec::new("j", exe).output("huge.dat"));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(10));
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            // exit 73 = output write failure.
            assert!(
                fault.root_cause().description.contains("code 73"),
                "{fault}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn fault_chain_preserves_all_three_levels() {
    // Scheduler fault <- dispatch fault <- ES BadCredentials: the
    // secure grid rejects a user unknown on the machine.
    let grid = CampusGrid::build(GridConfig::with_machines(1).secure(), Clock::manual());
    let client = grid.client("c");
    let exe = stage(&client, "p.exe", &JobProgram::compute(1.0));
    let spec = JobSetSpec::new("who").job(JobSpec::new("j", exe));
    let handle = client.submit(&spec, "mallory", "1337").unwrap();
    grid.clock.advance(Duration::from_secs(5));
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            assert_eq!(fault.error_code, "uvacg:JobSetFailed");
            assert!(fault.chain_len() >= 3, "chain: {fault}");
            let cause = fault.cause.as_ref().unwrap();
            assert_eq!(cause.error_code, "uvacg:DispatchFailed");
            assert_eq!(fault.root_cause().error_code, "uvacg:BadCredentials");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn grid_with_no_machines_fails_cleanly() {
    let grid = CampusGrid::build(GridConfig::default(), Clock::manual());
    let client = grid.client("c");
    let exe = stage(&client, "p.exe", &JobProgram::compute(1.0));
    let spec = JobSetSpec::new("nowhere").job(JobSpec::new("j", exe));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            assert_eq!(fault.root_cause().error_code, "uvacg:NoNodes");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn garbage_executable_fails_at_spawn() {
    let grid = grid();
    let client = grid.client("c");
    client.put_file(
        "C:\\notaprog.exe",
        b"MZ\x90\x00this is not a manifest".to_vec(),
    );
    let spec = JobSetSpec::new("garbage").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\notaprog.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(5));
    match handle.outcome().unwrap() {
        JobSetOutcome::Failed(fault) => {
            assert!(
                fault.to_string().contains("not a runnable program"),
                "{fault}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn independent_job_sets_are_isolated() {
    // One failing set must not affect a concurrently running one.
    let grid = grid();
    let good_client = grid.client("good");
    let bad_client = grid.client("bad");
    let good_exe = stage(&good_client, "ok.exe", &JobProgram::compute(2.0));
    let bad_exe = stage(&bad_client, "bad.exe", &JobProgram::compute(1.0).exiting(1));
    let good = good_client
        .submit(
            &JobSetSpec::new("good").job(JobSpec::new("g", good_exe)),
            "griduser",
            "gridpass",
        )
        .unwrap();
    let bad = bad_client
        .submit(
            &JobSetSpec::new("bad").job(JobSpec::new("b", bad_exe)),
            "griduser",
            "gridpass",
        )
        .unwrap();
    grid.clock.advance(Duration::from_secs(10));
    assert_eq!(good.outcome(), Some(JobSetOutcome::Completed));
    assert!(matches!(bad.outcome(), Some(JobSetOutcome::Failed(_))));
    // The good client never saw the bad set's events.
    assert!(good_client
        .listener()
        .received()
        .iter()
        .all(|m| m.topic.to_string().starts_with(&good.topic)));
}

#[test]
fn job_set_resource_records_the_fault() {
    let grid = grid();
    let client = grid.client("c");
    let exe = stage(&client, "p.exe", &JobProgram::compute(0.5).exiting(9));
    let spec = JobSetSpec::new("faulted").job(JobSpec::new("j", exe).output("x"));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(5));
    assert_eq!(handle.status().unwrap(), "Failed");
    // The Fault resource property is queryable via XPath.
    use wsrf_grid::soap::{Envelope, MessageInfo};
    use wsrf_grid::xml::Element as El;
    let mut env = Envelope::new(
        El::new(wsrf_grid::soap::ns::WSRP, "QueryResourceProperties").child(
            El::new(wsrf_grid::soap::ns::WSRP, "QueryExpression")
                .attr("Dialect", wsrf_grid::wsrf::porttypes::XPATH_DIALECT)
                .text("//Fault//ErrorCode"),
        ),
    );
    MessageInfo::request(
        handle.jobset.clone(),
        wsrf_grid::wsrf::porttypes::wsrp_action("QueryResourceProperties"),
    )
    .apply(&mut env);
    let resp = grid.net.call(&handle.jobset.address, env).unwrap();
    assert!(
        resp.body.text_content().contains("uvacg:JobSetFailed"),
        "{}",
        resp.body.to_pretty_xml()
    );
}

#[test]
fn killed_jobs_release_machine_capacity() {
    let grid = grid();
    let client = grid.client("c");
    let exe = stage(&client, "spin.exe", &JobProgram::compute(1e9));
    let spec = JobSetSpec::new("spin").job(JobSpec::new("s", exe));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(1));
    let busy: f64 = grid.machines.iter().map(|m| m.utilization()).sum();
    assert!(busy > 0.0);
    handle.kill_job("s").unwrap();
    let busy: f64 = grid.machines.iter().map(|m| m.utilization()).sum();
    assert_eq!(busy, 0.0, "capacity released after kill");
}

#[test]
fn missing_client_fileserver_reference_is_reported() {
    // Submit directly through the scheduler helper without a file
    // server — the scheduler must fail the set, not panic.
    let grid = grid();
    let exe = FileRef::parse("local://C:\\x.exe").unwrap();
    let spec = JobSetSpec::new("nofs").job(JobSpec::new("j", exe));
    let reply = wsrf_grid::testbed::scheduler::submit(
        &grid.net,
        &grid.scheduler.epr(),
        &spec,
        None,
        None, // no file server
        None,
        Some(("griduser", "gridpass")),
    )
    .unwrap();
    let states = grid
        .scheduler
        .job_states(reply.jobset.resource_key().unwrap())
        .unwrap();
    assert_eq!(states[0].1, "Waiting", "job never dispatched");
    // The set resource shows Failed with the NoFileServer cause.
    let key = reply.jobset.resource_key().unwrap();
    let doc = grid
        .scheduler
        .service
        .core()
        .store
        .load("Scheduler", key)
        .unwrap();
    assert_eq!(doc.text_local("Status").unwrap(), "Failed");
    let fault_el = &doc.get_local("Fault")[0];
    assert!(fault_el.to_xml().contains("uvacg:NoFileServer"));
}

#[test]
fn lost_upload_notification_leaves_job_staging() {
    // White-box: deliver an UploadComplete for a job that never asked
    // for one — the ES must fault, not spawn.
    use wsrf_grid::soap::{Envelope, MessageInfo};
    use wsrf_grid::testbed::UVACG;
    use wsrf_grid::xml::Element as El;
    let grid = grid();
    let es_addr = "inproc://machine01/Execution";
    let ghost = wsrf_grid::soap::EndpointReference::resource(
        es_addr,
        wsrf_grid::testbed::es::job_key_property(),
        "execution-99",
    );
    let mut env = Envelope::new(El::new(UVACG, "UploadComplete").attr("uploaded", "1"));
    MessageInfo::request(
        ghost,
        wsrf_grid::wsrf::container::action_uri("Execution", "UploadComplete"),
    )
    .apply(&mut env);
    let resp = grid.net.call(es_addr, env).unwrap();
    // The resource does not exist at all, so the container's standard
    // NoSuchResource fault fires before the ES's own check.
    assert_eq!(
        resp.fault().unwrap().error_code(),
        Some("wsrf:NoSuchResource")
    );
}

#[test]
fn policy_arc_can_be_shared_across_grids() {
    // Smoke test that policies are stateful-but-shareable.
    let policy: Arc<dyn SchedulingPolicy> = Arc::new(RoundRobin::default());
    for _ in 0..2 {
        let grid = CampusGrid::build(
            GridConfig {
                machines: vec![MachineSpec::new("a"), MachineSpec::new("b")],
                policy: policy.clone(),
                ..GridConfig::default()
            },
            Clock::manual(),
        );
        let client = grid.client("c");
        let exe = stage(&client, "p.exe", &JobProgram::compute(0.1));
        let spec = JobSetSpec::new("s").job(JobSpec::new("j", exe));
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        grid.clock.advance(Duration::from_secs(2));
        assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    }
}
