//! The tentpole acceptance scenario: the grid observes itself.
//!
//! Figure 3's ten steps are not just *executed* (figure3_walkthrough.rs
//! proves that) — they are *measured*: the Scheduler exposes a
//! `StepMetric` resource property per observed step on the job-set
//! WS-Resource, queryable over the wire with the standard WSRF port
//! types, and the container records per-stage dispatch timings in the
//! deployment-wide `wsrf-obs` registry.

use std::collections::BTreeMap;
use std::time::Duration;

use wsrf_grid::prelude::*;
use wsrf_grid::wsrf::proxy::ResourceProxy;

const STEP_NAMES: [(u64, &str); 10] = [
    (1, "submit"),
    (2, "nis_poll"),
    (3, "es_run"),
    (4, "workdir"),
    (5, "client_stage"),
    (6, "grid_stage"),
    (7, "upload_complete"),
    (8, "spawn"),
    (9, "epr_broadcast"),
    (10, "exit_broadcast"),
];

/// Boot a grid, advance the clock past zero (so every recorded virtual
/// timestamp is non-zero), and run a two-job chain to completion.
fn run_observed_chain() -> (CampusGrid, JobSetHandle) {
    let grid = CampusGrid::build(GridConfig::with_machines(2), Clock::manual());
    let client = grid.client("scientist");
    grid.clock.advance(Duration::from_secs(100));
    client.put_file(
        "C:\\p.exe",
        JobProgram::compute(2.0)
            .writing("out.dat", 64)
            .to_manifest(),
    );
    let spec = JobSetSpec::new("observed")
        .job(JobSpec::new("j1", FileRef::parse("local://C:\\p.exe").unwrap()).output("out.dat"))
        .job(
            JobSpec::new("j2", FileRef::parse("local://C:\\p.exe").unwrap())
                .input(FileRef::parse("j1://out.dat").unwrap(), "in.dat"),
        );
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    for _ in 0..60 {
        if handle.outcome().is_some() {
            break;
        }
        grid.clock.advance(Duration::from_secs(1));
    }
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    (grid, handle)
}

#[test]
fn figure3_steps_exposed_as_resource_properties() {
    let (grid, handle) = run_observed_chain();

    // Pull the StepMetric properties through the standard port types —
    // no scheduler-specific client code.
    let proxy = ResourceProxy::new(&grid.net, handle.jobset.clone());
    let metrics = proxy.query("//StepMetric").unwrap();
    assert!(
        !metrics.is_empty(),
        "scheduler recorded no StepMetric properties"
    );

    // (job, step) -> (name, virtual-ns timestamp).
    let mut by_job: BTreeMap<String, BTreeMap<u64, (String, u64)>> = BTreeMap::new();
    for el in &metrics {
        let step: u64 = el.attr_value("step").expect("step attr").parse().unwrap();
        let name = el.attr_value("name").expect("name attr").to_string();
        let job = el.attr_value("job").expect("job attr").to_string();
        let t: u64 = el.attr_value("t").expect("t attr").parse().unwrap();
        assert!(t > 0, "step {step} ({name}) for {job} has a zero timestamp");
        by_job.entry(job).or_default().insert(step, (name, t));
    }

    // Step 1 (submission) is set-wide; each job then walks steps 2-10.
    let submit = by_job.get("*").expect("set-wide submit entry");
    assert_eq!(submit[&1].0, "submit");
    for job in ["j1", "j2"] {
        let steps = by_job
            .get(job)
            .unwrap_or_else(|| panic!("no steps for {job}"));
        let mut prev_t = submit[&1].1;
        for (step, expected_name) in &STEP_NAMES[1..] {
            let (name, t) = steps
                .get(step)
                .unwrap_or_else(|| panic!("{job} missing step {step} ({expected_name})"));
            assert_eq!(name, expected_name, "{job} step {step}");
            assert!(
                *t >= prev_t,
                "{job} step {step} went backwards: {t} < {prev_t}"
            );
            prev_t = *t;
        }
    }
    // The chained job cannot have spawned before its predecessor exited.
    assert!(by_job["j2"][&8].1 >= by_job["j1"][&10].1);

    // Makespan is a plain resource property too, in virtual seconds.
    let makespan = proxy.get_f64("Makespan").unwrap();
    assert!(makespan > 0.0 && makespan < 60.0, "makespan {makespan}");

    // The registry kept the same story as latency histograms.
    let snap = grid.metrics_snapshot();
    for (step, name) in STEP_NAMES {
        let h = snap
            .histogram(&format!("scheduler.step.{step:02}_{name}_ns"))
            .unwrap_or_else(|| panic!("no histogram for step {step}"));
        assert!(h.count > 0, "step {step} histogram empty");
    }
    assert_eq!(snap.histogram("scheduler.makespan_ns").unwrap().count, 1);
}

#[test]
fn container_dispatch_counts_match_invocations() {
    let (grid, _handle) = run_observed_chain();
    let snap = grid.metrics_snapshot();

    let services: Vec<String> = snap
        .entries
        .iter()
        .filter_map(|(name, _)| {
            name.strip_suffix(".dispatches")
                .and_then(|n| n.strip_prefix("container."))
                .map(str::to_string)
        })
        .collect();
    assert!(!services.is_empty());

    let mut exercised = 0;
    for svc in &services {
        let dispatches = snap
            .counter(&format!("container.{svc}.dispatches"))
            .unwrap();
        assert_eq!(
            snap.counter(&format!("container.{svc}.faults")),
            Some(0),
            "{svc} faulted"
        );
        // Stage timings are sampled (1 in 16, first always), and with
        // zero faults a sampled dispatch laps all four stages — the
        // counts agree with each other and bound the dispatch counter.
        // A deployed-but-idle service (e.g. Monitor when nothing polls
        // it) shows zero laps for zero dispatches.
        let resolve = snap
            .histogram(&format!("container.{svc}.stage.resolve.real_ns"))
            .unwrap();
        assert!(
            resolve.count <= dispatches && (dispatches == 0 || resolve.count >= 1),
            "{svc}: {} resolve laps for {dispatches} dispatches",
            resolve.count
        );
        for stage in ["load", "invoke", "save"] {
            let h = snap
                .histogram(&format!("container.{svc}.stage.{stage}.real_ns"))
                .unwrap();
            assert_eq!(h.count, resolve.count, "{svc} stage {stage} lap count");
        }
        // With zero faults every dispatch resolved to exactly one
        // operation, so the per-op counters partition the total.
        let op_sum: u64 = snap
            .entries
            .iter()
            .filter_map(|(name, v)| match v {
                wsrf_grid::obs::MetricValue::Counter(c)
                    if name.starts_with(&format!("container.{svc}.op."))
                        && name.ends_with(".count") =>
                {
                    Some(*c)
                }
                _ => None,
            })
            .sum();
        assert_eq!(op_sum, dispatches, "{svc} op counters vs dispatches");
        if dispatches > 0 {
            exercised += 1;
            // All four Figure 1 pipeline stages timed something real.
            for stage in ["resolve", "load", "invoke", "save"] {
                let h = snap
                    .histogram(&format!("container.{svc}.stage.{stage}.real_ns"))
                    .unwrap();
                assert!(h.sum > 0, "{svc} stage {stage} shows zero real time");
            }
        }
    }
    // The walkthrough exercises the whole testbed, not one service.
    assert!(exercised >= 4, "only {exercised} services dispatched");
}

#[test]
fn disabled_observability_records_nothing_and_changes_nothing() {
    let grid = CampusGrid::build(
        GridConfig::with_machines(2).with_obs(ObsConfig::disabled()),
        Clock::manual(),
    );
    let client = grid.client("scientist");
    client.put_file("C:\\p.exe", JobProgram::compute(1.0).to_manifest());
    let spec = JobSetSpec::new("dark").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(10));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    assert!(
        grid.metrics_snapshot().is_empty(),
        "disabled registry recorded metrics"
    );

    // The StepMetric resource properties survive opt-out: they ride the
    // property document, not the registry.
    let proxy = ResourceProxy::new(&grid.net, handle.jobset.clone());
    assert!(!proxy.query("//StepMetric").unwrap().is_empty());
}
