//! Cross-crate WSRF behaviour on a *live* grid: the standard port
//! types, resource lifetimes and service-group queries must all work
//! against the testbed's real resources — the paper's central claim is
//! precisely that "this functionality ... work[s] on all services, not
//! just service/client pairs that had agreed upon their own specific
//! interfaces".

use std::time::Duration;

use wsrf_grid::prelude::*;
use wsrf_grid::soap::{ns, MessageInfo};
use wsrf_grid::wsrf::porttypes::{wsrl_action, wsrp_action, XPATH_DIALECT};
use wsrf_grid::xml::Element as El;

fn grid() -> CampusGrid {
    CampusGrid::build(GridConfig::with_machines(2), Clock::manual())
}

fn start_one_job(grid: &CampusGrid, cpu: f64) -> (Client, JobSetHandle) {
    let client = grid.client("c");
    client.put_file(
        "C:\\p.exe",
        JobProgram::compute(cpu).writing("o.dat", 64).to_manifest(),
    );
    let spec = JobSetSpec::new("s")
        .job(JobSpec::new("j", FileRef::parse("local://C:\\p.exe").unwrap()).output("o.dat"));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    (client, handle)
}

fn call(grid: &CampusGrid, to: &EndpointReference, action: String, body: El) -> Envelope {
    let mut env = Envelope::new(body);
    MessageInfo::request(to.clone(), action).apply(&mut env);
    grid.net.call(&to.address, env).unwrap()
}

#[test]
fn get_multiple_properties_on_a_live_job() {
    let grid = grid();
    let (_client, handle) = start_one_job(&grid, 100.0);
    let job = handle.job_epr("j").unwrap();
    let resp = call(
        &grid,
        &job,
        wsrp_action("GetMultipleResourceProperties"),
        El::new(ns::WSRP, "GetMultipleResourceProperties")
            .child(El::new(ns::WSRP, "ResourceProperty").text("Status"))
            .child(El::new(ns::WSRP, "ResourceProperty").text("JobName"))
            .child(El::new(ns::WSRP, "ResourceProperty").text("CpuTimeUsed")),
    );
    assert!(!resp.is_fault());
    let texts: Vec<String> = resp.body.elements().map(|e| e.text_content()).collect();
    assert_eq!(texts[0], "Running");
    assert_eq!(texts[1], "j");
    assert_eq!(texts[2], "0.000000");
}

#[test]
fn query_jobs_by_status_with_xpath() {
    let grid = grid();
    let (_client, handle) = start_one_job(&grid, 100.0);
    let job = handle.job_epr("j").unwrap();
    let resp = call(
        &grid,
        &job,
        wsrp_action("QueryResourceProperties"),
        El::new(ns::WSRP, "QueryResourceProperties").child(
            El::new(ns::WSRP, "QueryExpression")
                .attr("Dialect", XPATH_DIALECT)
                .text("/ResourcePropertyDocument[Status='Running']/JobName"),
        ),
    );
    assert_eq!(resp.body.text_content(), "j");
}

#[test]
fn job_resources_obey_resource_lifetime() {
    let grid = grid();
    let (_client, handle) = start_one_job(&grid, 1.0);
    grid.clock.advance(Duration::from_secs(5));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    let job = handle.job_epr("j").unwrap();

    // Schedule the finished job's destruction 100 virtual seconds out.
    let resp = call(
        &grid,
        &job,
        wsrl_action("SetTerminationTime"),
        El::new(ns::WSRL, "SetTerminationTime")
            .child(El::new(ns::WSRL, "RequestedTerminationTime").text("200")),
    );
    assert!(!resp.is_fault(), "{:?}", resp.fault());

    // Still answerable before the deadline...
    let resp = call(
        &grid,
        &job,
        wsrp_action("GetResourceProperty"),
        El::new(ns::WSRP, "GetResourceProperty").text("Status"),
    );
    assert_eq!(resp.body.text_content(), "Exited");

    // ...gone after it.
    grid.clock.advance(Duration::from_secs(300));
    let resp = call(
        &grid,
        &job,
        wsrp_action("GetResourceProperty"),
        El::new(ns::WSRP, "GetResourceProperty").text("Status"),
    );
    assert_eq!(
        resp.fault().unwrap().error_code(),
        Some("wsrf:NoSuchResource")
    );
}

#[test]
fn immediate_destroy_of_a_directory_resource() {
    let grid = grid();
    let (dir, _path) =
        wsrf_grid::testbed::fss::create_directory(&grid.net, "inproc://machine01/FileSystem")
            .unwrap();
    let resp = call(
        &grid,
        &dir,
        wsrl_action("Destroy"),
        El::new(ns::WSRL, "Destroy"),
    );
    assert!(!resp.is_fault());
    let err = wsrf_grid::testbed::fss::list(&grid.net, &dir).unwrap_err();
    assert_eq!(err.error_code(), Some("wsrf:NoSuchResource"));
}

#[test]
fn set_resource_properties_annotates_a_job_set() {
    // Clients can attach their own metadata to a job-set resource via
    // the standard SetResourceProperties.
    let grid = grid();
    let (_client, handle) = start_one_job(&grid, 50.0);
    let resp = call(
        &grid,
        &handle.jobset,
        wsrp_action("SetResourceProperties"),
        El::new(ns::WSRP, "SetResourceProperties").child(
            El::new(ns::WSRP, "Insert")
                .child(El::new(wsrf_grid::testbed::UVACG, "Annotation").text("run for paper")),
        ),
    );
    assert!(!resp.is_fault());
    let resp = call(
        &grid,
        &handle.jobset,
        wsrp_action("GetResourceProperty"),
        El::new(ns::WSRP, "GetResourceProperty").text("Annotation"),
    );
    assert_eq!(resp.body.text_content(), "run for paper");
}

#[test]
fn property_document_of_a_job_set_lists_all_job_statuses() {
    let grid = grid();
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(100.0).to_manifest());
    let mut spec = JobSetSpec::new("multi");
    for i in 0..3 {
        spec = spec.job(JobSpec::new(
            format!("j{i}"),
            FileRef::parse("local://C:\\p.exe").unwrap(),
        ));
    }
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    let resp = call(
        &grid,
        &handle.jobset,
        wsrp_action("GetResourcePropertyDocument"),
        El::new(ns::WSRP, "GetResourcePropertyDocument"),
    );
    let doc = resp.body.elements().next().unwrap();
    let statuses: Vec<&El> = doc
        .elements()
        .filter(|e| e.name.local == "JobStatus")
        .collect();
    assert_eq!(statuses.len(), 3);
    assert!(statuses.iter().all(|s| s.text_content() == "Dispatched"));
}

#[test]
fn nis_entries_respond_to_standard_port_types() {
    let grid = grid();
    // Find entries via the group op, then read one entry's content
    // through GetResourceProperty.
    let nis = EndpointReference::service(&grid.nis_address);
    let resp = call(
        &grid,
        &nis,
        wsrf_grid::wsrf::servicegroup::group_action("NodeInfo", "Entries"),
        El::new(ns::WSSG, "Entries"),
    );
    let entries: Vec<EndpointReference> = resp
        .body
        .elements()
        .filter_map(|e| EndpointReference::from_element(e).ok())
        .collect();
    assert_eq!(entries.len(), 2);
    let resp = call(
        &grid,
        &entries[0],
        wsrp_action("GetResourceProperty"),
        El::new(ns::WSRP, "GetResourceProperty").text("CpuMhz"),
    );
    assert!(!resp.body.text_content().is_empty());
}

#[test]
fn find_idle_machines_by_content() {
    let grid = grid();
    let (_client, _handle) = start_one_job(&grid, 1000.0);
    // machine02 took the job; find members still at utilization 0.
    let nis = EndpointReference::service(&grid.nis_address);
    let resp = call(
        &grid,
        &nis,
        wsrf_grid::wsrf::servicegroup::group_action("NodeInfo", "FindByContent"),
        El::new(ns::WSSG, "FindByContent").text("/Content[Utilization='0']"),
    );
    let idle: Vec<EndpointReference> = resp
        .body
        .elements()
        .filter_map(|e| EndpointReference::from_element(e).ok())
        .collect();
    assert_eq!(idle.len(), 1);
    assert_eq!(idle[0].address, "inproc://machine01/Execution");
}

#[test]
fn subscriptions_created_by_the_scheduler_are_inspectable() {
    // §5's "loose coupling" point: the broker's subscriptions are
    // themselves resources a client can enumerate and inspect.
    let grid = grid();
    let (_client, _handle) = start_one_job(&grid, 100.0);
    let broker_store = &grid.scheduler.service.core().net;
    let _ = broker_store;
    // Two subscriptions exist (client + scheduler); read them through
    // the broker's QueryResourceProperties per subscription key.
    // We reach them by probing the store-backed key space via the
    // service's own listing isn't exposed remotely, so instead verify
    // by pausing one: pause the client subscription and check events
    // stop flowing to it.
    // (Enumerate keys directly: white-box via the broker service.)
    // -- simpler: submit produced events already prove routing; here we
    // check at least that a fresh explicit subscription works next to
    // the scheduler's.
    let probe = wsrf_grid::notification::NotificationListener::register(
        &grid.net,
        "inproc://probe/listener",
    );
    let sub = wsrf_grid::notification::broker::subscribe(
        &grid.net,
        &grid.broker,
        &probe.epr(),
        &wsrf_grid::notification::TopicExpression::full("jobset-scheduler-1//"),
        None,
    )
    .unwrap();
    // Its TopicExpression is readable through the standard port type.
    let resp = call(
        &grid,
        &sub,
        wsrp_action("GetResourceProperty"),
        El::new(ns::WSRP, "GetResourceProperty").text("TopicExpression"),
    );
    assert_eq!(resp.body.text_content(), "jobset-scheduler-1//");
}
