//! Inbound wire-path invariants: lazy header routing end to end, plus
//! per-exchange parse budgets.
//!
//! `wsrf_xml::parse_event_count` / `dom_build_count` are
//! process-global, so every test in this binary serializes on one
//! mutex — a counter delta measured while another test tokenizes
//! would be garbage. Integration test files run as separate
//! processes, so other files can't interfere.

#![allow(clippy::result_large_err)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use wsrf_grid::prelude::*;
use wsrf_grid::soap::{ns, MessageInfo};
use wsrf_grid::transport::http::{http_call, HttpSoapServer};
use wsrf_grid::transport::tcpframe::{FramedClient, FramedServer};
use wsrf_grid::wsrf::container::{action_uri, Service, ServiceBuilder};
use wsrf_grid::wsrf::porttypes::wsrp_action;
use wsrf_grid::wsrf::{MemoryStore, PropertyDoc};
use wsrf_grid::xml::{dom_build_count, parse_event_count, Element as El, QName};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// A Job service with one keyed resource (`job-1`, Status=Running).
fn job_service() -> (Arc<Service>, EndpointReference) {
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    let mut doc = PropertyDoc::new();
    doc.set_text(QName::new(ns::UVACG, "JobName"), "wire-job");
    doc.set_text(QName::new(ns::UVACG, "Status"), "Running");
    let svc = ServiceBuilder::new("Job", "inproc://m1/Job", Arc::new(MemoryStore::new()))
        .build(clock, net);
    let epr = svc.core().create_resource_with_key("job-1", doc).unwrap();
    (svc, epr)
}

/// A rendered WS-RP GetResourceProperty request for `{uvacg}Status`.
fn get_status_wire(epr: &EndpointReference) -> String {
    let mut env = Envelope::new(
        El::new(ns::WSRP, "GetResourceProperty").text(format!("{{{}}}Status", ns::UVACG)),
    );
    MessageInfo::request(epr.clone(), wsrp_action("GetResourceProperty")).apply(&mut env);
    env.to_xml()
}

/// Per-exchange parse budgets for the fixed wires below. The numbers
/// are pinned exactly, like the render budgets in `wirepath_renders`:
/// a regression that tokenizes twice or materializes an extra DOM
/// must show up as a diff here, not as a silent slowdown.
const GET_EVENTS_LAZY: u64 = 24;
const SET_EVENTS_LAZY: u64 = 32;

#[test]
fn wsrp_read_answers_without_materializing_a_body_dom() {
    let _g = lock();
    let (svc, epr) = job_service();
    let wire = get_status_wire(&epr);

    svc.dispatch_wire(&wire); // warm: interning, store paths
    let doms = dom_build_count();
    let events = parse_event_count();
    let resp = svc.dispatch_wire(&wire);
    assert!(!resp.is_fault(), "{:?}", resp.fault());
    assert_eq!(resp.body.text_content(), "Running");
    assert_eq!(
        dom_build_count() - doms,
        0,
        "a WS-RP read must route and answer with zero DOM builds"
    );
    assert_eq!(parse_event_count() - events, GET_EVENTS_LAZY);
}

#[test]
fn write_op_materializes_exactly_one_body_dom() {
    let _g = lock();
    let (svc, epr) = job_service();
    let mut env = Envelope::new(
        El::new(ns::WSRP, "SetResourceProperties")
            .child(El::new(ns::WSRP, "Update").child(El::new(ns::UVACG, "Status").text("Done"))),
    );
    MessageInfo::request(epr.clone(), wsrp_action("SetResourceProperties")).apply(&mut env);
    let wire = env.to_xml();

    svc.dispatch_wire(&wire); // warm
    let doms = dom_build_count();
    let events = parse_event_count();
    let resp = svc.dispatch_wire(&wire);
    assert!(!resp.is_fault(), "{:?}", resp.fault());
    assert_eq!(
        dom_build_count() - doms,
        1,
        "a write op materializes its deferred body exactly once"
    );
    assert_eq!(parse_event_count() - events, SET_EVENTS_LAZY);
    let check = svc.dispatch_wire(&get_status_wire(&epr));
    assert_eq!(check.body.text_content(), "Done");
}

#[test]
fn transport_read_exchanges_build_only_the_client_response_dom() {
    let _g = lock();
    let (svc, epr) = job_service();
    let mut env = Envelope::new(
        El::new(ns::WSRP, "GetResourceProperty").text(format!("{{{}}}Status", ns::UVACG)),
    );
    MessageInfo::request(epr.clone(), wsrp_action("GetResourceProperty")).apply(&mut env);

    // soap.tcp: the server routes lazily off its receive buffer; the
    // one DOM in the whole exchange is the client parsing the reply.
    let ts = FramedServer::start(svc.clone()).unwrap();
    let tc = FramedClient::connect(&ts.authority()).unwrap();
    tc.call(&env).unwrap(); // warm
    let doms = dom_build_count();
    let resp = tc.call(&env).unwrap();
    assert!(!resp.is_fault());
    assert_eq!(
        dom_build_count() - doms,
        1,
        "soap.tcp read exchange: client response parse only"
    );

    // HTTP (untraced): same budget.
    let hs = HttpSoapServer::start(svc.clone()).unwrap();
    http_call(&hs.authority(), "Job", &env).unwrap(); // warm
    let doms = dom_build_count();
    let resp = http_call(&hs.authority(), "Job", &env).unwrap();
    assert!(!resp.is_fault());
    assert_eq!(
        dom_build_count() - doms,
        1,
        "http read exchange: client response parse only"
    );
}

#[test]
fn headerless_envelope_faults_like_the_dom_path() {
    let _g = lock();
    let (svc, _) = job_service();
    let wire = Envelope::new(El::local("Ping")).to_xml();
    let resp = svc.dispatch_wire(&wire);
    let fault = resp.fault().expect("headerless envelope must fault");
    assert!(
        fault.reason.contains("wsa:Action"),
        "fault names the missing header: {}",
        fault.reason
    );
    // The DOM pipeline faults the same way on the same wire.
    let dom_resp = svc.dispatch(Envelope::parse(&wire).unwrap());
    assert_eq!(dom_resp.fault().unwrap().reason, fault.reason);
}

#[test]
fn duplicate_to_and_swapped_sections_route_like_the_dom_path() {
    let _g = lock();
    let (svc, _) = job_service();
    // Duplicate <To> (last wins) plus the key as a promoted reference
    // property, hand-written rather than rendered.
    let dup_to = format!(
        "<e:Envelope xmlns:e=\"{soap}\" xmlns:a=\"{wsa}\" xmlns:u=\"{uvacg}\">\
         <e:Header><a:To>inproc://bogus/Nope</a:To>\
         <a:Action>{action}</a:Action>\
         <u:JobKey>job-1</u:JobKey>\
         <a:To>inproc://m1/Job</a:To></e:Header>\
         <e:Body><w:GetResourceProperty xmlns:w=\"{wsrp}\">\
         {{{uvacg}}}Status</w:GetResourceProperty></e:Body></e:Envelope>",
        soap = ns::SOAP_ENV,
        wsa = ns::WSA,
        uvacg = ns::UVACG,
        wsrp = ns::WSRP,
        action = wsrp_action("GetResourceProperty"),
    );
    // <Body> before <Header> — legal per SOAP, and routing must not
    // depend on section order.
    let body_first = format!(
        "<e:Envelope xmlns:e=\"{soap}\" xmlns:a=\"{wsa}\" xmlns:u=\"{uvacg}\">\
         <e:Body><w:GetResourceProperty xmlns:w=\"{wsrp}\">\
         {{{uvacg}}}Status</w:GetResourceProperty></e:Body>\
         <e:Header><a:To>inproc://m1/Job</a:To>\
         <a:Action>{action}</a:Action>\
         <u:JobKey>job-1</u:JobKey></e:Header></e:Envelope>",
        soap = ns::SOAP_ENV,
        wsa = ns::WSA,
        uvacg = ns::UVACG,
        wsrp = ns::WSRP,
        action = wsrp_action("GetResourceProperty"),
    );
    for wire in [&dup_to, &body_first] {
        let lazy = svc.dispatch_wire(wire);
        assert!(!lazy.is_fault(), "{:?}", lazy.fault());
        assert_eq!(lazy.body.text_content(), "Running");
        // Same answer as the DOM pipeline (bodies compared — each
        // response mints a fresh MessageID header).
        let dom = svc.dispatch(Envelope::parse(wire).unwrap());
        assert_eq!(lazy.body, dom.body);
    }
}

/// Read one `WSE1` frame (flag + payload) off the stream.
fn read_frame(stream: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut head = [0u8; 9];
    stream.read_exact(&mut head).unwrap();
    assert_eq!(&head[..4], b"WSE1");
    let len = u32::from_be_bytes(head[5..9].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
    (head[4], payload)
}

fn write_frame(stream: &mut TcpStream, flags: u8, payload: &[u8]) {
    let mut buf = Vec::with_capacity(9 + payload.len());
    buf.extend_from_slice(b"WSE1");
    buf.push(flags);
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(&buf).unwrap();
}

#[test]
fn truncated_body_after_routed_header_faults_not_hangs() {
    let _g = lock();
    let (svc, epr) = job_service();
    let full = get_status_wire(&epr);
    // Cut mid-body: the headers are complete and routable, the
    // operation element is not.
    let cut = full.find("Status</").expect("body text present") + 3;
    let truncated = &full[..cut];

    // Straight dispatch: a client fault, mirroring what the DOM-path
    // transports answered for unparseable wires.
    let fault = svc.dispatch_wire(truncated).fault().expect("must fault");
    assert!(
        fault.reason.contains("unparseable envelope"),
        "{}",
        fault.reason
    );

    // soap.tcp: the fault comes back as a response frame and the
    // persistent connection survives for the next (good) call.
    let ts = FramedServer::start(svc.clone()).unwrap();
    let mut stream = TcpStream::connect(ts.authority()).unwrap();
    write_frame(&mut stream, 0, truncated.as_bytes());
    let (flags, payload) = read_frame(&mut stream);
    assert_eq!(flags, 2, "FLAG_RESPONSE");
    let resp = Envelope::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(resp.fault().unwrap().reason.contains("unparseable"));
    write_frame(&mut stream, 0, full.as_bytes());
    let (_, payload) = read_frame(&mut stream);
    let resp = Envelope::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(resp.body.text_content(), "Running");

    // HTTP: a 500 carrying the fault envelope, not a stalled socket.
    let hs = HttpSoapServer::start(svc).unwrap();
    let mut s = TcpStream::connect(hs.local_addr()).unwrap();
    write!(
        s,
        "POST /Job HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        truncated.len(),
        truncated
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 500"),
        "{}",
        &raw[..40.min(raw.len())]
    );
    let body = raw.split_once("\r\n\r\n").unwrap().1;
    let fault = Envelope::parse(body).unwrap().fault().unwrap();
    assert!(
        fault.reason.contains("unparseable envelope"),
        "{}",
        fault.reason
    );
}

#[test]
fn custom_read_op_stays_dom_free_over_the_wire() {
    let _g = lock();
    // A service-author read op that only needs the body text keeps the
    // zero-DOM budget too — the contract isn't special to WS-RP.
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    let svc = ServiceBuilder::new("Echo", "inproc://m1/Echo", Arc::new(MemoryStore::new()))
        .read_operation("Shout", |ctx| {
            Ok(El::new(ns::UVACG, "ShoutResponse").text(ctx.body.text().to_uppercase()))
        })
        .build(clock, net);
    let epr = svc.core().create_resource(PropertyDoc::new()).unwrap();
    let mut env = Envelope::new(El::new(ns::UVACG, "Shout").text("quiet"));
    MessageInfo::request(epr, action_uri("Echo", "Shout")).apply(&mut env);
    let wire = env.to_xml();

    svc.dispatch_wire(&wire); // warm
    let doms = dom_build_count();
    let resp = svc.dispatch_wire(&wire);
    assert_eq!(resp.body.text_content(), "QUIET");
    assert_eq!(dom_build_count() - doms, 0);
}
