//! Real-socket coverage: a WSRF service served over genuine localhost
//! HTTP and `soap.tcp` connections, exercising true wire encoding —
//! the paths experiment E5 prices.

#![allow(clippy::result_large_err)]

use std::sync::Arc;

use wsrf_grid::prelude::*;
use wsrf_grid::soap::{ns, MessageInfo};
use wsrf_grid::transport::http::{http_call, http_post, HttpSoapServer};
use wsrf_grid::transport::tcpframe::{FramedClient, FramedServer};
use wsrf_grid::wsrf::container::ServiceBuilder;
use wsrf_grid::wsrf::porttypes::wsrp_action;
use wsrf_grid::wsrf::{MemoryStore, PropertyDoc};
use wsrf_grid::xml::{base64, Element as El, QName};

/// A tiny counter service used behind both transports.
fn counter_service() -> Arc<wsrf_grid::wsrf::Service> {
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    let svc = ServiceBuilder::new(
        "Counter",
        "inproc://local/Counter",
        Arc::new(MemoryStore::new()),
    )
    .operation("Bump", |ctx| {
        let doc = ctx.resource_mut()?;
        let q = QName::new(wsrf_grid::testbed::UVACG, "Count");
        let n = doc.i64(&q).unwrap_or(0) + 1;
        doc.set_i64(q, n);
        Ok(El::new(wsrf_grid::testbed::UVACG, "BumpResponse").text(n.to_string()))
    })
    .build(clock, net);
    let mut doc = PropertyDoc::new();
    doc.set_i64(QName::new(wsrf_grid::testbed::UVACG, "Count"), 0);
    svc.core().create_resource_with_key("c1", doc).unwrap();
    svc
}

fn bump_request(svc: &wsrf_grid::wsrf::Service) -> Envelope {
    let epr = svc.core().epr_for("c1");
    let mut env = Envelope::new(El::new(wsrf_grid::testbed::UVACG, "Bump"));
    MessageInfo::request(
        epr,
        wsrf_grid::wsrf::container::action_uri("Counter", "Bump"),
    )
    .apply(&mut env);
    env
}

#[test]
fn wsrf_dispatch_over_real_http() {
    let svc = counter_service();
    let server = HttpSoapServer::start(svc.clone()).unwrap();
    for expected in 1..=5 {
        let resp = http_call(&server.authority(), "Counter", &bump_request(&svc)).unwrap();
        assert!(!resp.is_fault(), "{:?}", resp.fault());
        assert_eq!(resp.body.text_content(), expected.to_string());
    }
    // Standard port types work over the wire too.
    let epr = svc.core().epr_for("c1");
    let mut env = Envelope::new(El::new(ns::WSRP, "GetResourceProperty").text("Count"));
    MessageInfo::request(epr, wsrp_action("GetResourceProperty")).apply(&mut env);
    let resp = http_call(&server.authority(), "Counter", &env).unwrap();
    assert_eq!(resp.body.text_content(), "5");
}

#[test]
fn wsrf_fault_crosses_http_as_500_with_detail() {
    let svc = counter_service();
    let server = HttpSoapServer::start(svc.clone()).unwrap();
    // Bad key -> NoSuchResource fault.
    let ghost = svc.core().epr_for("ghost");
    let mut env = Envelope::new(El::new(wsrf_grid::testbed::UVACG, "Bump"));
    MessageInfo::request(
        ghost,
        wsrf_grid::wsrf::container::action_uri("Counter", "Bump"),
    )
    .apply(&mut env);
    let resp = http_call(&server.authority(), "Counter", &env).unwrap();
    let fault = resp.fault().unwrap();
    assert_eq!(fault.error_code(), Some("wsrf:NoSuchResource"));
    assert!(fault.detail.unwrap().originator.is_some());
}

#[test]
fn wsrf_dispatch_over_soap_tcp_persistent_connection() {
    let svc = counter_service();
    let server = FramedServer::start(svc.clone()).unwrap();
    let client = FramedClient::connect(&server.authority()).unwrap();
    for expected in 1..=10 {
        let resp = client.call(&bump_request(&svc)).unwrap();
        assert_eq!(resp.body.text_content(), expected.to_string());
    }
}

#[test]
fn bulk_binary_payload_over_both_transports() {
    // 256 KiB of binary content as base64 inside the envelope.
    let blob: Vec<u8> = (0..262_144u32)
        .map(|i| (i.wrapping_mul(2654435761)) as u8)
        .collect();
    let echo = Arc::new(wsrf_grid::transport::FnEndpoint::new("echo", Some));
    let body = El::local("Blob").text(base64::encode(&blob));
    let env = Envelope::new(body);

    let http_server = HttpSoapServer::start(echo.clone()).unwrap();
    let resp = http_call(&http_server.authority(), "echo", &env).unwrap();
    assert_eq!(base64::decode(&resp.body.text_content()).unwrap(), blob);

    let tcp_server = FramedServer::start(echo).unwrap();
    let tcp = FramedClient::connect(&tcp_server.authority()).unwrap();
    let resp = tcp.call(&env).unwrap();
    assert_eq!(base64::decode(&resp.body.text_content()).unwrap(), blob);
}

#[test]
fn one_way_messages_over_both_transports() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let hits = Arc::new(AtomicUsize::new(0));
    let h = hits.clone();
    let sink = Arc::new(wsrf_grid::transport::FnEndpoint::new("sink", move |_| {
        h.fetch_add(1, Ordering::SeqCst);
        None
    }));
    let env = Envelope::new(El::local("Event"));

    let http_server = HttpSoapServer::start(sink.clone()).unwrap();
    assert!(http_post(&http_server.authority(), "sink", &env)
        .unwrap()
        .is_none());
    assert_eq!(hits.load(Ordering::SeqCst), 1);

    let tcp_server = FramedServer::start(sink).unwrap();
    let tcp = FramedClient::connect(&tcp_server.authority()).unwrap();
    tcp.send_oneway(&env).unwrap();
    for _ in 0..200 {
        if hits.load(Ordering::SeqCst) == 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(hits.load(Ordering::SeqCst), 2);
}

#[test]
fn trace_context_survives_both_transports_byte_for_byte() {
    // The distributed-tracing header rides next to the WS-Addressing
    // headers; a hop must be able to parse it off the wire, re-stamp
    // it, and have the next hop read back the identical context.
    let tc = TraceContext::new(0xdead_beef_cafe_f00d, 0x0123_4567_89ab_cdef, true);
    let wire = tc.to_traceparent();
    let relay = Arc::new(wsrf_grid::transport::FnEndpoint::new("relay", |env| {
        let parsed = TraceContext::from_envelope(&env).expect("trace header arrived");
        let mut reply = El::local("Ok").text(parsed.to_traceparent());
        reply = reply.attr("sampled", parsed.sampled.to_string());
        let mut out = Envelope::new(reply);
        parsed.stamp(&mut out); // re-stamp: the parse → stamp → parse cycle
        Some(out)
    }));
    let mut env = Envelope::new(El::local("Ping"));
    tc.stamp(&mut env);

    let http_server = HttpSoapServer::start(relay.clone()).unwrap();
    let resp = http_call(&http_server.authority(), "relay", &env).unwrap();
    assert_eq!(resp.body.text_content(), wire, "traceparent over HTTP");
    assert_eq!(TraceContext::from_envelope(&resp), Some(tc));

    let tcp_server = FramedServer::start(relay).unwrap();
    let tcp = FramedClient::connect(&tcp_server.authority()).unwrap();
    let resp = tcp.call(&env).unwrap();
    assert_eq!(resp.body.text_content(), wire, "traceparent over soap.tcp");
    assert_eq!(TraceContext::from_envelope(&resp), Some(tc));
}

#[test]
fn unicode_and_escaping_survive_the_wire() {
    let echo = Arc::new(wsrf_grid::transport::FnEndpoint::new("echo", Some));
    let server = HttpSoapServer::start(echo).unwrap();
    let tricky = "päth\\tö <file> & \"quotes\" 'apos' 日本語";
    let env = Envelope::new(El::local("T").attr("v", tricky).text(tricky));
    let resp = http_call(&server.authority(), "echo", &env).unwrap();
    assert_eq!(resp, env);
}
