//! Render-budget invariants for every transport hot path.
//!
//! `wsrf_soap::render_count()` is a process-global counter bumped once
//! per `Envelope::write_into` (size passes via `wire_len` do not
//! count). Integration test files run as separate processes, so this
//! file holds exactly one test — a second test in the same binary
//! would race the counter.

#![allow(clippy::result_large_err)]

use std::sync::Arc;

use wsrf_grid::prelude::*;
use wsrf_grid::soap::render_count;
use wsrf_grid::transport::http::{http_call, HttpSoapServer};
use wsrf_grid::transport::tcpframe::{FramedClient, FramedServer};
use wsrf_grid::transport::FnEndpoint;
use wsrf_grid::xml::Element as El;

#[test]
fn transports_hit_their_render_budgets() {
    let env = Envelope::new(El::local("Ping").text("x"));

    // Inproc: byte accounting runs off wire_len — zero renders per
    // exchange, down from two render+clone cycles before the rework.
    let net = InProcNetwork::new(Clock::manual());
    net.register("inproc://m1/Echo", Arc::new(FnEndpoint::new("echo", Some)));
    net.call("inproc://m1/Echo", env.clone()).unwrap(); // warm
    let r0 = render_count();
    for _ in 0..5 {
        net.call("inproc://m1/Echo", env.clone()).unwrap();
    }
    net.send_oneway("inproc://m1/Echo", env.clone()).unwrap();
    assert_eq!(render_count() - r0, 0, "inproc must not render envelopes");

    // HTTP: exactly one render per direction (client request, server
    // response), per exchange.
    let hs = HttpSoapServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
    http_call(&hs.authority(), "svc", &env).unwrap(); // warm
    let r0 = render_count();
    for _ in 0..3 {
        http_call(&hs.authority(), "svc", &env).unwrap();
    }
    assert_eq!(render_count() - r0, 6, "http renders once per direction");

    // Framed TCP: same budget over one persistent connection.
    let ts = FramedServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
    let tc = FramedClient::connect(&ts.authority()).unwrap();
    tc.call(&env).unwrap(); // warm
    let r0 = render_count();
    for _ in 0..3 {
        tc.call(&env).unwrap();
    }
    assert_eq!(
        render_count() - r0,
        6,
        "soap.tcp renders once per direction"
    );

    // One-way over framed TCP: the client frames once; the server
    // replies with an empty frame and renders nothing.
    let r0 = render_count();
    tc.send_oneway(&env).unwrap();
    assert_eq!(render_count() - r0, 1, "one-way renders only the request");
}
