//! The sharded notification fabric under contention: subscription
//! lifecycle ops racing concurrent publishes, lease-expiry eviction
//! from the index, and the queued delivery path isolating a slow
//! consumer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wsrf_grid::notification::{broker, NotificationListener, NotificationMessage, TopicExpression};
use wsrf_grid::prelude::*;
use wsrf_grid::wsrf::store::MemoryStore;

const BROKER_ADDR: &str = "inproc://hub/Broker";

struct Fabric {
    net: Arc<InProcNetwork>,
    clock: Clock,
    broker_epr: EndpointReference,
    store: Arc<MemoryStore>,
    registry: Arc<MetricsRegistry>,
}

fn fabric(clock: Clock) -> Fabric {
    let registry = MetricsRegistry::enabled();
    let net = InProcNetwork::with_metrics(clock.clone(), NetConfig::default(), &registry);
    let store = Arc::new(MemoryStore::new());
    let b = broker::notification_broker(
        "Broker",
        BROKER_ADDR,
        store.clone(),
        clock.clone(),
        net.clone(),
    );
    b.register(&net);
    let broker_epr = b.core().service_epr();
    Fabric {
        net,
        clock,
        broker_epr,
        store,
        registry,
    }
}

fn evt(topic: &str) -> NotificationMessage {
    NotificationMessage::new(topic, Element::local("Evt"))
}

fn destroy(net: &InProcNetwork, sub: &EndpointReference) {
    let mut env = Envelope::new(Element::new(
        "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceLifetime-1.2-draft-01.xsd",
        "Destroy",
    ));
    wsrf_grid::soap::MessageInfo::request(
        sub.clone(),
        wsrf_grid::wsrf::porttypes::wsrl_action("Destroy"),
    )
    .apply(&mut env);
    let resp = net.call(&sub.address, env).unwrap();
    assert!(!resp.is_fault(), "Destroy must ack cleanly");
}

/// Subscriptions destroyed while publisher threads hammer the broker:
/// no panic, no delivery after `Destroy` acknowledges, and the index
/// agrees with the (empty) store afterwards.
#[test]
fn destroy_racing_concurrent_publish() {
    let f = fabric(Clock::manual());
    let stop = Arc::new(AtomicBool::new(false));
    let publishers: Vec<_> = (0..4)
        .map(|p| {
            let net = f.net.clone();
            let epr = f.broker_epr.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    broker::publish(&net, &epr, &evt(&format!("churn/p{p}/{}", n % 7))).unwrap();
                    n += 1;
                }
            })
        })
        .collect();

    // Churn subscriptions against the publish storm.
    for round in 0..30 {
        let addr = format!("inproc://churn/l{round}");
        let l = NotificationListener::register(&f.net, &addr);
        let sub = broker::subscribe(
            &f.net,
            &f.broker_epr,
            &l.epr(),
            &TopicExpression::full("churn//"),
            None,
        )
        .unwrap();
        if round % 3 == 0 {
            broker::set_subscription_paused(&f.net, &sub, true).unwrap();
            broker::set_subscription_paused(&f.net, &sub, false).unwrap();
        }
        destroy(&f.net, &sub);
        // Inline manual-clock delivery: once Destroy acks, nothing
        // more may arrive for this listener.
        let settled = l.total();
        for _ in 0..50 {
            std::hint::spin_loop();
        }
        assert_eq!(
            l.total(),
            settled,
            "delivery after destroy ack (round {round})"
        );
        f.net.unregister(&addr);
    }
    stop.store(true, Ordering::Relaxed);
    for t in publishers {
        t.join().unwrap();
    }

    // Store and index agree: both empty.
    use wsrf_grid::wsrf::store::ResourceStore;
    assert_eq!(f.store.list("Broker").len(), 0, "store drained");
    let resp = broker::publish_counted(&f.net, &f.broker_epr, &evt("churn/p0/0")).unwrap();
    assert_eq!(
        resp.body.attr_value("delivered"),
        Some("0"),
        "index matches the empty store"
    );
    assert_eq!(
        f.registry.snapshot().gauge("broker.index.subscriptions"),
        Some(0)
    );
}

/// A lease expiring mid-storm evicts the subscription from the index
/// exactly like an explicit destroy.
#[test]
fn lease_expiry_evicts_from_index_under_load() {
    let f = fabric(Clock::manual());
    let l = NotificationListener::register(&f.net, "inproc://lease/l");
    broker::subscribe(
        &f.net,
        &f.broker_epr,
        &l.epr(),
        &TopicExpression::full("leased//"),
        Some(10.0),
    )
    .unwrap();
    broker::publish(&f.net, &f.broker_epr, &evt("leased/x")).unwrap();
    assert_eq!(l.total(), 1);
    f.clock.advance(Duration::from_secs(11));
    let resp = broker::publish_counted(&f.net, &f.broker_epr, &evt("leased/x")).unwrap();
    assert_eq!(resp.body.attr_value("delivered"), Some("0"));
    assert_eq!(l.total(), 1, "no delivery past the lease");
    use wsrf_grid::wsrf::store::ResourceStore;
    assert_eq!(f.store.list("Broker").len(), 0, "resource reaped");
    assert_eq!(
        f.registry.snapshot().gauge("broker.index.subscriptions"),
        Some(0)
    );
}

/// On a non-manual clock deliveries ride per-consumer queues drained
/// by the worker pool: a consumer sleeping in its handler delays only
/// itself, not the rest of the fan-out.
#[test]
fn slow_consumer_does_not_stall_the_fanout() {
    let f = fabric(Clock::scaled(1000.0));
    let fast = NotificationListener::register(&f.net, "inproc://fast/l");
    let slow = NotificationListener::register(&f.net, "inproc://slow/l");
    slow.on_topic(TopicExpression::full("t//"), |_| {
        std::thread::sleep(Duration::from_millis(100));
    });
    broker::subscribe(
        &f.net,
        &f.broker_epr,
        &fast.epr(),
        &TopicExpression::full("t//"),
        None,
    )
    .unwrap();
    broker::subscribe(
        &f.net,
        &f.broker_epr,
        &slow.epr(),
        &TopicExpression::full("t//"),
        None,
    )
    .unwrap();

    const N: usize = 20;
    for i in 0..N {
        broker::publish(&f.net, &f.broker_epr, &evt(&format!("t/{i}"))).unwrap();
    }
    // The slow consumer needs >= N * 100ms of wall time (per-consumer
    // FIFO, one drainer); the fast one must finish well before that.
    assert!(
        fast.wait_for(N, Duration::from_millis(1500)),
        "fast consumer stalled behind the slow one"
    );
    assert!(slow.total() < N, "slow consumer cannot have finished yet");
    assert!(
        slow.wait_for(N, Duration::from_secs(30)),
        "slow consumer must still receive everything"
    );
}

/// Pause/resume racing the publish storm never wedges and ends in a
/// deliverable state.
#[test]
fn pause_resume_racing_concurrent_publish() {
    let f = fabric(Clock::manual());
    let l = NotificationListener::register(&f.net, "inproc://pr/l");
    let sub = broker::subscribe(
        &f.net,
        &f.broker_epr,
        &l.epr(),
        &TopicExpression::full("pr//"),
        None,
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let net = f.net.clone();
        let epr = f.broker_epr.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                broker::publish(&net, &epr, &evt("pr/x")).unwrap();
            }
        })
    };
    for _ in 0..50 {
        broker::set_subscription_paused(&f.net, &sub, true).unwrap();
        broker::set_subscription_paused(&f.net, &sub, false).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    publisher.join().unwrap();

    let before = l.total();
    broker::publish(&f.net, &f.broker_epr, &evt("pr/x")).unwrap();
    assert_eq!(l.total(), before + 1, "resumed subscription still delivers");
}
