//! Distributed tracing end to end: the Figure 3 walkthrough replayed
//! with tracing enabled must leave one connected span tree behind —
//! rooted at the client's submit, covering all ten numbered steps,
//! with spans from every service in the pipeline — queryable through
//! the job set's `{UVACG}Trace` resource property and propagating over
//! a real HTTP hop.

#![allow(clippy::result_large_err)]

use std::sync::Arc;
use std::time::Duration;

use wsrf_grid::prelude::*;
use wsrf_grid::soap::{ns, MessageInfo};
use wsrf_grid::transport::http::{http_call, HttpSoapServer};
use wsrf_grid::wsrf::container::ServiceBuilder;
use wsrf_grid::wsrf::porttypes::wsrp_action;
use wsrf_grid::wsrf::{MemoryStore, PropertyDoc};
use wsrf_grid::xml::{Element as El, QName};

const STEPS: [(u32, &str); 10] = [
    (1, "submit"),
    (2, "nis_poll"),
    (3, "es_run"),
    (4, "workdir"),
    (5, "client_stage"),
    (6, "grid_stage"),
    (7, "upload_complete"),
    (8, "spawn"),
    (9, "epr_broadcast"),
    (10, "exit_broadcast"),
];

fn traced_grid() -> CampusGrid {
    CampusGrid::build(
        GridConfig::with_machines(2).with_tracing(TraceConfig::enabled()),
        Clock::manual(),
    )
}

/// Submit the walkthrough job set and run it to completion.
fn run_walkthrough(grid: &CampusGrid) -> JobSetHandle {
    let client = grid.client("scientist");
    client.put_file(
        "C:\\proj\\stage1.exe",
        JobProgram::compute(2.0)
            .reading("in1")
            .writing("out", 64)
            .to_manifest(),
    );
    client.put_file("C:\\proj\\file1", vec![7u8; 128]);
    let spec = JobSetSpec::new("traced").job(
        JobSpec::new(
            "job1",
            FileRef::parse("local://C:\\proj\\stage1.exe").unwrap(),
        )
        .input(FileRef::parse("local://C:\\proj\\file1").unwrap(), "in1")
        .output("out"),
    );
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(5));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    handle
}

fn get_property(grid: &CampusGrid, epr: &EndpointReference, name: &str) -> El {
    let mut env = Envelope::new(El::new(ns::WSRP, "GetResourceProperty").text(name));
    MessageInfo::request(epr.clone(), wsrp_action("GetResourceProperty")).apply(&mut env);
    let resp = grid.net.call(&epr.address, env).expect("call");
    assert!(!resp.is_fault(), "{:?}", resp.fault());
    resp.body
}

fn trace_id_of(grid: &CampusGrid, handle: &JobSetHandle) -> u64 {
    let hex = get_property(grid, &handle.jobset, "TraceId").text_content();
    u64::from_str_radix(&hex, 16).expect("TraceId RP is hex")
}

#[test]
fn figure3_submission_yields_one_connected_ten_step_span_tree() {
    let grid = traced_grid();
    let handle = run_walkthrough(&grid);

    let id = trace_id_of(&grid, &handle);
    let snap = grid.metrics.tracer().trace(id);
    assert!(!snap.is_empty());

    // Exactly one root: the client-side submit span.
    let roots = snap.roots();
    assert_eq!(roots.len(), 1, "tree:\n{}", snap.render_tree());
    assert_eq!(&*roots[0].name, "client.submit");
    assert_eq!(&*roots[0].service, "Client");

    // Connected causality: every non-root span's parent is in the tree
    // and no child starts before its parent in virtual time.
    for s in &snap.spans {
        assert_eq!(s.trace_id, id);
        assert!(s.virt_start_ns <= s.virt_end_ns, "{} ends early", s.name);
        if s.parent_id != 0 {
            let parent = snap
                .spans
                .iter()
                .find(|p| p.span_id == s.parent_id)
                .unwrap_or_else(|| panic!("span {} has a dangling parent", s.name));
            assert!(
                s.virt_start_ns >= parent.virt_start_ns,
                "{} starts before its parent {}",
                s.name,
                parent.name
            );
        }
    }

    // All ten Figure 3 steps, monotone in virtual time, parented under
    // the Scheduler's SubmitJobSet dispatch span.
    let submit_dispatch = snap
        .find("dispatch.SubmitJobSet")
        .expect("scheduler dispatch span");
    let mut last = 0u64;
    for (step, name) in STEPS {
        let span = snap
            .find(&format!("step.{step:02}_{name}"))
            .unwrap_or_else(|| panic!("missing step {step} ({name}):\n{}", snap.render_tree()));
        assert_eq!(span.parent_id, submit_dispatch.span_id, "step {step}");
        assert_eq!(&*span.service, "Scheduler");
        assert!(span.virt_start_ns >= last, "step {step} goes backwards");
        last = span.virt_start_ns;
    }

    // Every service in the pipeline contributed spans, on both sides of
    // the transport hops.
    for service in [
        "Client",
        "Scheduler",
        "Execution",
        "FileSystem",
        "Broker",
        "inproc",
    ] {
        assert!(
            snap.spans.iter().any(|s| &*s.service == service),
            "no {service} span:\n{}",
            snap.render_tree()
        );
    }
}

#[test]
fn trace_rp_is_queryable_like_any_resource_property() {
    let grid = traced_grid();
    let handle = run_walkthrough(&grid);
    let id = trace_id_of(&grid, &handle);

    // GetResourceProperty("Trace") returns the whole rendered tree as
    // a {UVACG}Trace element with one Span child per finished span.
    let body = get_property(&grid, &handle.jobset, "Trace");
    let trace_el = body.elements().next().expect("Trace element");
    assert_eq!(trace_el.name.local, "Trace");
    let spans: Vec<&El> = trace_el.elements().collect();
    assert_eq!(spans.len(), grid.metrics.tracer().trace(id).len());
    let hex = format!("{id:016x}");
    for s in &spans {
        assert_eq!(s.name.local, "Span");
        assert_eq!(s.attr_value("traceId"), Some(hex.as_str()));
    }
    for (step, name) in STEPS {
        let tag = format!("step.{step:02}_{name}");
        assert!(
            spans
                .iter()
                .any(|s| s.attr_value("name") == Some(tag.as_str())),
            "step {step} missing from Trace RP"
        );
    }
}

#[test]
fn tracing_is_off_by_default_and_leaves_no_spans() {
    let grid = CampusGrid::build(GridConfig::with_machines(2), Clock::manual());
    let client = grid.client("scientist");
    client.put_file("C:\\p.exe", JobProgram::compute(1.0).to_manifest());
    let spec = JobSetSpec::new("untraced").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(5));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    assert!(!grid.metrics.tracer().is_enabled());
    assert!(grid.metrics.tracer().snapshot().is_empty());
}

#[test]
fn trace_propagates_over_real_http_transport() {
    // A traced service behind a real localhost HTTP socket: the hop
    // opens a transport.serve span as the child of the caller's header
    // and the container dispatch nests under the hop.
    let clock = Clock::manual();
    let registry = MetricsRegistry::with_tracing(ObsConfig::enabled(), TraceConfig::enabled());
    let net = wsrf_grid::transport::InProcNetwork::with_metrics(
        clock.clone(),
        NetConfig::default(),
        &registry,
    );
    let svc = ServiceBuilder::new(
        "Counter",
        "inproc://local/Counter",
        Arc::new(MemoryStore::new()),
    )
    .operation("Bump", |ctx| {
        let doc = ctx.resource_mut()?;
        let q = QName::new(wsrf_grid::testbed::UVACG, "Count");
        let n = doc.i64(&q).unwrap_or(0) + 1;
        doc.set_i64(q, n);
        Ok(El::new(wsrf_grid::testbed::UVACG, "BumpResponse").text(n.to_string()))
    })
    .build(clock.clone(), net);
    let mut doc = PropertyDoc::new();
    doc.set_i64(QName::new(wsrf_grid::testbed::UVACG, "Count"), 0);
    let epr = svc.core().create_resource_with_key("c1", doc).unwrap();
    let server = HttpSoapServer::start_traced(svc.clone(), &registry, clock.clone()).unwrap();

    let tracer = registry.tracer().clone();
    let mut root = tracer.start_root("client.bump", "Client", &clock);
    let ctx = root.context();
    let mut env = Envelope::new(El::new(wsrf_grid::testbed::UVACG, "Bump"));
    MessageInfo::request(
        epr,
        wsrf_grid::wsrf::container::action_uri("Counter", "Bump"),
    )
    .apply(&mut env);
    TraceContext::new(ctx.trace_id, ctx.span_id, ctx.sampled).stamp(&mut env);
    let resp = http_call(&server.authority(), "Counter", &env).unwrap();
    assert!(!resp.is_fault(), "{:?}", resp.fault());
    root.annotate("transport", "http");
    root.finish();

    // The serve hop is recorded by the server thread after it writes
    // the response; give it a moment to land.
    let mut snap = tracer.trace(ctx.trace_id);
    for _ in 0..200 {
        if snap.find("transport.serve").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
        snap = tracer.trace(ctx.trace_id);
    }
    let roots = snap.roots();
    assert_eq!(roots.len(), 1, "tree:\n{}", snap.render_tree());
    let serve = snap.find("transport.serve").expect("http hop span");
    assert_eq!(&*serve.service, "http");
    assert_eq!(serve.parent_id, roots[0].span_id, "hop under client root");
    let dispatch = snap.find("dispatch.Bump").expect("dispatch span");
    assert_eq!(dispatch.parent_id, serve.span_id, "dispatch under hop");
}
