//! §5's client-durability concern, implemented and tested: "How
//! durable does that client-side information need to be (e.g., should
//! it survive client shutdown?) and how a client might possibly
//! rediscover their resources should their EPRs be lost."

use std::time::Duration;

use wsrf_grid::prelude::*;

fn submit_and_finish(grid: &CampusGrid, client: &Client, name: &str) -> JobSetHandle {
    client.put_file(
        "C:\\p.exe",
        JobProgram::compute(1.0)
            .writing("result.dat", 64)
            .to_manifest(),
    );
    let spec = JobSetSpec::new(name).job(
        JobSpec::new("worker", FileRef::parse("local://C:\\p.exe").unwrap()).output("result.dat"),
    );
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(10));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    handle
}

#[test]
fn restored_handle_recovers_outcome_and_outputs() {
    let grid = CampusGrid::build(GridConfig::with_machines(2), Clock::manual());
    let original_client = grid.client("before-crash");
    submit_and_finish(&grid, &original_client, "survivor");

    // "Client shutdown": a brand new client with empty event history.
    let new_client = grid.client("after-crash");
    let found = new_client.rediscover(Some("survivor")).unwrap();
    assert_eq!(found.len(), 1);
    let restored = &found[0];

    // No events — but the resource-backed paths all work.
    assert!(restored.events().is_empty());
    assert_eq!(restored.outcome(), None, "event-based view is empty");
    assert_eq!(
        restored.resource_outcome().unwrap(),
        Some(JobSetOutcome::Completed),
        "resource-based view is authoritative"
    );
    assert_eq!(restored.status().unwrap(), "Completed");
    // Working directory rediscovered through the JobDirectory resource
    // property, then the output fetched through the FSS.
    let out = restored.fetch_output("worker", "result.dat").unwrap();
    assert_eq!(out.len(), 64);
}

#[test]
fn rediscover_filters_by_name_and_lists_all() {
    let grid = CampusGrid::build(GridConfig::with_machines(2), Clock::manual());
    let client = grid.client("c");
    submit_and_finish(&grid, &client, "alpha");
    submit_and_finish(&grid, &client, "beta");

    let all = client.rediscover(None).unwrap();
    assert_eq!(all.len(), 2);
    let alpha = client.rediscover(Some("alpha")).unwrap();
    assert_eq!(alpha.len(), 1);
    assert!(client.rediscover(Some("nope")).unwrap().is_empty());
}

#[test]
fn restored_handle_sees_failures_with_fault_chain() {
    let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
    let client = grid.client("c");
    client.put_file(
        "C:\\bad.exe",
        JobProgram::compute(0.5).exiting(3).to_manifest(),
    );
    let spec = JobSetSpec::new("doomed").job(JobSpec::new(
        "bad",
        FileRef::parse("local://C:\\bad.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(5));
    assert!(matches!(handle.outcome(), Some(JobSetOutcome::Failed(_))));

    let restored = grid
        .client("c2")
        .rediscover(Some("doomed"))
        .unwrap()
        .remove(0);
    match restored.resource_outcome().unwrap() {
        Some(JobSetOutcome::Failed(fault)) => {
            assert_eq!(fault.error_code, "uvacg:JobSetFailed");
            assert!(fault.root_cause().description.contains("code 3"), "{fault}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn job_set_resources_can_be_lease_cleaned() {
    // Combine rediscovery with WS-ResourceLifetime: expire old job-set
    // records so the Scheduler's store doesn't grow forever.
    let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
    let client = grid.client("c");
    let handle = submit_and_finish(&grid, &client, "ephemeral");
    let proxy = wsrf_grid::wsrf::ResourceProxy::new(&grid.net, handle.jobset.clone());
    let now = grid.clock.now();
    proxy
        .set_termination_time(Some(now + Duration::from_secs(100)))
        .unwrap();
    grid.clock.advance(Duration::from_secs(101));
    assert!(client.rediscover(Some("ephemeral")).unwrap().is_empty());
}
