//! Durable WS-Resource state, end to end: property-based write-ahead
//! log replay under arbitrary tail corruption, destroy-vs-snapshot
//! interleavings, and the §5 rediscovery story across a full scheduler
//! restart over a recovered store.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use grid_node::JobProgram;
use proptest::prelude::*;
use wsrf_grid::prelude::*;
use wsrf_grid::wsrf::store::ResourceStore;
use wsrf_grid::wsrf::{MemoryStore, PropertyDoc};
use wsrf_grid::xml::QName;

const NS: &str = "urn:durability-test";

fn q(local: &str) -> QName {
    QName::new(NS, local)
}

/// A throwaway log directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "wsrf-durability-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn doc_with(val: u16) -> PropertyDoc {
    let mut doc = PropertyDoc::new();
    doc.set_text(q("V"), val.to_string());
    doc
}

/// The single shard log file a one-key workload wrote.
fn only_log_file(dir: &std::path::Path) -> PathBuf {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "log") && path.metadata().unwrap().len() > 0 {
            found.push(path);
        }
    }
    assert_eq!(found.len(), 1, "one key lives in exactly one shard");
    found.remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any op sequence, logged and then corrupted (bit-flip) or
    /// truncated at an arbitrary byte, replays to exactly the state
    /// after the longest valid frame prefix — no panic, no partial
    /// record applied, no resurrected resource.
    #[test]
    fn wal_replay_equals_longest_valid_prefix(
        ops in proptest::collection::vec((0u8..3, any::<u16>()), 1..32),
        cut in any::<u64>(),
        flip in any::<bool>(),
    ) {
        let tmp = TempDir::new("prop");
        // Every op hits one key, so the workload exercises exactly one
        // shard log and the valid prefix is computable from the
        // cumulative log size after each op.
        let mut offsets = Vec::with_capacity(ops.len());
        // The model replays what each op did: Some(v) = live with v.
        let mut model: Vec<Option<u16>> = Vec::with_capacity(ops.len());
        {
            let store =
                wsrf_grid::wsrf::DurableStore::open(&tmp.0, Arc::new(MemoryStore::new()))
                    .unwrap()
                    .snapshot_every(u64::MAX);
            let mut live: Option<u16> = None;
            for (op, val) in &ops {
                match (op, live) {
                    // Op 2 destroys when possible; everything else
                    // writes (create when dead, save when live) so the
                    // sequence is always valid against the trait.
                    (2, Some(_)) => {
                        store.destroy("svc", "job").unwrap();
                        live = None;
                    }
                    (_, Some(_)) => {
                        store.save("svc", "job", &doc_with(*val)).unwrap();
                        live = Some(*val);
                    }
                    (_, None) => {
                        store.create("svc", "job", &doc_with(*val)).unwrap();
                        live = Some(*val);
                    }
                }
                offsets.push(store.log_bytes());
                model.push(live);
            }
        }

        // Corrupt the tail at an arbitrary byte.
        let log = only_log_file(&tmp.0);
        let total = log.metadata().unwrap().len();
        let b = cut % total;
        if flip {
            let mut bytes = std::fs::read(&log).unwrap();
            bytes[b as usize] ^= 0xFF;
            std::fs::write(&log, bytes).unwrap();
        } else {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&log)
                .unwrap()
                .set_len(b)
                .unwrap();
        }

        // Frames entirely inside the first `b` bytes survive; the
        // frame containing byte `b` and everything after are lost.
        let survivors = offsets.iter().filter(|&&end| end <= b).count();
        let expected = if survivors == 0 { None } else { model[survivors - 1] };

        let store =
            wsrf_grid::wsrf::DurableStore::open(&tmp.0, Arc::new(MemoryStore::new())).unwrap();
        match expected {
            Some(v) => {
                let doc = store.load("svc", "job").expect("longest valid prefix ends live");
                prop_assert_eq!(doc.text(&q("V")), Some(v.to_string()));
            }
            None => prop_assert!(!store.exists("svc", "job"), "resurrected a dead resource"),
        }
    }
}

/// Destroy-then-crash-then-replay must not resurrect: a resource
/// destroyed after the snapshot was taken stays destroyed when the
/// snapshot and the log tail are replayed together.
#[test]
fn snapshot_log_interleaving_does_not_resurrect_destroyed_resources() {
    let tmp = TempDir::new("interleave");
    {
        let store = wsrf_grid::wsrf::DurableStore::open(&tmp.0, Arc::new(MemoryStore::new()))
            .unwrap()
            .snapshot_every(u64::MAX);
        store.create("svc", "a", &doc_with(1)).unwrap();
        store.create("svc", "b", &doc_with(2)).unwrap();
        // Snapshot compacts both creates out of the logs...
        store.snapshot_all().unwrap();
        assert_eq!(store.log_bytes(), 0);
        // ...then the log alone records the destroy and a later save.
        store.destroy("svc", "a").unwrap();
        store.save("svc", "b", &doc_with(20)).unwrap();
        // Crash: the store drops without another snapshot.
    }
    let store = wsrf_grid::wsrf::DurableStore::open(&tmp.0, Arc::new(MemoryStore::new())).unwrap();
    assert!(
        !store.exists("svc", "a"),
        "destroyed resource resurrected by snapshot replay"
    );
    let doc = store.load("svc", "b").unwrap();
    assert_eq!(doc.text(&q("V")), Some("20".into()));
}

/// The §5 rediscovery story across a real restart: run a job set to
/// completion on a grid whose scheduler state lives in a WAL-backed
/// store, tear the whole grid down, boot a fresh one over the
/// recovered store, and find the set — status, outputs' location —
/// through `FindJobSets` with nothing but a username.
#[test]
fn scheduler_restart_recovers_job_sets_from_the_wal() {
    let tmp = TempDir::new("restart");
    {
        let store = Arc::new(
            wsrf_grid::wsrf::DurableStore::open(&tmp.0, Arc::new(MemoryStore::new())).unwrap(),
        );
        let grid = CampusGrid::build(
            GridConfig::with_machines(2).with_scheduler_store(store as Arc<dyn ResourceStore>),
            Clock::manual(),
        );
        let client = grid.client("c1");
        client.put_file(
            "C:\\prog.exe",
            JobProgram::compute(1.0)
                .writing("out.dat", 48)
                .to_manifest(),
        );
        let spec = JobSetSpec::new("durable-set").job(
            JobSpec::new("job1", FileRef::parse("local://C:\\prog.exe").unwrap()).output("out.dat"),
        );
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        grid.clock.advance(Duration::from_secs(10));
        assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
        // Whole grid dropped here — the only survivor is the WAL dir.
    }

    let store2 = Arc::new(
        wsrf_grid::wsrf::DurableStore::open(&tmp.0, Arc::new(MemoryStore::new())).unwrap(),
    );
    let grid2 = CampusGrid::build(
        GridConfig::with_machines(2).with_scheduler_store(store2 as Arc<dyn ResourceStore>),
        Clock::manual(),
    );
    let client2 = grid2.client("c2");
    let found = client2.rediscover(Some("durable-set")).unwrap();
    assert_eq!(found.len(), 1, "completed set survives the restart");
    assert_eq!(found[0].status().unwrap(), "Completed");

    // The restarted container must not re-mint the recovered set's
    // key: a fresh submission gets a fresh resource.
    let client3 = grid2.client("c3");
    client3.put_file("C:\\p.exe", JobProgram::compute(0.5).to_manifest());
    let spec2 = JobSetSpec::new("post-restart").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));
    let handle2 = client3.submit(&spec2, "griduser", "gridpass").unwrap();
    grid2.clock.advance(Duration::from_secs(10));
    assert_eq!(handle2.outcome(), Some(JobSetOutcome::Completed));
    assert_eq!(client2.rediscover(None).unwrap().len(), 2);
}

/// Failover with a WAL-backed scheduler store: the promoted standby
/// shares the durable store, so its own record keeping lands in the
/// same log the crashed primary wrote.
#[test]
fn failover_over_a_durable_store_completes_and_persists() {
    let tmp = TempDir::new("failover");
    let store = Arc::new(
        wsrf_grid::wsrf::DurableStore::open(&tmp.0, Arc::new(MemoryStore::new())).unwrap(),
    );
    let grid = CampusGrid::build(
        GridConfig::with_machines(2)
            .with_scheduler_store(store as Arc<dyn ResourceStore>)
            .with_replication(),
        Clock::manual(),
    );
    let standby = grid.spawn_standby(None);
    let client = grid.client("c");
    client.put_file("C:\\p.exe", JobProgram::compute(1.0).to_manifest());
    let spec = JobSetSpec::new("durable-failover").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\p.exe").unwrap(),
    ));

    let primary = grid.scheduler.clone();
    let net = grid.net.clone();
    grid.scheduler.set_step_hook(move |step, _| {
        if step == 3 {
            primary.crash(&net);
        }
    });
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    grid.clock.advance(Duration::from_secs(1));
    assert!(grid.scheduler.crashed());

    let promoted = standby.promote(wsrf_grid::testbed::grid::SCHEDULER_ADDRESS);
    grid.clock.advance(Duration::from_secs(20));
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    drop(promoted);
    drop(grid);

    // The durable store replays to the terminal state.
    let recovered =
        wsrf_grid::wsrf::DurableStore::open(&tmp.0, Arc::new(MemoryStore::new())).unwrap();
    let keys = recovered.list("Scheduler");
    let set_key = keys
        .iter()
        .find(|k| k.as_str() != "feedback")
        .expect("job set resource recovered");
    let doc = recovered.load("Scheduler", set_key).unwrap();
    assert_eq!(
        doc.text(&QName::new(wsrf_grid::testbed::UVACG, "Status")),
        Some("Completed".into())
    );
}
