//! Campus-scale stress: larger grids and job sets than any single test
//! above, checking completeness, conservation and bounded makespans.

use std::time::Duration;

use wsrf_grid::prelude::*;

fn drive(grid: &CampusGrid, handle: &JobSetHandle, budget: u64) {
    let mut elapsed = 0;
    while handle.outcome().is_none() {
        assert!(elapsed < budget, "budget exceeded");
        grid.clock.advance(Duration::from_secs(5));
        elapsed += 5;
    }
}

#[test]
fn forty_jobs_on_eight_machines() {
    let grid = CampusGrid::build(GridConfig::with_machines(8), Clock::manual());
    let client = grid.client("c");
    client.put_file(
        "C:\\p.exe",
        JobProgram::compute(10.0)
            .writing("o.dat", 2048)
            .to_manifest(),
    );
    let mut spec = JobSetSpec::new("forty");
    for i in 0..40 {
        spec = spec.job(
            JobSpec::new(
                format!("job{i:02}"),
                FileRef::parse("local://C:\\p.exe").unwrap(),
            )
            .output("o.dat"),
        );
    }
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    drive(&grid, &handle, 3000);
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));

    // Conservation: 40 exits, 40 dirs, 40 starts, 1 completed.
    let topics: Vec<String> = handle
        .events()
        .iter()
        .map(|m| m.topic.to_string())
        .collect();
    assert_eq!(topics.iter().filter(|t| t.ends_with("/exit")).count(), 40);
    assert_eq!(topics.iter().filter(|t| t.ends_with("/dir")).count(), 40);
    assert_eq!(
        topics.iter().filter(|t| t.ends_with("/started")).count(),
        40
    );
    assert_eq!(
        topics.iter().filter(|t| t.ends_with("/completed")).count(),
        1
    );

    // All machines idle afterwards; every output retrievable.
    assert!(grid.machines.iter().all(|m| m.utilization() == 0.0));
    assert_eq!(handle.fetch_output("job39", "o.dat").unwrap().len(), 2048);

    // Makespan sanity: 40 × 10 cpu-s over ~14 GHz-equivalents of
    // capacity can't beat the work bound, and must not exceed the
    // serial bound on the slowest machine.
    let makespan = grid.clock.now().as_secs_f64();
    assert!(makespan >= 10.0, "work bound: {makespan}");
    assert!(makespan <= 400.0, "parallelism bound: {makespan}");
}

#[test]
fn ten_deep_chain_with_growing_files() {
    let grid = CampusGrid::build(GridConfig::with_machines(4), Clock::manual());
    let client = grid.client("c");
    let mut spec = JobSetSpec::new("deep");
    for i in 0..10 {
        let size = 1000 * (i as u64 + 1);
        let mut prog = JobProgram::compute(2.0).writing(format!("stage{i}.out"), size);
        if i > 0 {
            prog = prog.reading("in.dat");
        }
        let path = format!("C:\\s{i}.exe");
        client.put_file(&path, prog.to_manifest());
        let mut job = JobSpec::new(
            format!("s{i}"),
            FileRef::parse(&format!("local://{path}")).unwrap(),
        )
        .output(format!("stage{i}.out"));
        if i > 0 {
            job = job.input(
                FileRef::parse(&format!("s{}://stage{}.out", i - 1, i - 1)).unwrap(),
                "in.dat",
            );
        }
        spec = spec.job(job);
    }
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    drive(&grid, &handle, 600);
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    for i in 0..10 {
        assert_eq!(
            handle
                .fetch_output(&format!("s{i}"), &format!("stage{i}.out"))
                .unwrap()
                .len() as u64,
            1000 * (i as u64 + 1)
        );
    }
}

#[test]
fn twenty_job_sets_interleaved() {
    let grid = CampusGrid::build(GridConfig::with_machines(6), Clock::manual());
    let clients: Vec<Client> = (0..5).map(|i| grid.client(&format!("c{i}"))).collect();
    let mut handles = Vec::new();
    for (ci, client) in clients.iter().enumerate() {
        client.put_file("C:\\p.exe", JobProgram::compute(3.0).to_manifest());
        for s in 0..4 {
            let spec = JobSetSpec::new(format!("c{ci}s{s}"))
                .job(JobSpec::new(
                    "a",
                    FileRef::parse("local://C:\\p.exe").unwrap(),
                ))
                .job(JobSpec::new(
                    "b",
                    FileRef::parse("local://C:\\p.exe").unwrap(),
                ));
            handles.push(client.submit(&spec, "griduser", "gridpass").unwrap());
        }
    }
    assert_eq!(handles.len(), 20);
    let mut elapsed = 0;
    while handles.iter().any(|h| h.outcome().is_none()) {
        assert!(elapsed < 1000, "budget exceeded");
        grid.clock.advance(Duration::from_secs(5));
        elapsed += 5;
    }
    for h in &handles {
        assert_eq!(h.outcome(), Some(JobSetOutcome::Completed), "{}", h.topic);
    }
    // Topics are all distinct.
    let mut topics: Vec<&str> = handles.iter().map(|h| h.topic.as_str()).collect();
    topics.sort();
    topics.dedup();
    assert_eq!(topics.len(), 20);
}

#[test]
fn zero_cpu_jobs_complete_without_state_clobbering() {
    // A zero-work program exits *inside* the UploadComplete handler
    // (spawn -> immediate completion callback). The ES must not
    // overwrite the Exited status with Running afterwards.
    let grid = CampusGrid::build(GridConfig::with_machines(2), Clock::manual());
    let client = grid.client("c");
    client.put_file(
        "C:\\instant.exe",
        JobProgram::compute(0.0).writing("o", 8).to_manifest(),
    );
    let mut spec = JobSetSpec::new("instant");
    for i in 0..5 {
        let mut job = JobSpec::new(
            format!("j{i}"),
            FileRef::parse("local://C:\\instant.exe").unwrap(),
        )
        .output("o");
        if i > 0 {
            job = job.input(FileRef::parse(&format!("j{}://o", i - 1)).unwrap(), "prev");
        }
        spec = spec.job(job);
    }
    // The whole chain completes synchronously inside submit().
    let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
    assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    for i in 0..5 {
        assert_eq!(handle.poll_job_status(&format!("j{i}")).unwrap(), "Exited");
    }
}
