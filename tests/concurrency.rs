//! Concurrency regressions for the dispatch pipeline: per-resource
//! leases (no lost updates), read/write op classification (reads never
//! save), and destroy-vs-dispatch interleavings.

use std::sync::Arc;

use wsrf_grid::prelude::*;
use wsrf_grid::soap::{ns, MessageInfo};
use wsrf_grid::wsrf::container::{action_uri, Service, ServiceBuilder};
use wsrf_grid::wsrf::porttypes::{wsrl_action, wsrp_action};
use wsrf_grid::wsrf::properties::PropertyDoc;
use wsrf_grid::wsrf::store::MemoryStore;
use wsrf_grid::xml::QName;

fn q(local: &str) -> QName {
    QName::new(ns::UVACG, local)
}

fn call(svc: &Arc<Service>, to: EndpointReference, action: &str, body: Element) -> Envelope {
    let mut env = Envelope::new(body);
    MessageInfo::request(to, action).apply(&mut env);
    svc.dispatch(env)
}

/// A counter service whose `Bump` op widens the load→save race window
/// with a yield, so the lost-update race is near-certain without
/// leases and must still be impossible with them.
fn counter_service(
    leases: bool,
    metrics: Option<Arc<MetricsRegistry>>,
) -> (Arc<Service>, EndpointReference) {
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    let mut b = ServiceBuilder::new("Ctr", "inproc://m/Ctr", Arc::new(MemoryStore::new()))
        .operation("Bump", |ctx| {
            let doc = ctx.resource_mut()?;
            let n = doc.i64(&q("Hits")).unwrap_or(0);
            std::thread::yield_now();
            doc.set_i64(q("Hits"), n + 1);
            Ok(Element::new(ns::UVACG, "BumpResponse").text((n + 1).to_string()))
        })
        .operation("DestroyAndMutate", |ctx| {
            let key = ctx.key()?.to_string();
            ctx.core.destroy_resource(&key)?;
            // Mutations after self-destruction must not resurrect the
            // row through the save stage.
            ctx.resource_mut()?.set_i64(q("Hits"), 9999);
            Ok(Element::new(ns::UVACG, "Gone"))
        });
    if !leases {
        b = b.without_leases();
    }
    if let Some(reg) = metrics {
        b = b.with_metrics(reg);
    }
    let svc = b.build(clock, net);
    let mut doc = PropertyDoc::new();
    doc.set_i64(q("Hits"), 0);
    let epr = svc.core().create_resource_with_key("c1", doc).unwrap();
    (svc, epr)
}

fn hammer(svc: &Arc<Service>, epr: &EndpointReference, threads: usize, rounds: usize) -> i64 {
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..rounds {
                    let resp = call(
                        svc,
                        epr.clone(),
                        &action_uri("Ctr", "Bump"),
                        Element::new(ns::UVACG, "Bump"),
                    );
                    assert!(!resp.is_fault(), "{:?}", resp.fault());
                }
            });
        }
    });
    svc.core()
        .store
        .load("Ctr", "c1")
        .unwrap()
        .i64(&q("Hits"))
        .unwrap()
}

#[test]
fn concurrent_increments_are_never_lost_with_leases() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 250;
    let (svc, epr) = counter_service(true, None);
    assert_eq!(
        hammer(&svc, &epr, THREADS, ROUNDS),
        (THREADS * ROUNDS) as i64,
        "every increment must land exactly once"
    );
}

#[test]
fn increments_are_lost_without_leases() {
    // The inverse regression: the bare WSRF.NET-style pipeline loses
    // updates under write contention. A lossless round is technically
    // possible, so try a few; in practice the first round loses many.
    for _ in 0..5 {
        let (svc, epr) = counter_service(false, None);
        let total = hammer(&svc, &epr, 8, 300);
        assert!(total <= 8 * 300);
        if total < 8 * 300 {
            return; // race demonstrated
        }
    }
    panic!("no lost update in 5 rounds; without_leases is not racing");
}

#[test]
fn concurrent_readers_share_the_lease() {
    let (svc, epr) = counter_service(true, None);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..100 {
                    let resp = call(
                        &svc,
                        epr.clone(),
                        &wsrp_action("GetResourceProperty"),
                        Element::new(ns::WSRP, "GetResourceProperty").text("Hits"),
                    );
                    assert!(!resp.is_fault());
                    assert_eq!(resp.body.text_content(), "0");
                }
            });
        }
    });
}

#[test]
fn destroy_during_write_handler_does_not_resurrect() {
    let (svc, epr) = counter_service(true, None);
    let resp = call(
        &svc,
        epr.clone(),
        &action_uri("Ctr", "DestroyAndMutate"),
        Element::new(ns::UVACG, "DestroyAndMutate"),
    );
    assert!(!resp.is_fault(), "{:?}", resp.fault());
    assert!(
        !svc.core().store.exists("Ctr", "c1"),
        "post-destroy mutation must not be saved back"
    );
    // Dispatches arriving after destruction fault cleanly.
    let resp = call(
        &svc,
        epr,
        &action_uri("Ctr", "Bump"),
        Element::new(ns::UVACG, "Bump"),
    );
    assert_eq!(
        resp.fault().unwrap().error_code(),
        Some("wsrf:NoSuchResource")
    );
}

#[test]
fn destroy_races_with_writers_cleanly() {
    // One thread destroys while others bump: every bump either lands
    // before the destroy (success) or faults NoSuchResource; nothing
    // resurrects the row, and the store ends empty.
    let (svc, epr) = counter_service(true, None);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..100 {
                    let resp = call(
                        &svc,
                        epr.clone(),
                        &action_uri("Ctr", "Bump"),
                        Element::new(ns::UVACG, "Bump"),
                    );
                    if let Some(f) = resp.fault() {
                        assert_eq!(f.error_code(), Some("wsrf:NoSuchResource"));
                    }
                }
            });
        }
        s.spawn(|| {
            std::thread::yield_now();
            let resp = call(
                &svc,
                epr.clone(),
                &wsrl_action("Destroy"),
                Element::new(ns::WSRL, "Destroy"),
            );
            assert!(!resp.is_fault(), "{:?}", resp.fault());
        });
    });
    assert!(
        !svc.core().store.exists("Ctr", "c1"),
        "a late save must not resurrect the destroyed resource"
    );
}

#[test]
fn read_ops_never_issue_store_saves() {
    let registry = MetricsRegistry::enabled();
    let (svc, epr) = counter_service(true, Some(registry.clone()));
    for _ in 0..10 {
        let resp = call(
            &svc,
            epr.clone(),
            &wsrp_action("GetResourceProperty"),
            Element::new(ns::WSRP, "GetResourceProperty").text("Hits"),
        );
        assert!(!resp.is_fault());
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("container.Ctr.store.save_bytes"),
        Some(0),
        "GetResourceProperty must not write back"
    );
    assert_eq!(snap.counter("container.Ctr.reads"), Some(10));
    assert_eq!(snap.counter("container.Ctr.writes"), Some(0));

    // A genuine write is still counted and saved.
    let resp = call(
        &svc,
        epr,
        &action_uri("Ctr", "Bump"),
        Element::new(ns::UVACG, "Bump"),
    );
    assert!(!resp.is_fault());
    let snap = registry.snapshot();
    assert_eq!(snap.counter("container.Ctr.writes"), Some(1));
    assert!(snap.counter("container.Ctr.store.save_bytes").unwrap() > 0);
}
