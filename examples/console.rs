//! A G-Monitor-style live console over the grid monitoring plane:
//! two campus grids share one virtual clock, each streams structured
//! events onto its `monitor/events` topic, and one [`MonitorService`]
//! aggregates both into per-frame [`GridCatalog`] views — job
//! throughput, queue depths, the slowest Figure 3 steps and active
//! alerts per authority.
//!
//! ```text
//! cargo run --example console
//! ```

use std::time::Duration;

use wsrf_grid::prelude::*;

fn submit_work(grid: &CampusGrid, client_id: &str, jobs: usize, secs: f64) -> Vec<JobSetHandle> {
    let client = grid.client(client_id);
    client.put_file(
        "C:\\work.exe",
        JobProgram::compute(secs)
            .writing("out.dat", 64)
            .to_manifest(),
    );
    (0..jobs)
        .map(|i| {
            let spec = JobSetSpec::new(format!("batch-{i}")).job(
                JobSpec::new("crunch", FileRef::parse("local://C:\\work.exe").unwrap())
                    .output("out.dat"),
            );
            client
                .submit(&spec, "griduser", "gridpass")
                .expect("submit")
        })
        .collect()
}

fn main() {
    // Two authorities on one clock: a healthy campus and one whose
    // client also submits a doomed job (to light up the alert column).
    let clock = Clock::manual();
    let campus_a = CampusGrid::build(GridConfig::with_machines(3), clock.clone());
    let campus_b = CampusGrid::build(GridConfig::with_machines(2), clock.clone());

    // The aggregator subscribes to each authority's monitor/events
    // topic and reads each registry directly (a remote deployment
    // would use MetricsSource::Http against /metrics.json instead).
    let monitor = MonitorService::new(clock.clone());
    monitor
        .add_authority(
            "campus-a",
            &campus_a.net,
            &campus_a.broker,
            MetricsSource::Registry(campus_a.metrics.clone()),
        )
        .expect("subscribe campus-a");
    monitor
        .add_authority(
            "campus-b",
            &campus_b.net,
            &campus_b.broker,
            MetricsSource::Registry(campus_b.metrics.clone()),
        )
        .expect("subscribe campus-b");

    // Stream events continuously: each pump flushes every virtual
    // second as the clock advances.
    campus_a.event_pump().start(&clock, Duration::from_secs(1));
    campus_b.event_pump().start(&clock, Duration::from_secs(1));

    let _a = submit_work(&campus_a, "ops-a", 4, 6.0);
    let _b = submit_work(&campus_b, "ops-b", 2, 10.0);

    // One failing job on campus-b: a dispatch fault plus a failed set.
    let breaker = campus_b.client("chaos");
    breaker.put_file(
        "C:\\bad.exe",
        JobProgram::compute(1.0).exiting(9).to_manifest(),
    );
    let bad = JobSetSpec::new("doomed").job(JobSpec::new(
        "boom",
        FileRef::parse("local://C:\\bad.exe").unwrap(),
    ));
    let _doomed = breaker
        .submit(&bad, "griduser", "gridpass")
        .expect("submit");

    // Play the run forward, rendering one console frame per step.
    for frame in 0..4 {
        clock.advance(Duration::from_secs(4));
        let catalog = monitor.poll();
        println!("frame {frame}");
        print!("{}", catalog.render());
        println!();
    }

    // The same data is queryable as WSRF resource properties on each
    // grid's monitor resource.
    let epr = campus_b.monitor_epr();
    let proxy = wsrf_grid::wsrf::ResourceProxy::new(&campus_b.net, epr);
    let doc = proxy.document().expect("monitor RP document");
    let health = doc.get_local("Health");
    println!("== campus-b {{UVACG}}Health RP ==");
    for service in health.iter().flat_map(|h| h.elements()) {
        println!(
            "  {:<12} total {:<4} burn {:<8} healthy={}",
            service.attr_value("name").unwrap_or("?"),
            service.attr_value("total").unwrap_or("0"),
            service.attr_value("burnRate").unwrap_or("0"),
            service.attr_value("healthy").unwrap_or("?"),
        );
    }
    let log = doc.get_local("EventLog");
    let events = log.iter().flat_map(|l| l.elements()).count();
    println!("== campus-b {{UVACG}}EventLog RP holds {events} events ==");
}
