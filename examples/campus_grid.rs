//! Campus-scale run: a dozen heterogeneous machines, a burst of job
//! sets from several clients, and a policy comparison — the scenario
//! the paper's UVaCG aims at ("harness the campus's Windows machines").
//!
//! ```text
//! cargo run --example campus_grid
//! ```

use std::sync::Arc;
use std::time::Duration;

use wsrf_grid::prelude::*;
use wsrf_grid::testbed::nis;

/// One client's batch: `jobs` independent tasks of `cpu` seconds.
fn submit_batch(
    grid: &CampusGrid,
    client: &Client,
    name: &str,
    jobs: usize,
    cpu: f64,
) -> JobSetHandle {
    client.put_file(
        "C:\\task.exe",
        JobProgram::compute(cpu)
            .writing("out.bin", 10_000)
            .to_manifest(),
    );
    let mut spec = JobSetSpec::new(name);
    for i in 0..jobs {
        spec = spec.job(
            JobSpec::new(
                format!("{name}-{i:02}"),
                FileRef::parse("local://C:\\task.exe").unwrap(),
            )
            .output("out.bin"),
        );
    }
    let h = client
        .submit(&spec, "griduser", "gridpass")
        .expect("submit");
    let _ = grid;
    h
}

fn run_with_policy(policy: Arc<dyn SchedulingPolicy>, label: &str) -> f64 {
    let grid = CampusGrid::build(
        GridConfig::with_machines(12)
            .with_net(NetConfig::campus())
            .with_policy(policy),
        Clock::scaled(2000.0),
    );

    let clients: Vec<Client> = (0..3).map(|i| grid.client(&format!("lab-{i}"))).collect();
    let start = grid.clock.now();
    let handles: Vec<JobSetHandle> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| submit_batch(&grid, c, &format!("batch{i}"), 8, 15.0 + 5.0 * i as f64))
        .collect();

    // Utilization snapshot mid-flight.
    std::thread::sleep(Duration::from_millis(10));
    let nodes = nis::snapshot(&grid.net, &grid.nis_address).expect("snapshot");
    let busy = nodes.iter().filter(|n| n.utilization > 0.0).count();
    println!("  [{label}] mid-run: {busy}/{} machines busy", nodes.len());

    for h in &handles {
        assert_eq!(
            h.wait(Duration::from_secs(120)),
            Some(JobSetOutcome::Completed),
            "batch {} finished",
            h.topic
        );
    }
    let makespan = (grid.clock.now() - start).as_secs_f64();
    println!("  [{label}] makespan: {makespan:.1} virtual seconds");
    makespan
}

fn main() {
    println!("24 jobs (3 clients × 8) on 12 heterogeneous machines\n");
    let mut results: Vec<(&str, f64)> = Vec::new();
    let fastest = run_with_policy(Arc::new(FastestAvailable), "fastest-available");
    results.push(("fastest-available (paper)", fastest));
    let rr = run_with_policy(Arc::new(RoundRobin::default()), "round-robin");
    results.push(("round-robin", rr));
    let random = run_with_policy(Arc::new(Random::new(7)), "random");
    results.push(("random", random));
    let least = run_with_policy(Arc::new(LeastLoaded), "least-loaded");
    results.push(("least-loaded", least));

    println!("\npolicy comparison (lower is better):");
    for (name, makespan) in &results {
        println!(
            "  {name:<28} {makespan:>8.1} s  ({:.2}x)",
            makespan / fastest
        );
    }
}
