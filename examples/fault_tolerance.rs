//! Failure-handling tour: fault chains, a mid-run machine crash with
//! the watchdog extension, and post-mortem rediscovery.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use std::time::Duration;

use wsrf_grid::prelude::*;

fn main() {
    let grid = CampusGrid::build(
        GridConfig::with_machines(3)
            .secure()
            .with_job_timeout(Duration::from_secs(300)),
        Clock::scaled(1000.0),
    );
    let client = grid.client("ops");

    // 1. A job that exits nonzero: the fault chain names the culprit.
    client.put_file(
        "C:\\flaky.exe",
        JobProgram::compute(2.0).exiting(13).to_manifest(),
    );
    let spec = JobSetSpec::new("flaky-run").job(JobSpec::new(
        "flaky",
        FileRef::parse("local://C:\\flaky.exe").unwrap(),
    ));
    let handle = client
        .submit(&spec, "griduser", "gridpass")
        .expect("submit");
    match handle.wait(Duration::from_secs(30)) {
        Some(JobSetOutcome::Failed(fault)) => {
            println!("1) nonzero exit surfaced as a WS-BaseFaults chain:");
            println!("   {fault}");
            println!("   chain depth = {}", fault.chain_len());
        }
        other => println!("unexpected: {other:?}"),
    }

    // 2. Wrong password on a secure grid: three-level chain.
    client.put_file("C:\\ok.exe", JobProgram::compute(1.0).to_manifest());
    let spec = JobSetSpec::new("bad-creds").job(JobSpec::new(
        "j",
        FileRef::parse("local://C:\\ok.exe").unwrap(),
    ));
    let handle = client.submit(&spec, "griduser", "WRONG").expect("submit");
    if let Some(JobSetOutcome::Failed(fault)) = handle.wait(Duration::from_secs(30)) {
        println!("\n2) credential rejection (scheduler <- dispatch <- ES):");
        println!("   {fault}");
    }

    // 3. Machine crash mid-run: watchdog converts silence into a fault.
    client.put_file("C:\\long.exe", JobProgram::compute(200.0).to_manifest());
    let spec = JobSetSpec::new("doomed-machine").job(JobSpec::new(
        "victim",
        FileRef::parse("local://C:\\long.exe").unwrap(),
    ));
    let handle = client
        .submit(&spec, "griduser", "gridpass")
        .expect("submit");
    assert!(handle.wait_job_started("victim", Duration::from_secs(30)));
    let machine_addr = handle.job_epr("victim").unwrap().address;
    let machine_name = machine_addr
        .trim_start_matches("inproc://")
        .split('/')
        .next()
        .unwrap()
        .to_string();
    println!("\n3) job running on {machine_name}; pulling its power cord...");
    let machine = grid.machine(&machine_name).unwrap();
    machine.crash();
    grid.net
        .unregister(&format!("inproc://{machine_name}/Execution"));
    grid.net
        .unregister(&format!("inproc://{machine_name}/FileSystem"));
    match handle.wait(Duration::from_secs(30)) {
        Some(JobSetOutcome::Failed(fault)) => {
            println!("   watchdog fired: {}", fault.root_cause());
        }
        other => println!("   unexpected: {other:?}"),
    }

    // 4. Post-mortem: a fresh client rediscovers everything.
    let auditor = grid.client("auditor");
    println!("\n4) post-mortem rediscovery from a fresh client:");
    for h in auditor.rediscover(None).expect("rediscover") {
        let status = h.status().unwrap_or_else(|e| format!("<{e}>"));
        println!("   {:<16} {status}", h.topic);
    }
}
