//! Interoperability demo: the same WSRF service served over *real*
//! localhost transports — HTTP (as IIS/ASP.NET did) and WSE-style
//! `soap.tcp` — and driven by nothing but standard port types, the way
//! a foreign WSRF stack (the paper mentions early Globus Toolkit 4
//! interop testing) would see it.
//!
//! ```text
//! cargo run --example real_wire
//! ```

use std::sync::Arc;

use wsrf_grid::prelude::*;
use wsrf_grid::soap::{ns, MessageInfo};
use wsrf_grid::transport::http::{http_call, HttpSoapServer};
use wsrf_grid::transport::tcpframe::{FramedClient, FramedServer};
use wsrf_grid::wsrf::container::ServiceBuilder;
use wsrf_grid::wsrf::porttypes::{wsrp_action, XPATH_DIALECT};
use wsrf_grid::wsrf::{MemoryStore, PropertyDoc};
use wsrf_grid::xml::{Element as El, QName};

fn main() {
    // A small "instrument" service: one resource with live readings.
    let clock = Clock::scaled(1000.0);
    let net = InProcNetwork::new(clock.clone());
    let svc = ServiceBuilder::new(
        "Telescope",
        "inproc://observatory/Telescope",
        Arc::new(MemoryStore::new()),
    )
    .computed_property(
        QName::new(wsrf_grid::testbed::UVACG, "ObservationTime"),
        |_, now| {
            vec![El::new(wsrf_grid::testbed::UVACG, "ObservationTime")
                .text(format!("{:.3}", now.as_secs_f64()))]
        },
    )
    .build(clock, net);
    let mut doc = PropertyDoc::new();
    doc.set_text(QName::new(wsrf_grid::testbed::UVACG, "Target"), "M31");
    doc.set_f64(QName::new(wsrf_grid::testbed::UVACG, "Magnitude"), 3.44);
    let epr_template = svc.core().create_resource_with_key("scope-1", doc).unwrap();

    // Serve it over both real transports simultaneously.
    let http = HttpSoapServer::start(svc.clone()).expect("bind http");
    let tcp = FramedServer::start(svc).expect("bind tcp");
    println!("Telescope service live:");
    println!("  http://{}/Telescope", http.authority());
    println!("  soap.tcp://{}/Telescope", tcp.authority());

    // A foreign client knows only WS-ResourceProperties.
    let get = |prop: &str| {
        let mut env = Envelope::new(El::new(ns::WSRP, "GetResourceProperty").text(prop));
        MessageInfo::request(epr_template.clone(), wsrp_action("GetResourceProperty"))
            .apply(&mut env);
        env
    };

    println!("\nover HTTP:");
    for prop in ["Target", "Magnitude", "ObservationTime"] {
        let resp = http_call(&http.authority(), "Telescope", &get(prop)).expect("call");
        println!("  {prop:<16} = {}", resp.body.text_content());
    }

    println!("\nover soap.tcp (one persistent connection):");
    let client = FramedClient::connect(&tcp.authority()).expect("connect");
    for prop in ["Target", "Magnitude", "ObservationTime"] {
        let resp = client.call(&get(prop)).expect("call");
        println!("  {prop:<16} = {}", resp.body.text_content());
    }

    // XPath query over the wire.
    let mut env = Envelope::new(
        El::new(ns::WSRP, "QueryResourceProperties").child(
            El::new(ns::WSRP, "QueryExpression")
                .attr("Dialect", XPATH_DIALECT)
                .text("/ResourcePropertyDocument[Target='M31']/Magnitude"),
        ),
    );
    MessageInfo::request(epr_template, wsrp_action("QueryResourceProperties")).apply(&mut env);
    let resp = client.call(&env).expect("query");
    println!(
        "\nXPath [Target='M31']/Magnitude = {}",
        resp.body.text_content()
    );

    // And self-description, the WSDL analogue.
    let mut env = Envelope::new(El::local("GetServiceDescription"));
    MessageInfo::request(
        EndpointReference::service("inproc://observatory/Telescope"),
        wsrf_grid::wsrf::wsdl::DESCRIBE_ACTION,
    )
    .apply(&mut env);
    let resp = http_call(&http.authority(), "Telescope", &env).expect("describe");
    let desc = wsrf_grid::wsrf::wsdl::ServiceDescription::from_element(&resp.body).unwrap();
    println!(
        "\nservice description: {} operations, resource key {}",
        desc.operations.len(),
        desc.key_property
    );
}
