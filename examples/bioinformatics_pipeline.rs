//! A realistic scientist workload: a four-stage sequence-analysis
//! pipeline with a diamond dependency, live progress reporting from
//! the notification stream, and a mid-run resource-property poll —
//! the interaction style §5 of the paper argues WSRF enables.
//!
//! ```text
//! cargo run --example bioinformatics_pipeline
//! ```

use std::time::Duration;

use wsrf_grid::notification::TopicExpression;
use wsrf_grid::prelude::*;

fn main() {
    let grid = CampusGrid::build(
        GridConfig::with_machines(6)
            .with_net(NetConfig::campus())
            .secure(),
        Clock::scaled(1000.0),
    );
    let client = grid.client("bio-lab");

    // Local data + tools. Sizes/costs are loosely modeled on a
    // BLAST-style workflow: filter -> two alignments -> merge.
    client.put_file("C:\\bio\\reads.fastq", vec![65u8; 2_000_000]);
    client.put_file(
        "C:\\bio\\filter.exe",
        JobProgram::compute(20.0)
            .reading("reads.fastq")
            .writing("clean.fa", 1_200_000)
            .to_manifest(),
    );
    client.put_file(
        "C:\\bio\\align.exe",
        JobProgram::compute(45.0)
            .reading("clean.fa")
            .writing("hits.sam", 300_000)
            .to_manifest(),
    );
    client.put_file(
        "C:\\bio\\merge.exe",
        JobProgram::compute(10.0)
            .reading("a.sam")
            .reading("b.sam")
            .writing("variants.vcf", 50_000)
            .to_manifest(),
    );

    let clean = FileRef::parse("filter://clean.fa").unwrap();
    let spec = JobSetSpec::new("variant-calling")
        .job(
            JobSpec::new(
                "filter",
                FileRef::parse("local://C:\\bio\\filter.exe").unwrap(),
            )
            .input(
                FileRef::parse("local://C:\\bio\\reads.fastq").unwrap(),
                "reads.fastq",
            )
            .output("clean.fa"),
        )
        .job(
            JobSpec::new(
                "align-left",
                FileRef::parse("local://C:\\bio\\align.exe").unwrap(),
            )
            .input(clean.clone(), "clean.fa")
            .output("hits.sam"),
        )
        .job(
            JobSpec::new(
                "align-right",
                FileRef::parse("local://C:\\bio\\align.exe").unwrap(),
            )
            .input(clean, "clean.fa")
            .output("hits.sam"),
        )
        .job(
            JobSpec::new(
                "merge",
                FileRef::parse("local://C:\\bio\\merge.exe").unwrap(),
            )
            .input(FileRef::parse("align-left://hits.sam").unwrap(), "a.sam")
            .input(FileRef::parse("align-right://hits.sam").unwrap(), "b.sam")
            .output("variants.vcf"),
        );

    // Live progress: print every event as the GUI tool would.
    client
        .listener()
        .on_topic(TopicExpression::full("//"), |m| {
            let topic = m.topic.to_string();
            let detail = match topic.rsplit('/').next() {
                Some("dir") => "working directory created".to_string(),
                Some("started") => "process started".to_string(),
                Some("exit") => format!(
                    "exited code={} cpu={}s",
                    m.payload.attr_value("code").unwrap_or("?"),
                    m.payload.attr_value("cpu").unwrap_or("?")
                ),
                Some("completed") => "JOB SET COMPLETE".to_string(),
                Some("failed") => format!("FAILED: {}", m.payload.text_content()),
                _ => String::new(),
            };
            println!("  ▸ {topic}: {detail}");
        });

    println!("submitting variant-calling pipeline (secure grid)...");
    let handle = client
        .submit(&spec, "griduser", "gridpass")
        .expect("submit");

    // While the pipeline runs, poll the alignment jobs' CPU time via
    // the standard GetResourceProperty port type.
    assert!(handle.wait_job_started("align-left", Duration::from_secs(60)));
    std::thread::sleep(Duration::from_millis(20)); // ~20 virtual seconds
    if let Some(status) = handle.poll_job_status("align-left") {
        println!("mid-run poll: align-left status = {status}");
    }

    let outcome = handle
        .wait(Duration::from_secs(120))
        .expect("pipeline finished");
    println!("\noutcome: {outcome:?}");

    let vcf = handle
        .fetch_output("merge", "variants.vcf")
        .expect("result");
    println!("variants.vcf: {} bytes", vcf.len());

    // Placement report.
    println!("\nplacements:");
    for job in ["filter", "align-left", "align-right", "merge"] {
        if let Some(epr) = handle.job_epr(job) {
            println!("  {job:<12} ran at {}", epr.address);
        }
    }
    let (calls, oneways, bytes, modeled) = grid.net.metrics.snapshot();
    println!(
        "\nnetwork: {calls} calls, {oneways} one-way messages, {bytes} payload bytes, {modeled:?} modeled transfer time"
    );
}
