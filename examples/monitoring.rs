//! WSRF introspection tour: everything on the grid is a WS-Resource,
//! so one generic toolset — GetResourceProperty, XPath queries,
//! lifetimes, subscriptions — inspects jobs, directories, job sets,
//! processors and even the broker's own subscriptions.
//!
//! ```text
//! cargo run --example monitoring
//! ```

use std::sync::Arc;
use std::time::Duration;

use wsrf_grid::notification::{broker, NotificationListener, TopicExpression};
use wsrf_grid::prelude::*;
use wsrf_grid::soap::{ns, MessageInfo};
use wsrf_grid::wsrf::porttypes::{wsrp_action, XPATH_DIALECT};
use wsrf_grid::wsrf::ResourceProxy;
use wsrf_grid::xml::Element as El;

fn get_property(grid: &CampusGrid, epr: &EndpointReference, name: &str) -> String {
    let mut env = Envelope::new(El::new(ns::WSRP, "GetResourceProperty").text(name));
    MessageInfo::request(epr.clone(), wsrp_action("GetResourceProperty")).apply(&mut env);
    grid.net
        .call(&epr.address, env)
        .expect("call")
        .body
        .text_content()
}

fn query(grid: &CampusGrid, epr: &EndpointReference, xpath: &str) -> String {
    let mut env = Envelope::new(
        El::new(ns::WSRP, "QueryResourceProperties").child(
            El::new(ns::WSRP, "QueryExpression")
                .attr("Dialect", XPATH_DIALECT)
                .text(xpath),
        ),
    );
    MessageInfo::request(epr.clone(), wsrp_action("QueryResourceProperties")).apply(&mut env);
    grid.net
        .call(&epr.address, env)
        .expect("call")
        .body
        .text_content()
}

fn main() {
    let grid = CampusGrid::build(
        GridConfig::with_machines(3)
            .with_policy(Arc::new(MetricsFeedback::new()))
            .with_tracing(TraceConfig::enabled()),
        Clock::scaled(1000.0),
    );
    let client = grid.client("ops");

    client.put_file(
        "C:\\p.exe",
        JobProgram::compute(30.0).writing("o", 100).to_manifest(),
    );
    let spec = JobSetSpec::new("observed")
        .job(JobSpec::new("watch-me", FileRef::parse("local://C:\\p.exe").unwrap()).output("o"));
    let handle = client
        .submit(&spec, "griduser", "gridpass")
        .expect("submit");
    assert!(handle.wait_job_started("watch-me", Duration::from_secs(30)));

    let job = handle.job_epr("watch-me").expect("job EPR");
    let dir = handle.job_dir("watch-me").expect("dir EPR");

    println!("== the job resource ==");
    println!("  Status       = {}", get_property(&grid, &job, "Status"));
    println!("  JobName      = {}", get_property(&grid, &job, "JobName"));
    println!(
        "  CpuTimeUsed  = {}",
        get_property(&grid, &job, "CpuTimeUsed")
    );
    println!(
        "  XPath [Status='Running']/JobName = {}",
        query(
            &grid,
            &job,
            "/ResourcePropertyDocument[Status='Running']/JobName"
        )
    );

    println!("\n== the directory resource ==");
    println!("  Path = {}", get_property(&grid, &dir, "Path"));

    println!("\n== the job-set resource ==");
    println!(
        "  Status = {}",
        get_property(&grid, &handle.jobset, "Status")
    );
    println!(
        "  JobStatus entries = {}",
        query(&grid, &handle.jobset, "//JobStatus")
    );

    println!("\n== a processor entry in the Node Info group ==");
    let nis = EndpointReference::service(&grid.nis_address);
    let mut env = Envelope::new(El::new(ns::WSSG, "Entries"));
    MessageInfo::request(
        nis.clone(),
        wsrf_grid::wsrf::servicegroup::group_action("NodeInfo", "Entries"),
    )
    .apply(&mut env);
    let resp = grid.net.call(&nis.address, env).unwrap();
    let entry =
        EndpointReference::from_element(resp.body.elements().next().expect("entry")).unwrap();
    for p in ["Machine", "CpuMhz", "Utilization"] {
        println!("  {p:<12} = {}", get_property(&grid, &entry, p));
    }

    println!("\n== a subscription resource at the broker ==");
    let probe = NotificationListener::register(&grid.net, "inproc://ops/probe");
    let sub = broker::subscribe(
        &grid.net,
        &grid.broker,
        &probe.epr(),
        &TopicExpression::full(&format!("{}//", handle.topic)),
        Some(10_000.0), // lease: virtual seconds
    )
    .expect("subscribe");
    println!(
        "  TopicExpression = {}",
        get_property(&grid, &sub, "TopicExpression")
    );
    println!(
        "  Paused          = {}",
        get_property(&grid, &sub, "Paused")
    );
    broker::set_subscription_paused(&grid.net, &sub, true).unwrap();
    println!(
        "  Paused (after PauseSubscription) = {}",
        get_property(&grid, &sub, "Paused")
    );

    let outcome = handle.wait(Duration::from_secs(60)).expect("finished");
    println!("\njob set outcome: {outcome:?}");
    println!("final job Status = {}", get_property(&grid, &job, "Status"));
    println!(
        "final CpuTimeUsed = {}",
        get_property(&grid, &job, "CpuTimeUsed")
    );
    println!(
        "probe heard {} events while paused (expected 0 extra)",
        probe.count()
    );

    // The scheduler's feedback loop is itself a WS-Resource: the
    // metrics-feedback policy publishes its per-machine penalty table
    // as {UVACG}MachinePenalty rows, readable with the same generic
    // WSRF tools as everything above.
    println!("\n== the scheduler's feedback table ==");
    let feedback = ResourceProxy::new(&grid.net, grid.scheduler.feedback_epr());
    println!(
        "  Policy = {}",
        feedback.get_text("Policy").expect("feedback policy")
    );
    for row in feedback
        .document()
        .expect("feedback doc")
        .get_local("MachinePenalty")
    {
        println!(
            "  {:<10} penalty {:<8} ewma {:>14} ns  observations {}",
            row.attr_value("machine").unwrap_or("?"),
            row.attr_value("penalty").unwrap_or("?"),
            row.attr_value("ewmaNs").unwrap_or("?"),
            row.attr_value("observations").unwrap_or("?"),
        );
    }

    // The grid observes itself too: every dispatch stage, transport
    // transfer, broker fan-out and scheduler step landed in the
    // deployment's metrics registry (wsrf-obs).
    println!("\n== live metrics (wsrf-obs registry) ==");
    print!("{}", grid.metrics_snapshot().render());

    // Tracing was enabled above, so the submission left a causal span
    // tree behind: the job set stores its TraceId as a resource
    // property, and the full tree is queryable as the {UVACG}Trace RP.
    println!("\n== the submission's span tree ==");
    let trace_hex = get_property(&grid, &handle.jobset, "TraceId");
    let trace_id = u64::from_str_radix(&trace_hex, 16).expect("TraceId RP");
    print!("{}", grid.metrics.tracer().trace(trace_id).render_tree());
}
