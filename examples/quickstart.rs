//! Quickstart: boot a campus grid, run one job, watch its events.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use wsrf_grid::prelude::*;

fn main() {
    // A 4-machine grid on a scaled clock: one virtual second passes
    // every real millisecond, so the whole run takes ~a second.
    let grid = CampusGrid::build(
        GridConfig::with_machines(4).with_net(NetConfig::campus()),
        Clock::scaled(1000.0),
    );
    println!("grid up: {} services deployed", grid.service_count());
    for m in &grid.machines {
        println!(
            "  {} — {} MHz × {} core(s), {} MB",
            m.spec.name, m.spec.cpu_mhz, m.spec.cores, m.spec.ram_mb
        );
    }

    // The scientist's workstation: a local "executable" (a UVaCG job
    // manifest) and an input file.
    let client = grid.client("scientist");
    client.put_file(
        "C:\\work\\analyze.exe",
        JobProgram::compute(10.0)
            .reading("samples.dat")
            .writing("report.out", 4096)
            .to_manifest(),
    );
    client.put_file("C:\\work\\samples.dat", vec![42u8; 10_000]);

    // Describe and submit the job set (the paper's URI syntax).
    let spec = JobSetSpec::new("quickstart").job(
        JobSpec::new(
            "analyze",
            FileRef::parse("local://C:\\work\\analyze.exe").unwrap(),
        )
        .input(
            FileRef::parse("local://C:\\work\\samples.dat").unwrap(),
            "samples.dat",
        )
        .output("report.out"),
    );
    let handle = client
        .submit(&spec, "griduser", "gridpass")
        .expect("submit");
    println!("\nsubmitted; notification topic = {}", handle.topic);

    // Wait for completion, then replay the event stream.
    let outcome = handle.wait(Duration::from_secs(30)).expect("finished");
    println!("outcome: {outcome:?}\n\nevent stream:");
    for ev in handle.events() {
        println!("  [{}] {}", ev.topic, ev.payload.name.local);
    }

    // Fetch the output through the working directory's EPR.
    let report = handle
        .fetch_output("analyze", "report.out")
        .expect("output");
    println!(
        "\nreport.out: {} bytes retrieved via the directory EPR",
        report.len()
    );
    println!("virtual time elapsed: {}", grid.clock.now());
}
