//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer (an
//! `Arc<[u8]>` plus a range, so `slice` is zero-copy like the real
//! crate). [`BytesMut`] is a growable buffer implementing [`BufMut`];
//! [`Buf`] is implemented for `&[u8]` which is how the framed
//! transport reads big-endian headers.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-range sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// Growable byte buffer with big-endian put helpers via [`BufMut`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

/// Read-side cursor over a byte source (big-endian getters).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(buf)
    }

    fn get_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(buf)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side sink for bytes (big-endian putters).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..).to_vec(), vec![3, 4]);
    }

    #[test]
    fn bytesmut_put_and_get_roundtrip() {
        let mut m = BytesMut::with_capacity(9);
        m.put_slice(b"WSE1");
        m.put_u8(3);
        m.put_u32(0xDEAD_BEEF);
        assert_eq!(m.len(), 9);
        assert_eq!(&m[..4], b"WSE1");
        assert_eq!(m[4], 3);
        assert_eq!((&m[5..]).get_u32(), 0xDEAD_BEEF);
    }

    #[test]
    fn buf_advances_through_slice() {
        let data = [0u8, 0, 0, 7, 42];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u32(), 7);
        assert_eq!(cur.remaining(), 1);
        assert_eq!(cur.get_u8(), 42);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn freeze_and_split() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"headerbody");
        let head = m.split_to(6);
        assert_eq!(&head[..], b"header");
        assert_eq!(m.freeze().to_vec(), b"body".to_vec());
    }
}
