//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the macro and builder surface (`criterion_group!`,
//! `criterion_main!`, groups, `bench_with_input`, throughput) but
//! replaces the statistical engine with a simple calibrated wall-clock
//! loop: warm up, pick an iteration count targeting a fixed measuring
//! window, report mean ns/iter (and MB/s when a byte throughput is
//! set). Good enough to rank order and spot large regressions; not a
//! substitute for criterion's confidence intervals.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement window per benchmark; intentionally short so the whole
/// E1–E10 suite stays fast in CI.
const TARGET_WINDOW: Duration = Duration::from_millis(60);

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), None, 10, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.throughput, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.to_string(), self.throughput, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, throughput: Option<Throughput>, _sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: time a single iteration, then scale the count to fill
    // the target window (capped to keep pathological benches bounded).
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

    bencher.iters = iters;
    f(&mut bencher);
    let per_iter_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;

    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mbps = bytes as f64 / per_iter_ns * 1e9 / (1024.0 * 1024.0);
            println!(
                "{label:<40} {per_iter_ns:>12.1} ns/iter  {mbps:>10.1} MiB/s  ({iters} iters)"
            );
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / per_iter_ns * 1e9;
            println!(
                "{label:<40} {per_iter_ns:>12.1} ns/iter  {eps:>10.0} elem/s  ({iters} iters)"
            );
        }
        None => {
            println!("{label:<40} {per_iter_ns:>12.1} ns/iter  ({iters} iters)");
        }
    }
}

/// Re-export for closures that imported it from criterion rather than
/// `std::hint` (both spellings appear in the wild).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u8, 2, 3, 4][..], |b, d| {
            b.iter(|| d.iter().map(|&x| u32::from(x)).sum::<u32>())
        });
        group.finish();
    }
}
