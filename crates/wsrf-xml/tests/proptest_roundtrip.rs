//! Property-based tests: any generated element tree must survive a
//! write → parse roundtrip unchanged, and the writer must always emit
//! well-formed XML.

use proptest::prelude::*;
use wsrf_xml::{parse, Element, Node, QName};

/// Strategy for XML name-legal identifiers.
fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.-]{0,8}"
}

/// Strategy for namespace URIs (including none).
fn ns() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        2 => Just(None),
        3 => "[a-z]{1,6}".prop_map(|s| Some(format!("urn:{}", s))),
    ]
}

/// Arbitrary text content. Excludes raw control characters (the writer
/// does not escape those and real SOAP stacks reject them).
fn text() -> impl Strategy<Value = String> {
    "[ -~]{0,20}"
}

fn qname() -> impl Strategy<Value = QName> {
    (ns(), ident()).prop_map(|(ns, local)| match ns {
        Some(u) => QName::new(u, local),
        None => QName::local(local),
    })
}

fn leaf() -> impl Strategy<Value = Element> {
    (
        qname(),
        prop::collection::vec((ident(), text()), 0..3),
        prop::option::of(text()),
    )
        .prop_map(|(name, attrs, txt)| {
            let mut e = Element::with_name(name);
            // Attribute names must be unique within an element.
            let mut seen = std::collections::HashSet::new();
            for (an, av) in attrs {
                if seen.insert(an.clone()) {
                    e.attrs.push((QName::local(an), av));
                }
            }
            if let Some(t) = txt {
                if !t.is_empty() {
                    e.push_text(t);
                }
            }
            e
        })
}

fn tree() -> impl Strategy<Value = Element> {
    leaf().prop_recursive(3, 24, 4, |inner| {
        (
            qname(),
            prop::collection::vec(inner, 0..4),
            prop::option::of(text()),
        )
            .prop_map(|(name, kids, txt)| {
                let mut e = Element::with_name(name);
                // Interleave text between children so adjacent text
                // nodes never occur (the parser merges them).
                for (i, k) in kids.into_iter().enumerate() {
                    if i == 0 {
                        if let Some(t) = &txt {
                            if !t.is_empty() {
                                e.push_text(t.clone());
                            }
                        }
                    }
                    e.push_child(k);
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_parse_roundtrip(e in tree()) {
        let xml = e.to_xml();
        let back = parse(&xml).unwrap_or_else(|err| panic!("unparseable output {xml:?}: {err}"));
        prop_assert_eq!(back, e);
    }

    #[test]
    fn document_form_also_roundtrips(e in tree()) {
        let xml = e.to_document();
        let back = parse(&xml).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn text_escaping_roundtrips(t in "[ -~]{0,40}") {
        let e = Element::local("a").text(t.clone()).attr("k", t.clone());
        let back = parse(&e.to_xml()).unwrap();
        if t.is_empty() {
            prop_assert!(back.children.is_empty());
        } else {
            prop_assert_eq!(back.text_content(), t.clone());
        }
        prop_assert_eq!(back.attr_value("k").unwrap(), t);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~<>&\"']{0,64}") {
        let _ = parse(&s); // must return Err, not panic
    }

    #[test]
    fn descendant_count_is_stable(e in tree()) {
        let n = e.descendants().count();
        let back = parse(&e.to_xml()).unwrap();
        prop_assert_eq!(back.descendants().count(), n);
    }
}

#[test]
fn unicode_text_roundtrips() {
    let e = Element::local("a")
        .text("héllo ✓ 漢字")
        .attr("k", "ünïcode");
    let back = parse(&e.to_xml()).unwrap();
    assert_eq!(back, e);
}

#[test]
fn deeply_nested_tree_roundtrips() {
    let mut e = Element::local("leaf");
    for i in 0..90 {
        e = Element::local(format!("n{}", i)).child(e);
    }
    let back = parse(&e.to_xml()).unwrap();
    assert_eq!(back.descendants().count(), 91);
}

#[test]
fn many_siblings_roundtrip() {
    let mut root = Element::new("urn:x", "root");
    for i in 0..500 {
        root.push_child(Element::new("urn:x", "item").attr("i", i.to_string()));
    }
    let back = parse(&root.to_xml()).unwrap();
    assert_eq!(back, root);
    assert_eq!(
        Node::Element(back).as_element().unwrap().element_count(),
        500
    );
}
