//! Property-based tests: any generated element tree must survive a
//! write → parse roundtrip unchanged, and the writer must always emit
//! well-formed XML.

use proptest::prelude::*;
use wsrf_xml::{parse, Element, Event, Node, PullParser, QName};

/// Strategy for XML name-legal identifiers.
fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.-]{0,8}"
}

/// Strategy for namespace URIs (including none).
fn ns() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        2 => Just(None),
        3 => "[a-z]{1,6}".prop_map(|s| Some(format!("urn:{}", s))),
    ]
}

/// Arbitrary text content. Excludes raw control characters (the writer
/// does not escape those and real SOAP stacks reject them).
fn text() -> impl Strategy<Value = String> {
    "[ -~]{0,20}"
}

fn qname() -> impl Strategy<Value = QName> {
    (ns(), ident()).prop_map(|(ns, local)| match ns {
        Some(u) => QName::new(u, local),
        None => QName::local(local),
    })
}

fn leaf() -> impl Strategy<Value = Element> {
    (
        qname(),
        prop::collection::vec((ident(), text()), 0..3),
        prop::option::of(text()),
    )
        .prop_map(|(name, attrs, txt)| {
            let mut e = Element::with_name(name);
            // Attribute names must be unique within an element.
            let mut seen = std::collections::HashSet::new();
            for (an, av) in attrs {
                if seen.insert(an.clone()) {
                    e.attrs.push((QName::local(an), av));
                }
            }
            if let Some(t) = txt {
                if !t.is_empty() {
                    e.push_text(t);
                }
            }
            e
        })
}

fn tree() -> impl Strategy<Value = Element> {
    leaf().prop_recursive(3, 24, 4, |inner| {
        (
            qname(),
            prop::collection::vec(inner, 0..4),
            prop::option::of(text()),
        )
            .prop_map(|(name, kids, txt)| {
                let mut e = Element::with_name(name);
                // Interleave text between children so adjacent text
                // nodes never occur (the parser merges them).
                for (i, k) in kids.into_iter().enumerate() {
                    if i == 0 {
                        if let Some(t) = &txt {
                            if !t.is_empty() {
                                e.push_text(t.clone());
                            }
                        }
                    }
                    e.push_child(k);
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_parse_roundtrip(e in tree()) {
        let xml = e.to_xml();
        let back = parse(&xml).unwrap_or_else(|err| panic!("unparseable output {xml:?}: {err}"));
        prop_assert_eq!(back, e);
    }

    #[test]
    fn document_form_also_roundtrips(e in tree()) {
        let xml = e.to_document();
        let back = parse(&xml).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn text_escaping_roundtrips(t in "[ -~]{0,40}") {
        let e = Element::local("a").text(t.clone()).attr("k", t.clone());
        let back = parse(&e.to_xml()).unwrap();
        if t.is_empty() {
            prop_assert!(back.children.is_empty());
        } else {
            prop_assert_eq!(back.text_content(), t.clone());
        }
        prop_assert_eq!(back.attr_value("k").unwrap(), t);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~<>&\"']{0,64}") {
        let _ = parse(&s); // must return Err, not panic
    }

    #[test]
    fn descendant_count_is_stable(e in tree()) {
        let n = e.descendants().count();
        let back = parse(&e.to_xml()).unwrap();
        prop_assert_eq!(back.descendants().count(), n);
    }
}

// ---- pull-vs-DOM equivalence -------------------------------------
//
// The DOM entry point is a thin wrapper over the pull parser, but the
// wrapper could still diverge (attribute handling, text merging, error
// propagation). These properties pin the two surfaces together: any
// document re-materialized from the raw event stream must equal the
// tree `parse` builds, and malformed inputs must fail identically.

/// Re-materialize a whole document by hand from the event stream —
/// deliberately NOT via `build_element`, so this exercises the public
/// event surface (`next_event` + `attrs`) end to end.
fn materialize_from_events(input: &str) -> Result<Element, String> {
    let mut p = PullParser::new(input);
    let mut stack: Vec<Element> = Vec::new();
    loop {
        match p.next_event().map_err(|e| e.to_string())? {
            Some(Event::Start { ns, local }) => {
                let name = match ns {
                    Some(uri) => QName {
                        ns: Some(uri),
                        local: local.to_string(),
                    },
                    None => QName::local(local),
                };
                let mut e = Element::with_name(name);
                for a in p.attrs() {
                    let qn = match &a.ns {
                        Some(uri) => QName {
                            ns: Some(uri.clone()),
                            local: a.local.to_string(),
                        },
                        None => QName::local(a.local),
                    };
                    e.attrs.push((qn, a.value.to_string()));
                }
                stack.push(e);
            }
            Some(Event::Text(t)) => {
                let top = stack.last_mut().ok_or("text outside root")?;
                // Adjacent text events (e.g. CDATA next to character
                // data) merge exactly as DOM materialization does.
                if t.is_empty() {
                    continue;
                }
                if let Some(Node::Text(prev)) = top.children.last_mut() {
                    prev.push_str(&t);
                } else {
                    top.children.push(Node::Text(t.into_owned()));
                }
            }
            Some(Event::End) => {
                let done = stack.pop().ok_or("unbalanced end event")?;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(done)),
                    None => return Ok(done),
                }
            }
            None => return Err("document has no root element".into()),
        }
    }
}

/// Drive the pull parser to completion, reporting the first error the
/// same way `parse` would (the tree is discarded).
fn drain_events(input: &str) -> Result<(), String> {
    let mut p = PullParser::new(input);
    loop {
        match p.next_event() {
            Ok(Some(_)) => {}
            Ok(None) => return Ok(()),
            Err(e) => return Err(e.to_string()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_stream_rematerializes_to_the_dom_tree(e in tree()) {
        let xml = e.to_xml();
        let dom = parse(&xml).unwrap();
        let from_events = materialize_from_events(&xml).unwrap();
        prop_assert_eq!(&from_events, &dom);
        prop_assert_eq!(from_events, e);
    }

    #[test]
    fn build_element_escape_hatch_matches_parse(e in tree()) {
        let xml = e.to_document();
        let mut p = PullParser::new(&xml);
        p.next_event().unwrap().unwrap();
        let built = p.build_element().unwrap();
        prop_assert!(p.next_event().unwrap().is_none());
        prop_assert_eq!(built, parse(&xml).unwrap());
    }

    #[test]
    fn pull_and_dom_fail_on_the_same_malformed_inputs(s in "[ -~<>&\"'/=]{0,64}") {
        // Neither surface may panic, and they must agree on Ok vs Err
        // including the error message and offset.
        let dom = parse(&s).map(|_| ()).map_err(|e| e.to_string());
        let pull = drain_events(&s);
        prop_assert_eq!(dom, pull);
    }

    #[test]
    fn truncated_documents_fail_identically(e in tree(), cut in 0usize..=100) {
        let xml = e.to_xml();
        // Truncate at an arbitrary char boundary; both surfaces must
        // agree on whether the prefix still parses and on the error.
        let mut at = xml.len() * cut / 100;
        while !xml.is_char_boundary(at) {
            at -= 1;
        }
        let prefix = &xml[..at];
        let dom = parse(prefix).map(|_| ()).map_err(|e| e.to_string());
        let pull = drain_events(prefix);
        prop_assert_eq!(dom, pull);
    }
}

#[test]
fn unicode_text_roundtrips() {
    let e = Element::local("a")
        .text("héllo ✓ 漢字")
        .attr("k", "ünïcode");
    let back = parse(&e.to_xml()).unwrap();
    assert_eq!(back, e);
}

#[test]
fn deeply_nested_tree_roundtrips() {
    let mut e = Element::local("leaf");
    for i in 0..90 {
        e = Element::local(format!("n{}", i)).child(e);
    }
    let back = parse(&e.to_xml()).unwrap();
    assert_eq!(back.descendants().count(), 91);
}

#[test]
fn many_siblings_roundtrip() {
    let mut root = Element::new("urn:x", "root");
    for i in 0..500 {
        root.push_child(Element::new("urn:x", "item").attr("i", i.to_string()));
    }
    let back = parse(&root.to_xml()).unwrap();
    assert_eq!(back, root);
    assert_eq!(
        Node::Element(back).as_element().unwrap().element_count(),
        500
    );
}
