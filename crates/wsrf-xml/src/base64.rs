//! Standard-alphabet base64, used wherever binary data rides inside an
//! XML text node (`xsd:base64Binary`): file contents in the File
//! System Service messages, key material in WS-Security headers.

/// Encode bytes with the standard alphabet and `=` padding.
pub fn encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode base64; whitespace is permitted and ignored (XML canonical
/// form allows line wrapping). Returns `None` on any malformed input.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    let mut acc: u32 = 0;
    let mut nbits = 0u32;
    let mut pad = 0usize;
    for &c in s.as_bytes() {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == b'=' {
            pad += 1;
            if pad > 2 {
                return None;
            }
            continue;
        }
        if pad > 0 {
            return None; // data after padding
        }
        acc = (acc << 6) | val(c)?;
        nbits += 6;
        if nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    // Leftover bits must be zero padding-compatible.
    if nbits >= 6 || (acc & ((1 << nbits) - 1)) != 0 {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), *enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn whitespace_is_ignored_on_decode() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decode("Zm9v!").is_none());
        assert!(decode("Zg=").is_some(), "single pad with complete byte ok");
        assert!(decode("Z===").is_none());
        assert!(decode("Zg==Zg==").is_none(), "data after padding");
    }

    #[test]
    fn binary_roundtrip() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
