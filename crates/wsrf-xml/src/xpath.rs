//! XPath-lite: the query language behind `QueryResourceProperties`.
//!
//! WSRF's `QueryResourceProperties` operation takes a query expression
//! in a dialect (the spec mandates XPath 1.0 as the baseline dialect).
//! This module implements the subset of XPath that grid clients
//! actually use against resource-property documents:
//!
//! * absolute (`/a/b`) and relative (`a/b`) location paths,
//! * the child (`/`) and descendant-or-self (`//`) axes,
//! * name tests by local name (`Status`), by qualified name in Clark
//!   notation (`{urn:es}Status`) and the wildcard `*`,
//! * predicates: position (`[2]`), attribute equality
//!   (`[@name='cpu0']`) and child-text equality (`[State='Running']`).
//!
//! Selection returns element references; [`Path::select_text`] is a
//! convenience for the common "read one value" pattern.

use crate::error::XmlError;
use crate::name::QName;
use crate::node::Element;
use crate::Result;

/// A parsed XPath-lite expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// True when the expression began with `/` (or `//`).
    pub absolute: bool,
    /// The location steps in order.
    pub steps: Vec<Step>,
}

/// One location step of a [`Path`].
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis connecting this step to the previous one.
    pub axis: Axis,
    /// The node (name) test.
    pub test: NameTest,
    /// Predicates applied in order.
    pub preds: Vec<Pred>,
}

/// Supported axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/` — direct children.
    Child,
    /// `//` — any descendant (descendant-or-self then child).
    DescendantOrSelf,
}

/// Supported name tests.
#[derive(Debug, Clone, PartialEq)]
pub enum NameTest {
    /// `*` — any element.
    Any,
    /// Match by local name, ignoring namespace.
    Local(String),
    /// Match by full qualified name (written in Clark notation).
    Qualified(QName),
}

impl NameTest {
    fn matches(&self, e: &Element) -> bool {
        match self {
            NameTest::Any => true,
            NameTest::Local(l) => e.name.local == *l,
            NameTest::Qualified(q) => e.name == *q,
        }
    }
}

/// Supported predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `[3]` — 1-based position among the step's matches for one
    /// context node.
    Position(usize),
    /// `[@attr='v']` — attribute equality (attribute name matched by
    /// local name).
    AttrEq(String, String),
    /// `[child='v']` — text content of a child element equals a value.
    ChildTextEq(String, String),
}

impl Path {
    /// Parse an expression. Errors carry the offending offset.
    pub fn parse(expr: &str) -> Result<Path> {
        PathParser {
            bytes: expr.as_bytes(),
            pos: 0,
        }
        .parse()
    }

    /// Evaluate against `root`, returning matching elements in document
    /// order (duplicates removed).
    ///
    /// For absolute paths the first step is tested against the document
    /// element itself (i.e. `/Doc/Child` selects children of a root
    /// named `Doc`). Relative paths start at the children of `root`.
    pub fn select<'a>(&self, root: &'a Element) -> Vec<&'a Element> {
        // The virtual document node is represented by `None`.
        let mut ctx: Vec<Option<&'a Element>> = vec![None];
        if !self.absolute {
            ctx = vec![Some(root)];
        }
        let mut result: Vec<&'a Element> = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            let mut next: Vec<&'a Element> = Vec::new();
            for c in &ctx {
                let candidates: Vec<&'a Element> = match (step.axis, c) {
                    (Axis::Child, None) => vec![root],
                    (Axis::Child, Some(e)) => e.elements().collect(),
                    (Axis::DescendantOrSelf, None) => root.descendants().collect(),
                    (Axis::DescendantOrSelf, Some(e)) => {
                        e.elements().flat_map(|k| k.descendants()).collect()
                    }
                };
                let mut matched: Vec<&'a Element> = candidates
                    .into_iter()
                    .filter(|e| step.test.matches(e))
                    .collect();
                for p in &step.preds {
                    matched = apply_pred(matched, p);
                }
                next.extend(matched);
            }
            dedup_by_ptr(&mut next);
            if i + 1 == self.steps.len() {
                result = next;
                break;
            }
            ctx = next.into_iter().map(Some).collect();
        }
        result
    }

    /// Text content of the first match, if any.
    pub fn select_text(&self, root: &Element) -> Option<String> {
        self.select(root).first().map(|e| e.text_content())
    }
}

fn apply_pred<'a>(matched: Vec<&'a Element>, p: &Pred) -> Vec<&'a Element> {
    match p {
        Pred::Position(n) => {
            if *n >= 1 && *n <= matched.len() {
                vec![matched[*n - 1]]
            } else {
                Vec::new()
            }
        }
        Pred::AttrEq(name, value) => matched
            .into_iter()
            .filter(|e| e.attrs.iter().any(|(q, v)| q.local == *name && v == value))
            .collect(),
        Pred::ChildTextEq(name, value) => matched
            .into_iter()
            .filter(|e| {
                e.elements()
                    .any(|k| k.name.local == *name && k.text_content() == *value)
            })
            .collect(),
    }
}

fn dedup_by_ptr(v: &mut Vec<&Element>) {
    let mut seen: Vec<*const Element> = Vec::with_capacity(v.len());
    v.retain(|e| {
        let p = *e as *const Element;
        if seen.contains(&p) {
            false
        } else {
            seen.push(p);
            true
        }
    });
}

struct PathParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PathParser<'a> {
    fn parse(mut self) -> Result<Path> {
        if self.bytes.is_empty() {
            return Err(XmlError::new("empty xpath expression"));
        }
        let mut absolute = false;
        let mut axis = Axis::Child;
        if self.eat("//") {
            absolute = true;
            axis = Axis::DescendantOrSelf;
        } else if self.eat("/") {
            absolute = true;
        }
        let mut steps = Vec::new();
        loop {
            let step = self.parse_step(axis)?;
            steps.push(step);
            if self.pos == self.bytes.len() {
                break;
            }
            if self.eat("//") {
                axis = Axis::DescendantOrSelf;
            } else if self.eat("/") {
                axis = Axis::Child;
            } else {
                return Err(XmlError::at("expected '/' between steps", self.pos));
            }
        }
        Ok(Path { absolute, steps })
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_step(&mut self, axis: Axis) -> Result<Step> {
        let test = if self.eat("*") {
            NameTest::Any
        } else if self.bytes.get(self.pos) == Some(&b'{') {
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| *b != b'}') {
                self.pos += 1;
            }
            if self.bytes.get(self.pos) != Some(&b'}') {
                return Err(XmlError::at("unterminated '{uri}' in name test", start));
            }
            self.pos += 1;
            let local = self.parse_ident()?;
            let uri = std::str::from_utf8(&self.bytes[start + 1..self.pos - local.len() - 1])
                .map_err(|_| XmlError::at("invalid utf-8", start))?;
            NameTest::Qualified(QName::new(uri, local))
        } else {
            NameTest::Local(self.parse_ident()?)
        };
        let mut preds = Vec::new();
        while self.eat("[") {
            preds.push(self.parse_pred()?);
            if !self.eat("]") {
                return Err(XmlError::at("expected ']'", self.pos));
            }
        }
        Ok(Step { axis, test, preds })
    }

    fn parse_ident(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::at("expected a name", self.pos));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .to_string())
    }

    fn parse_pred(&mut self) -> Result<Pred> {
        if self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            let n: usize = std::str::from_utf8(&self.bytes[start..self.pos])
                .unwrap()
                .parse()
                .map_err(|_| XmlError::at("bad position predicate", start))?;
            return Ok(Pred::Position(n));
        }
        let is_attr = self.eat("@");
        let name = self.parse_ident()?;
        if !self.eat("=") {
            return Err(XmlError::at("expected '=' in predicate", self.pos));
        }
        let quote = match self.bytes.get(self.pos) {
            Some(&q @ (b'\'' | b'"')) => q,
            _ => return Err(XmlError::at("expected quoted value in predicate", self.pos)),
        };
        self.pos += 1;
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| *b != quote) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) != Some(&quote) {
            return Err(XmlError::at("unterminated predicate value", start));
        }
        let value = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| XmlError::at("invalid utf-8", start))?
            .to_string();
        self.pos += 1;
        Ok(if is_attr {
            Pred::AttrEq(name, value)
        } else {
            Pred::ChildTextEq(name, value)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn doc() -> Element {
        parse(
            r#"<Props xmlns="urn:es">
                 <Job id="1"><Status>Running</Status><Cpu>1.5</Cpu></Job>
                 <Job id="2"><Status>Exited</Status><Cpu>9.0</Cpu></Job>
                 <Nested><Job id="3"><Status>Running</Status></Job></Nested>
               </Props>"#,
        )
        .unwrap()
    }

    #[test]
    fn absolute_child_path() {
        let p = Path::parse("/Props/Job").unwrap();
        assert_eq!(p.select(&doc()).len(), 2);
    }

    #[test]
    fn relative_path_starts_at_children() {
        let p = Path::parse("Job/Status").unwrap();
        let d = doc();
        let sel = p.select(&d);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].text_content(), "Running");
    }

    #[test]
    fn descendant_axis_finds_nested() {
        let p = Path::parse("//Job").unwrap();
        assert_eq!(p.select(&doc()).len(), 3);
    }

    #[test]
    fn descendant_axis_includes_root_match() {
        let p = Path::parse("//Props").unwrap();
        assert_eq!(p.select(&doc()).len(), 1);
    }

    #[test]
    fn attribute_predicate() {
        let p = Path::parse("/Props/Job[@id='2']/Status").unwrap();
        assert_eq!(p.select_text(&doc()).unwrap(), "Exited");
    }

    #[test]
    fn child_text_predicate() {
        let p = Path::parse("//Job[Status='Running']").unwrap();
        assert_eq!(p.select(&doc()).len(), 2);
    }

    #[test]
    fn position_predicate() {
        let p = Path::parse("/Props/Job[2]/Cpu").unwrap();
        assert_eq!(p.select_text(&doc()).unwrap(), "9.0");
        let p = Path::parse("/Props/Job[9]").unwrap();
        assert!(p.select(&doc()).is_empty());
    }

    #[test]
    fn wildcard_and_qualified_tests() {
        let p = Path::parse("/Props/*").unwrap();
        assert_eq!(p.select(&doc()).len(), 3);
        let p = Path::parse("/{urn:es}Props/{urn:es}Job").unwrap();
        assert_eq!(p.select(&doc()).len(), 2);
        let p = Path::parse("/{urn:other}Props").unwrap();
        assert!(p.select(&doc()).is_empty());
    }

    #[test]
    fn chained_predicates() {
        let p = Path::parse("//Job[Status='Running'][2]").unwrap();
        let d = doc();
        let sel = p.select(&d);
        // Second running job *within one context*: the descendant axis
        // from the document node yields all three jobs in one context
        // set, so [2] picks job id=3.
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].attr_value("id"), Some("3"));
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse("").is_err());
        assert!(Path::parse("/a[").is_err());
        assert!(Path::parse("/a[@x=]").is_err());
        assert!(Path::parse("/a//").is_err());
        assert!(Path::parse("/a[@x='v'").is_err());
    }

    #[test]
    fn no_duplicates_from_overlapping_contexts() {
        let p = Path::parse("//Status").unwrap();
        let d = doc();
        assert_eq!(p.select(&d).len(), 3);
    }
}
