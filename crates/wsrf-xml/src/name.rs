//! Namespace-qualified XML names and the namespace-URI intern table.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Upper bound on distinct interned namespace URIs. A SOAP deployment
/// sees a dozen or two specification namespaces; the cap only exists
/// so hostile or generated input (fuzzers, per-tenant topic URIs)
/// cannot grow the table without bound. Overflow falls back to a
/// plain allocation.
const INTERN_CAP: usize = 256;

fn intern_table() -> &'static RwLock<HashMap<String, Arc<str>>> {
    static TABLE: OnceLock<RwLock<HashMap<String, Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Intern a namespace URI, returning a shared `Arc<str>`.
///
/// The same few specification namespaces (WS-Addressing,
/// WS-ResourceProperties, ...) repeat thousands of times across a
/// message exchange; interning makes every [`QName`] holding one a
/// pointer-sized clone instead of a fresh allocation — the same trick
/// the dispatch layer uses for its interned span names. The table is
/// process-global, seeded on first use, and capped at a fixed size
/// (overflow simply allocates).
pub fn intern_ns(uri: &str) -> Arc<str> {
    if let Some(a) = intern_table().read().unwrap().get(uri) {
        return a.clone();
    }
    let mut table = intern_table().write().unwrap();
    if let Some(a) = table.get(uri) {
        return a.clone();
    }
    let a: Arc<str> = Arc::from(uri);
    if table.len() < INTERN_CAP {
        table.insert(uri.to_string(), a.clone());
    }
    a
}

/// A namespace-qualified XML name: `{namespace-uri}local-part`.
///
/// Namespace URIs are interned behind an [`Arc`] because the same few
/// specification namespaces (WS-Addressing, WS-ResourceProperties, ...)
/// are repeated thousands of times across a message exchange.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QName {
    /// The namespace URI, or `None` for names in no namespace.
    pub ns: Option<Arc<str>>,
    /// The local part of the name.
    pub local: String,
}

impl QName {
    /// A name in the given namespace. The namespace URI is interned
    /// (see [`intern_ns`]).
    pub fn new(ns: impl AsRef<str>, local: impl Into<String>) -> Self {
        QName {
            ns: Some(intern_ns(ns.as_ref())),
            local: local.into(),
        }
    }

    /// A name in no namespace.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            ns: None,
            local: local.into(),
        }
    }

    /// The namespace URI as a plain `&str`, if any.
    pub fn ns_str(&self) -> Option<&str> {
        self.ns.as_deref()
    }

    /// True when this name has the given namespace URI and local part.
    pub fn is(&self, ns: &str, local: &str) -> bool {
        self.local == local && self.ns_str() == Some(ns)
    }

    /// Parse Clark notation, `{uri}local` or bare `local`.
    pub fn from_clark(s: &str) -> Self {
        if let Some(rest) = s.strip_prefix('{') {
            if let Some(end) = rest.find('}') {
                let (uri, local) = rest.split_at(end);
                return QName::new(uri, &local[1..]);
            }
        }
        QName::local(s)
    }
}

impl fmt::Display for QName {
    /// Clark notation: `{uri}local`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ns {
            Some(ns) => write!(f, "{{{}}}{}", ns, self.local),
            None => f.write_str(&self.local),
        }
    }
}

impl fmt::Debug for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QName({})", self)
    }
}

impl From<&str> for QName {
    fn from(s: &str) -> Self {
        QName::from_clark(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clark_roundtrip() {
        let q = QName::new("http://example.org/ns", "Job");
        assert_eq!(q.to_string(), "{http://example.org/ns}Job");
        assert_eq!(QName::from_clark(&q.to_string()), q);
        let bare = QName::local("Job");
        assert_eq!(bare.to_string(), "Job");
        assert_eq!(QName::from_clark("Job"), bare);
    }

    #[test]
    fn is_matches_namespace_and_local() {
        let q = QName::new("urn:a", "x");
        assert!(q.is("urn:a", "x"));
        assert!(!q.is("urn:b", "x"));
        assert!(!q.is("urn:a", "y"));
        assert!(!QName::local("x").is("urn:a", "x"));
    }

    #[test]
    fn from_str_conversion() {
        let q: QName = "{urn:a}x".into();
        assert!(q.is("urn:a", "x"));
    }

    #[test]
    fn interned_uris_share_storage() {
        let a = intern_ns("urn:share-me");
        let b = intern_ns("urn:share-me");
        assert!(Arc::ptr_eq(&a, &b));
        let qa = QName::new("urn:share-me", "x");
        assert!(Arc::ptr_eq(qa.ns.as_ref().unwrap(), &a));
    }
}
