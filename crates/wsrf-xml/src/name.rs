//! Namespace-qualified XML names.

use std::fmt;
use std::sync::Arc;

/// A namespace-qualified XML name: `{namespace-uri}local-part`.
///
/// Namespace URIs are interned behind an [`Arc`] because the same few
/// specification namespaces (WS-Addressing, WS-ResourceProperties, ...)
/// are repeated thousands of times across a message exchange.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct QName {
    /// The namespace URI, or `None` for names in no namespace.
    pub ns: Option<Arc<str>>,
    /// The local part of the name.
    pub local: String,
}

impl QName {
    /// A name in the given namespace.
    pub fn new(ns: impl AsRef<str>, local: impl Into<String>) -> Self {
        QName {
            ns: Some(Arc::from(ns.as_ref())),
            local: local.into(),
        }
    }

    /// A name in no namespace.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            ns: None,
            local: local.into(),
        }
    }

    /// The namespace URI as a plain `&str`, if any.
    pub fn ns_str(&self) -> Option<&str> {
        self.ns.as_deref()
    }

    /// True when this name has the given namespace URI and local part.
    pub fn is(&self, ns: &str, local: &str) -> bool {
        self.local == local && self.ns_str() == Some(ns)
    }

    /// Parse Clark notation, `{uri}local` or bare `local`.
    pub fn from_clark(s: &str) -> Self {
        if let Some(rest) = s.strip_prefix('{') {
            if let Some(end) = rest.find('}') {
                let (uri, local) = rest.split_at(end);
                return QName::new(uri, &local[1..]);
            }
        }
        QName::local(s)
    }
}

impl fmt::Display for QName {
    /// Clark notation: `{uri}local`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ns {
            Some(ns) => write!(f, "{{{}}}{}", ns, self.local),
            None => f.write_str(&self.local),
        }
    }
}

impl fmt::Debug for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QName({})", self)
    }
}

impl From<&str> for QName {
    fn from(s: &str) -> Self {
        QName::from_clark(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clark_roundtrip() {
        let q = QName::new("http://example.org/ns", "Job");
        assert_eq!(q.to_string(), "{http://example.org/ns}Job");
        assert_eq!(QName::from_clark(&q.to_string()), q);
        let bare = QName::local("Job");
        assert_eq!(bare.to_string(), "Job");
        assert_eq!(QName::from_clark("Job"), bare);
    }

    #[test]
    fn is_matches_namespace_and_local() {
        let q = QName::new("urn:a", "x");
        assert!(q.is("urn:a", "x"));
        assert!(!q.is("urn:b", "x"));
        assert!(!q.is("urn:a", "y"));
        assert!(!QName::local("x").is("urn:a", "x"));
    }

    #[test]
    fn from_str_conversion() {
        let q: QName = "{urn:a}x".into();
        assert!(q.is("urn:a", "x"));
    }
}
