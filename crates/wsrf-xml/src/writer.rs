//! XML serialization with automatic namespace-prefix management.
//!
//! The writer walks the element tree, assigning prefixes (`ns0`,
//! `ns1`, ...) to namespace URIs the first time they appear and emitting
//! the corresponding `xmlns:` declarations on the element that
//! introduced them. Prefix bindings are scoped: siblings reuse a
//! binding introduced by an ancestor but not one introduced by an
//! earlier sibling subtree.
//!
//! The serializer is **borrowing and sink-generic**: it never clones
//! the tree, and it renders through the [`XmlSink`] trait, so the same
//! single pass can fill a `String`, append to a reusable `Vec<u8>`
//! transport buffer, or — via [`LenSink`] — merely *count* bytes.
//! [`Element::encoded_len`] uses the counting sink to compute the exact
//! wire length without rendering, which is what lets the in-process
//! transport account for bytes with zero serializations per message.
//! Prefixes are tracked as integer ids on a stack-scoped table
//! (`bindings` holds `(uri, id)` pairs borrowed from the tree), so the
//! hot path performs no per-element allocations; the only heap use is
//! the prefix stack itself.

use crate::node::{Element, Node};

/// The XML declaration prepended by [`Element::to_document`] and
/// [`Element::write_document_into`].
pub const XML_PROLOG: &str = "<?xml version=\"1.0\" encoding=\"utf-8\"?>";

/// Output sink for the serializer.
///
/// Implemented for `String` (the classic `to_xml` path), `Vec<u8>`
/// (pooled transport buffers; the writer only pushes valid UTF-8) and
/// [`LenSink`] (byte counting without rendering).
pub trait XmlSink {
    /// Append a string slice.
    fn push_str(&mut self, s: &str);
    /// Append a single character.
    fn push_char(&mut self, c: char);
}

impl XmlSink for String {
    fn push_str(&mut self, s: &str) {
        self.push_str(s);
    }

    fn push_char(&mut self, c: char) {
        self.push(c);
    }
}

impl XmlSink for Vec<u8> {
    fn push_str(&mut self, s: &str) {
        self.extend_from_slice(s.as_bytes());
    }

    fn push_char(&mut self, c: char) {
        let mut buf = [0u8; 4];
        self.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
    }
}

/// A sink that discards bytes and remembers only how many there were.
/// Feeding the serializer a `LenSink` *is* the exact-size computation:
/// the size pass and the render pass are the same code, so they cannot
/// disagree.
#[derive(Debug, Default, Clone, Copy)]
pub struct LenSink(usize);

impl LenSink {
    pub fn new() -> Self {
        LenSink(0)
    }

    /// Bytes "written" so far.
    pub fn len(&self) -> usize {
        self.0
    }

    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

impl XmlSink for LenSink {
    fn push_str(&mut self, s: &str) {
        self.0 += s.len();
    }

    fn push_char(&mut self, c: char) {
        self.0 += c.len_utf8();
    }
}

/// Escape character data for use inside element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_text_into(s, &mut out);
    out
}

/// Escape character data for use inside a double-quoted attribute.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_attr_into(s, &mut out);
    out
}

/// [`escape_text`] straight into a sink: no intermediate `String`.
pub fn escape_text_into<S: XmlSink>(s: &str, out: &mut S) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push_char(c),
        }
    }
}

/// [`escape_attr`] straight into a sink: no intermediate `String`.
pub fn escape_attr_into<S: XmlSink>(s: &str, out: &mut S) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push_char(c),
        }
    }
}

/// Append the synthesized prefix for binding `id` (`ns0`, `ns1`, ...)
/// without formatting through the allocator.
fn push_prefix<S: XmlSink>(out: &mut S, id: u32) {
    out.push_str("ns");
    // u32 has at most 10 decimal digits.
    let mut digits = [0u8; 10];
    let mut n = id;
    let mut at = digits.len();
    loop {
        at -= 1;
        digits[at] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    out.push_str(std::str::from_utf8(&digits[at..]).unwrap());
}

/// Scoped prefix table used during a single serialization pass. URIs
/// are borrowed from the tree being written; prefixes are the integer
/// ids they render as (`ns{id}`), assigned monotonically so sibling
/// subtrees never reuse each other's ids.
struct Scope<'n> {
    /// Stack of (uri, prefix id) bindings; later entries shadow earlier.
    bindings: Vec<(&'n str, u32)>,
    next_id: u32,
    /// Declarations introduced by the tag currently being opened,
    /// reused across elements so `open_tag` never allocates.
    fresh: Vec<(&'n str, u32)>,
}

impl<'n> Scope<'n> {
    fn new() -> Self {
        Scope {
            bindings: Vec::new(),
            next_id: 0,
            fresh: Vec::new(),
        }
    }

    fn lookup(&self, uri: &str) -> Option<u32> {
        self.bindings
            .iter()
            .rev()
            .find(|(u, _)| *u == uri)
            .map(|(_, id)| *id)
    }

    /// Resolve `uri` to a prefix id, minting a new declaration (staged
    /// in `fresh`) when neither the scope nor the current tag binds it.
    fn resolve(&mut self, uri: &'n str) -> u32 {
        if let Some(id) = self.lookup(uri) {
            return id;
        }
        if let Some(&(_, id)) = self.fresh.iter().find(|(u, _)| *u == uri) {
            return id;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.fresh.push((uri, id));
        id
    }

    /// Move the staged declarations into scope; returns how many were
    /// added (the caller truncates by the same count after the close
    /// tag).
    fn commit(&mut self) -> usize {
        let added = self.fresh.len();
        self.bindings.extend(self.fresh.iter().copied());
        added
    }
}

/// Emit `prefix:local` (or bare `local`) for a name whose namespace is
/// already bound in `scope`.
fn emit_name<S: XmlSink>(ns: Option<&str>, local: &str, out: &mut S, scope: &Scope<'_>) {
    match ns {
        None => out.push_str(local),
        Some(uri) => {
            let id = scope
                .lookup(uri)
                .expect("namespace resolved before emission");
            push_prefix(out, id);
            out.push_char(':');
            out.push_str(local);
        }
    }
}

/// Open tag for a synthetic (element-free) name: resolve, declare,
/// emit. Returns the number of bindings introduced.
fn open_raw<'n, S: XmlSink>(
    ns: Option<&'n str>,
    local: &'n str,
    out: &mut S,
    scope: &mut Scope<'n>,
) -> usize {
    scope.fresh.clear();
    if let Some(uri) = ns {
        scope.resolve(uri);
    }
    let added = scope.commit();
    out.push_char('<');
    emit_name(ns, local, out, scope);
    let decl_start = scope.bindings.len() - added;
    for i in decl_start..scope.bindings.len() {
        let (uri, id) = scope.bindings[i];
        out.push_str(" xmlns:");
        push_prefix(out, id);
        out.push_str("=\"");
        escape_attr_into(uri, out);
        out.push_char('"');
    }
    added
}

/// Open tag for a real element: two passes — resolve every prefix the
/// tag needs (element name first, then attribute names, matching the
/// historical declaration order), then emit name, `xmlns:` declarations
/// and attributes. Returns the number of bindings introduced.
fn open_tag<'n, S: XmlSink>(e: &'n Element, out: &mut S, scope: &mut Scope<'n>) -> usize {
    scope.fresh.clear();
    if let Some(uri) = e.name.ns_str() {
        scope.resolve(uri);
    }
    for (an, _) in &e.attrs {
        if let Some(uri) = an.ns_str() {
            scope.resolve(uri);
        }
    }
    let added = scope.commit();
    out.push_char('<');
    emit_name(e.name.ns_str(), &e.name.local, out, scope);
    // Declarations introduced by this tag sit at the top of the stack.
    let decl_start = scope.bindings.len() - added;
    for i in decl_start..scope.bindings.len() {
        let (uri, id) = scope.bindings[i];
        out.push_str(" xmlns:");
        push_prefix(out, id);
        out.push_str("=\"");
        escape_attr_into(uri, out);
        out.push_char('"');
    }
    for (an, av) in &e.attrs {
        out.push_char(' ');
        emit_name(an.ns_str(), &an.local, out, scope);
        out.push_str("=\"");
        escape_attr_into(av, out);
        out.push_char('"');
    }
    added
}

fn write_element<'n, S: XmlSink>(e: &'n Element, out: &mut S, scope: &mut Scope<'n>) {
    let added = open_tag(e, out, scope);
    if e.children.is_empty() {
        out.push_str("/>");
    } else {
        out.push_char('>');
        for c in &e.children {
            match c {
                Node::Text(t) => escape_text_into(t, out),
                Node::Element(el) => write_element(el, out, scope),
            }
        }
        out.push_str("</");
        emit_name(e.name.ns_str(), &e.name.local, out, scope);
        out.push_char('>');
    }
    scope.bindings.truncate(scope.bindings.len() - added);
}

impl Element {
    /// Serialize this element (and subtree) to a compact XML string.
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_xml_into(&mut out);
        out
    }

    /// Serialize with a leading XML declaration, as sent on the wire.
    pub fn to_document(&self) -> String {
        let mut out = String::with_capacity(256 + XML_PROLOG.len());
        self.write_document_into(&mut out);
        out
    }

    /// Serialize into an existing sink without cloning the tree —
    /// byte-for-byte identical to [`Element::to_xml`].
    pub fn write_xml_into<S: XmlSink>(&self, out: &mut S) {
        let mut scope = Scope::new();
        write_element(self, out, &mut scope);
    }

    /// Serialize with the XML declaration into an existing sink —
    /// byte-for-byte identical to [`Element::to_document`].
    pub fn write_document_into<S: XmlSink>(&self, out: &mut S) {
        out.push_str(XML_PROLOG);
        self.write_xml_into(out);
    }

    /// Exact serialized size in bytes: `to_xml().len()` computed in a
    /// single counting pass, without rendering. The pass shares the
    /// serializer code path (via [`LenSink`]), so the count includes
    /// namespace declarations, synthesized prefixes and escaping — the
    /// things [`Element::approx_size`] deliberately skips.
    pub fn encoded_len(&self) -> usize {
        let mut count = LenSink::new();
        self.write_xml_into(&mut count);
        count.len()
    }

    /// Serialize to an indented, human-readable string (used by the
    /// examples and by diagnostics; never on the wire).
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::with_capacity(256);
        let mut scope = Scope::new();
        write_pretty(self, &mut out, &mut scope, 0);
        out
    }
}

/// Streaming writer for documents whose outer structure is not an
/// [`Element`] tree: open synthetic tags with [`TreeWriter::start`],
/// splice whole borrowed subtrees with [`TreeWriter::element`], close
/// with [`TreeWriter::end`]. All prefix scoping is shared with the
/// element serializer, so a document written this way is byte-for-byte
/// what serializing the equivalent built tree would produce — without
/// ever building (or cloning into) that tree. `wsrf-soap` uses this to
/// render envelopes straight from their `headers`/`body` fields.
pub struct TreeWriter<'o, 'n, S: XmlSink> {
    out: &'o mut S,
    scope: Scope<'n>,
    open: Vec<(Option<&'n str>, &'n str, usize)>,
}

impl<'o, 'n, S: XmlSink> TreeWriter<'o, 'n, S> {
    pub fn new(out: &'o mut S) -> Self {
        TreeWriter {
            out,
            scope: Scope::new(),
            open: Vec::new(),
        }
    }

    /// Emit the XML declaration (call first, at most once).
    pub fn prolog(&mut self) {
        self.out.push_str(XML_PROLOG);
    }

    /// Open `<prefix:local>` for a synthetic element that will receive
    /// children. Attributes are not supported on synthetic tags; use
    /// [`TreeWriter::element`] for real elements.
    pub fn start(&mut self, ns: Option<&'n str>, local: &'n str) {
        let added = open_raw(ns, local, self.out, &mut self.scope);
        self.out.push_char('>');
        self.open.push((ns, local, added));
    }

    /// Serialize a borrowed element subtree in the current scope.
    pub fn element(&mut self, e: &'n Element) {
        write_element(e, self.out, &mut self.scope);
    }

    /// Close the most recently opened synthetic tag.
    pub fn end(&mut self) {
        let (ns, local, added) = self.open.pop().expect("TreeWriter::end without start");
        self.out.push_str("</");
        emit_name(ns, local, self.out, &self.scope);
        self.out.push_char('>');
        self.scope
            .bindings
            .truncate(self.scope.bindings.len() - added);
    }
}

fn write_pretty<'n>(e: &'n Element, out: &mut String, scope: &mut Scope<'n>, depth: usize) {
    let indent = "  ".repeat(depth);
    out.push_str(&indent);
    let added = open_tag(e, out, scope);
    let has_child_elems = e.elements().next().is_some();
    if e.children.is_empty() {
        out.push_str("/>\n");
    } else if !has_child_elems {
        out.push('>');
        for c in &e.children {
            if let Node::Text(t) = c {
                escape_text_into(t, out);
            }
        }
        out.push_str("</");
        emit_name(e.name.ns_str(), &e.name.local, out, scope);
        out.push_str(">\n");
    } else {
        out.push_str(">\n");
        for c in &e.children {
            match c {
                Node::Text(t) if t.trim().is_empty() => {}
                Node::Text(t) => {
                    out.push_str(&"  ".repeat(depth + 1));
                    escape_text_into(t, out);
                    out.push('\n');
                }
                Node::Element(el) => write_pretty(el, out, scope, depth + 1),
            }
        }
        out.push_str(&indent);
        out.push_str("</");
        emit_name(e.name.ns_str(), &e.name.local, out, scope);
        out.push_str(">\n");
    }
    scope.bindings.truncate(scope.bindings.len() - added);
}

#[cfg(test)]
mod tests {
    use super::{LenSink, TreeWriter, XmlSink};
    use crate::{Element, QName};

    #[test]
    fn writes_empty_element() {
        assert_eq!(Element::local("a").to_xml(), "<a/>");
    }

    #[test]
    fn writes_namespace_declarations_once() {
        let e = Element::new("urn:x", "a")
            .child(Element::new("urn:x", "b"))
            .child(Element::new("urn:y", "c"));
        let xml = e.to_xml();
        assert_eq!(
            xml,
            "<ns0:a xmlns:ns0=\"urn:x\"><ns0:b/><ns1:c xmlns:ns1=\"urn:y\"/></ns0:a>"
        );
    }

    #[test]
    fn escapes_text_and_attributes() {
        let e = Element::local("a")
            .attr("v", "x<\">&")
            .text("1 < 2 & 3 > 2");
        let xml = e.to_xml();
        assert_eq!(
            xml,
            "<a v=\"x&lt;&quot;&gt;&amp;\">1 &lt; 2 &amp; 3 &gt; 2</a>"
        );
    }

    #[test]
    fn sibling_scopes_do_not_leak_prefixes() {
        // urn:y is introduced inside the first child's subtree; the
        // second child must re-declare it.
        let e = Element::local("r")
            .child(Element::local("c1").child(Element::new("urn:y", "x")))
            .child(Element::new("urn:y", "x"));
        let xml = e.to_xml();
        assert_eq!(xml.matches("xmlns:").count(), 2, "{}", xml);
    }

    #[test]
    fn document_has_declaration() {
        assert!(Element::local("a").to_document().starts_with("<?xml"));
    }

    #[test]
    fn pretty_print_indents() {
        let e = Element::local("a").child(Element::local("b").text("t"));
        let pretty = e.to_pretty_xml();
        assert_eq!(pretty, "<a>\n  <b>t</b>\n</a>\n");
    }

    #[test]
    fn attribute_namespaces_declare_on_the_tag() {
        let e = Element::new("urn:x", "a").attr_ns(QName::new("urn:attr", "k"), "v");
        assert_eq!(
            e.to_xml(),
            "<ns0:a xmlns:ns0=\"urn:x\" xmlns:ns1=\"urn:attr\" ns1:k=\"v\"/>"
        );
    }

    #[test]
    fn encoded_len_matches_render_exactly() {
        let e = Element::new("urn:x", "root")
            .attr("plain", "a&b")
            .attr_ns(QName::new("urn:y", "q"), "line\nbreak")
            .child(Element::new("urn:x", "kid").text("1 < 2"))
            .child(Element::local("bare").child(Element::new("urn:z", "deep")))
            .text("日本語 & more");
        let xml = e.to_xml();
        assert_eq!(e.encoded_len(), xml.len());
        assert_eq!(
            e.encoded_len() + super::XML_PROLOG.len(),
            e.to_document().len()
        );
    }

    #[test]
    fn vec_sink_matches_string_sink() {
        let e = Element::new("urn:x", "a").child(Element::new("urn:y", "b").text("t<ö>"));
        let mut v: Vec<u8> = Vec::new();
        e.write_xml_into(&mut v);
        assert_eq!(v, e.to_xml().into_bytes());
        let mut doc: Vec<u8> = Vec::new();
        e.write_document_into(&mut doc);
        assert_eq!(doc, e.to_document().into_bytes());
    }

    #[test]
    fn len_sink_counts_utf8_bytes() {
        let mut c = LenSink::new();
        c.push_str("ab");
        c.push_char('ö');
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn tree_writer_matches_built_tree() {
        const NS: &str = "urn:outer";
        let h1 = Element::new("urn:h", "H1").text("x");
        let h2 = Element::new("urn:h", "H2").attr("k", "v");
        let body = Element::new("urn:b", "B").child(Element::new(NS, "reuse"));

        // The same document built as a tree and cloned in...
        let built = Element::new(NS, "Env")
            .child(Element::new(NS, "Head").child(h1.clone()).child(h2.clone()))
            .child(Element::new(NS, "Body").child(body.clone()))
            .to_document();

        // ...and streamed without cloning.
        let mut out = String::new();
        let mut w = TreeWriter::new(&mut out);
        w.prolog();
        w.start(Some(NS), "Env");
        w.start(Some(NS), "Head");
        w.element(&h1);
        w.element(&h2);
        w.end();
        w.start(Some(NS), "Body");
        w.element(&body);
        w.end();
        w.end();
        assert_eq!(out, built);

        // The counting sink agrees with the rendering sink.
        let mut count = LenSink::new();
        let mut w = TreeWriter::new(&mut count);
        w.prolog();
        w.start(Some(NS), "Env");
        w.start(Some(NS), "Head");
        w.element(&h1);
        w.element(&h2);
        w.end();
        w.start(Some(NS), "Body");
        w.element(&body);
        w.end();
        w.end();
        assert_eq!(count.len(), built.len());
    }

    #[test]
    fn prefix_ids_grow_past_nine_without_reuse() {
        // Eleven distinct sibling namespaces force a two-digit prefix;
        // the length pass must agree with the render on every digit.
        let mut root = Element::local("r");
        for i in 0..11 {
            root.push_child(Element::new(format!("urn:n{i}"), "c"));
        }
        let xml = root.to_xml();
        assert!(xml.contains("xmlns:ns10=\"urn:n10\""), "{xml}");
        assert_eq!(root.encoded_len(), xml.len());
    }
}
