//! XML serialization with automatic namespace-prefix management.
//!
//! The writer walks the element tree, assigning prefixes (`ns0`,
//! `ns1`, ...) to namespace URIs the first time they appear and emitting
//! the corresponding `xmlns:` declarations on the element that
//! introduced them. Prefix bindings are scoped: siblings reuse a
//! binding introduced by an ancestor but not one introduced by an
//! earlier sibling subtree.

use crate::node::{Element, Node};

/// Escape character data for use inside element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape character data for use inside a double-quoted attribute.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    out
}

/// Scoped prefix table used during a single serialization pass.
struct Scope {
    /// Stack of (uri, prefix) bindings; later entries shadow earlier.
    bindings: Vec<(String, String)>,
    next_id: usize,
}

impl Scope {
    fn lookup(&self, uri: &str) -> Option<&str> {
        self.bindings
            .iter()
            .rev()
            .find(|(u, _)| u == uri)
            .map(|(_, p)| p.as_str())
    }
}

impl Element {
    /// Serialize this element (and subtree) to a compact XML string.
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(256);
        let mut scope = Scope {
            bindings: Vec::new(),
            next_id: 0,
        };
        write_element(self, &mut out, &mut scope);
        out
    }

    /// Serialize with a leading XML declaration, as sent on the wire.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"utf-8\"?>");
        out.push_str(&self.to_xml());
        out
    }

    /// Serialize to an indented, human-readable string (used by the
    /// examples and by diagnostics; never on the wire).
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::with_capacity(256);
        let mut scope = Scope {
            bindings: Vec::new(),
            next_id: 0,
        };
        write_pretty(self, &mut out, &mut scope, 0);
        out
    }
}

fn write_name(
    name: &crate::QName,
    out: &mut String,
    scope: &mut Scope,
    new_decls: &mut Vec<(String, String)>,
) {
    match name.ns_str() {
        None => out.push_str(&name.local),
        Some(uri) => {
            let prefix = match scope.lookup(uri) {
                Some(p) => p.to_string(),
                None => {
                    // Also check declarations added for this very tag.
                    if let Some((_, p)) = new_decls.iter().find(|(u, _)| u == uri) {
                        p.clone()
                    } else {
                        let p = format!("ns{}", scope.next_id);
                        scope.next_id += 1;
                        new_decls.push((uri.to_string(), p.clone()));
                        p
                    }
                }
            };
            out.push_str(&prefix);
            out.push(':');
            out.push_str(&name.local);
        }
    }
}

fn open_tag(e: &Element, out: &mut String, scope: &mut Scope) -> usize {
    let mut new_decls: Vec<(String, String)> = Vec::new();
    out.push('<');
    write_name(&e.name, out, scope, &mut new_decls);
    // Attribute names may introduce further prefixes.
    let mut attr_text = String::new();
    for (an, av) in &e.attrs {
        attr_text.push(' ');
        write_name(an, &mut attr_text, scope, &mut new_decls);
        attr_text.push_str("=\"");
        attr_text.push_str(&escape_attr(av));
        attr_text.push('"');
    }
    for (uri, prefix) in &new_decls {
        out.push_str(" xmlns:");
        out.push_str(prefix);
        out.push_str("=\"");
        out.push_str(&escape_attr(uri));
        out.push('"');
    }
    out.push_str(&attr_text);
    let added = new_decls.len();
    scope.bindings.extend(new_decls);
    added
}

fn write_element(e: &Element, out: &mut String, scope: &mut Scope) {
    let added = open_tag(e, out, scope);
    if e.children.is_empty() {
        out.push_str("/>");
    } else {
        out.push('>');
        for c in &e.children {
            match c {
                Node::Text(t) => out.push_str(&escape_text(t)),
                Node::Element(el) => write_element(el, out, scope),
            }
        }
        out.push_str("</");
        let mut dummy = Vec::new();
        write_name(&e.name, out, scope, &mut dummy);
        debug_assert!(dummy.is_empty(), "close tag must reuse an existing prefix");
        out.push('>');
    }
    scope.bindings.truncate(scope.bindings.len() - added);
}

fn write_pretty(e: &Element, out: &mut String, scope: &mut Scope, depth: usize) {
    let indent = "  ".repeat(depth);
    out.push_str(&indent);
    let added = open_tag(e, out, scope);
    let has_child_elems = e.elements().next().is_some();
    if e.children.is_empty() {
        out.push_str("/>\n");
    } else if !has_child_elems {
        out.push('>');
        for c in &e.children {
            if let Node::Text(t) = c {
                out.push_str(&escape_text(t));
            }
        }
        out.push_str("</");
        let mut dummy = Vec::new();
        write_name(&e.name, out, scope, &mut dummy);
        out.push_str(">\n");
    } else {
        out.push_str(">\n");
        for c in &e.children {
            match c {
                Node::Text(t) if t.trim().is_empty() => {}
                Node::Text(t) => {
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str(&escape_text(t));
                    out.push('\n');
                }
                Node::Element(el) => write_pretty(el, out, scope, depth + 1),
            }
        }
        out.push_str(&indent);
        out.push_str("</");
        let mut dummy = Vec::new();
        write_name(&e.name, out, scope, &mut dummy);
        out.push_str(">\n");
    }
    scope.bindings.truncate(scope.bindings.len() - added);
}

#[cfg(test)]
mod tests {
    use crate::Element;

    #[test]
    fn writes_empty_element() {
        assert_eq!(Element::local("a").to_xml(), "<a/>");
    }

    #[test]
    fn writes_namespace_declarations_once() {
        let e = Element::new("urn:x", "a")
            .child(Element::new("urn:x", "b"))
            .child(Element::new("urn:y", "c"));
        let xml = e.to_xml();
        assert_eq!(
            xml,
            "<ns0:a xmlns:ns0=\"urn:x\"><ns0:b/><ns1:c xmlns:ns1=\"urn:y\"/></ns0:a>"
        );
    }

    #[test]
    fn escapes_text_and_attributes() {
        let e = Element::local("a")
            .attr("v", "x<\">&")
            .text("1 < 2 & 3 > 2");
        let xml = e.to_xml();
        assert_eq!(
            xml,
            "<a v=\"x&lt;&quot;&gt;&amp;\">1 &lt; 2 &amp; 3 &gt; 2</a>"
        );
    }

    #[test]
    fn sibling_scopes_do_not_leak_prefixes() {
        // urn:y is introduced inside the first child's subtree; the
        // second child must re-declare it.
        let e = Element::local("r")
            .child(Element::local("c1").child(Element::new("urn:y", "x")))
            .child(Element::new("urn:y", "x"));
        let xml = e.to_xml();
        assert_eq!(xml.matches("xmlns:").count(), 2, "{}", xml);
    }

    #[test]
    fn document_has_declaration() {
        assert!(Element::local("a").to_document().starts_with("<?xml"));
    }

    #[test]
    fn pretty_print_indents() {
        let e = Element::local("a").child(Element::local("b").text("t"));
        let pretty = e.to_pretty_xml();
        assert_eq!(pretty, "<a>\n  <b>t</b>\n</a>\n");
    }
}
