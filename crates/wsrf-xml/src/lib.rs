//! # wsrf-xml
//!
//! A small, dependency-free, namespace-aware XML infoset that serves as
//! the wire format for the entire WSRF stack in this workspace.
//!
//! The WSRF family of specifications (WS-ResourceProperties,
//! WS-ResourceLifetime, WS-BaseFaults, WS-ServiceGroup) and the
//! WS-Notification family are all defined in terms of XML documents and
//! qualified names, so faithfully reproducing the paper requires a real
//! XML layer rather than an ad-hoc struct encoding. This crate provides:
//!
//! * [`QName`] — namespace-qualified names,
//! * [`Element`] / [`Node`] — an ordered, attribute-carrying tree,
//! * a serializer ([`Element::to_xml`]) with automatic prefix
//!   management,
//! * a parser ([`parse`]) that resolves namespace prefixes,
//! * an XPath-lite engine ([`xpath::Path`]) sufficient for the
//!   `QueryResourceProperties` XPath dialect used by the paper's
//!   testbed.
//!
//! The implementation favours clarity over raw speed, but it is used on
//! every message hop, so the parser is a single-pass byte-walking
//! recursive descent with no regexes and few allocations beyond the
//! resulting tree.

pub mod base64;
pub mod error;
pub mod name;
pub mod node;
pub mod parser;
pub mod writer;
pub mod xpath;

pub use error::XmlError;
pub use name::{intern_ns, QName};
pub use node::{Element, Node};
pub use parser::{dom_build_count, parse, parse_event_count, Attr, Event, PullParser};
pub use writer::{LenSink, TreeWriter, XmlSink};

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, XmlError>;
