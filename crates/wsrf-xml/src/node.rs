//! The XML tree: elements, attributes and text nodes, with a fluent
//! builder API used pervasively when assembling SOAP messages.

use crate::name::QName;

/// A node in an XML tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A run of character data (already unescaped).
    Text(String),
}

impl Node {
    /// The contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// The contained text, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            Node::Element(_) => None,
        }
    }
}

/// An XML element: a qualified name, attributes and ordered children.
///
/// This is the universal currency of the workspace — SOAP envelopes,
/// resource property documents, notification payloads and fault details
/// are all `Element` trees.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    /// The element's qualified name.
    pub name: QName,
    /// Attributes in document order. Namespace declarations are *not*
    /// stored here; prefixes are synthesized by the writer.
    pub attrs: Vec<(QName, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// New empty element in a namespace.
    pub fn new(ns: impl AsRef<str>, local: impl Into<String>) -> Self {
        Element {
            name: QName::new(ns, local),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// New empty element in no namespace.
    pub fn local(local: impl Into<String>) -> Self {
        Element {
            name: QName::local(local),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// New element with the given qualified name.
    pub fn with_name(name: QName) -> Self {
        Element {
            name,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    // ---- builder API -------------------------------------------------

    /// Add an unqualified attribute (builder style).
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((QName::local(name), value.into()));
        self
    }

    /// Add a namespace-qualified attribute (builder style).
    pub fn attr_ns(mut self, name: QName, value: impl Into<String>) -> Self {
        self.attrs.push((name, value.into()));
        self
    }

    /// Append a child element (builder style).
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Append several child elements (builder style).
    pub fn children(mut self, children: impl IntoIterator<Item = Element>) -> Self {
        self.children
            .extend(children.into_iter().map(Node::Element));
        self
    }

    /// Append a text node (builder style). Empty text is skipped:
    /// `<a></a>` and `<a/>` are the same infoset, so empty text nodes
    /// could never survive a write/parse roundtrip.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.push_text(text);
        self
    }

    /// Append a child element in place.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Append a text node in place (empty text is skipped; see
    /// [`Self::text`]).
    pub fn push_text(&mut self, text: impl Into<String>) {
        let text = text.into();
        if !text.is_empty() {
            self.children.push(Node::Text(text));
        }
    }

    // ---- navigation ---------------------------------------------------

    /// Iterator over child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// First child element with the given namespace and local name.
    pub fn find(&self, ns: &str, local: &str) -> Option<&Element> {
        self.elements().find(|e| e.name.is(ns, local))
    }

    /// All child elements with the given namespace and local name.
    pub fn find_all<'a>(
        &'a self,
        ns: &'a str,
        local: &'a str,
    ) -> impl Iterator<Item = &'a Element> {
        self.elements().filter(move |e| e.name.is(ns, local))
    }

    /// First child element with the given local name, in any namespace.
    pub fn find_local(&self, local: &str) -> Option<&Element> {
        self.elements().find(|e| e.name.local == local)
    }

    /// Mutable access to the first child element with the given name.
    pub fn find_mut(&mut self, ns: &str, local: &str) -> Option<&mut Element> {
        self.children.iter_mut().find_map(|n| match n {
            Node::Element(e) if e.name.is(ns, local) => Some(e),
            _ => None,
        })
    }

    /// Value of an unqualified attribute.
    pub fn attr_value(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(q, _)| q.ns.is_none() && q.local == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of a namespace-qualified attribute.
    pub fn attr_value_ns(&self, ns: &str, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(q, _)| q.is(ns, name))
            .map(|(_, v)| v.as_str())
    }

    /// Estimated serialized byte size — open/close tags, attributes,
    /// text and descendants — computed without serializing (no
    /// allocation). Namespace declarations are not counted, so this
    /// slightly undershoots `to_xml().len()`; metrics accounting uses
    /// it where exact wire size is not worth a serialization pass.
    pub fn approx_size(&self) -> usize {
        // "<local>" + "</local>"
        let mut n = 2 * self.name.local.len() + 5;
        for (name, value) in &self.attrs {
            n += name.local.len() + value.len() + 4;
        }
        for c in &self.children {
            n += match c {
                Node::Element(e) => e.approx_size(),
                Node::Text(t) => t.len(),
            };
        }
        n
    }

    /// Concatenation of all descendant text.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                Node::Text(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Depth-first iterator over this element and all descendants.
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }

    /// Required child lookup, for protocol decoding: like [`Self::find`]
    /// but produces a descriptive error.
    pub fn expect(&self, ns: &str, local: &str) -> crate::Result<&Element> {
        self.find(ns, local).ok_or_else(|| {
            crate::XmlError::new(format!(
                "element <{}> is missing required child {{{}}}{}",
                self.name, ns, local
            ))
        })
    }

    /// Required child's text content.
    pub fn expect_text(&self, ns: &str, local: &str) -> crate::Result<String> {
        Ok(self.expect(ns, local)?.text_content())
    }

    /// Number of element children.
    pub fn element_count(&self) -> usize {
        self.elements().count()
    }
}

/// Depth-first traversal produced by [`Element::descendants`].
pub struct Descendants<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<Self::Item> {
        let next = self.stack.pop()?;
        // Push children in reverse so iteration is document order.
        for c in next.children.iter().rev() {
            if let Node::Element(e) = c {
                self.stack.push(e);
            }
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NS: &str = "urn:test";

    fn sample() -> Element {
        Element::new(NS, "root")
            .attr("id", "1")
            .child(Element::new(NS, "a").text("hello"))
            .child(Element::new(NS, "b").child(Element::new(NS, "a").text(" world")))
            .text("tail")
    }

    #[test]
    fn builder_and_navigation() {
        let e = sample();
        assert_eq!(e.attr_value("id"), Some("1"));
        assert_eq!(e.find(NS, "a").unwrap().text_content(), "hello");
        assert_eq!(
            e.find(NS, "b")
                .unwrap()
                .find(NS, "a")
                .unwrap()
                .text_content(),
            " world"
        );
        assert!(e.find(NS, "zzz").is_none());
        assert_eq!(e.element_count(), 2);
    }

    #[test]
    fn text_content_concatenates_depth_first() {
        assert_eq!(sample().text_content(), "hello worldtail");
    }

    #[test]
    fn descendants_in_document_order() {
        let s = sample();
        let names: Vec<&str> = s.descendants().map(|e| e.name.local.as_str()).collect();
        assert_eq!(names, ["root", "a", "b", "a"]);
    }

    #[test]
    fn find_all_filters_by_name() {
        let e = Element::local("r")
            .child(Element::new(NS, "x"))
            .child(Element::new("urn:other", "x"))
            .child(Element::new(NS, "x"));
        assert_eq!(e.find_all(NS, "x").count(), 2);
    }

    #[test]
    fn expect_reports_useful_error() {
        let err = sample().expect(NS, "missing").unwrap_err();
        assert!(err.message.contains("missing required child"), "{}", err);
    }

    #[test]
    fn find_mut_allows_in_place_edit() {
        let mut e = sample();
        e.find_mut(NS, "a").unwrap().push_text("!");
        assert_eq!(e.find(NS, "a").unwrap().text_content(), "hello!");
    }
}
