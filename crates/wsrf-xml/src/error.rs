//! Error type shared by the parser and the XPath engine.

use std::fmt;

/// An error raised while parsing an XML document or an XPath-lite
/// expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human readable description of what went wrong.
    pub message: String,
    /// Byte offset into the input at which the error was detected, when
    /// known.
    pub offset: Option<usize>,
}

impl XmlError {
    /// Create an error with no position information.
    pub fn new(message: impl Into<String>) -> Self {
        XmlError {
            message: message.into(),
            offset: None,
        }
    }

    /// Create an error anchored at a byte offset in the input.
    pub fn at(message: impl Into<String>, offset: usize) -> Self {
        XmlError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "xml error at byte {}: {}", o, self.message),
            None => write!(f, "xml error: {}", self.message),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = XmlError::at("unexpected '<'", 17);
        assert_eq!(e.to_string(), "xml error at byte 17: unexpected '<'");
        let e = XmlError::new("truncated");
        assert_eq!(e.to_string(), "xml error: truncated");
    }
}
