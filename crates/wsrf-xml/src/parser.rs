//! A single-pass, namespace-resolving XML parser.
//!
//! Supports the subset of XML 1.0 that appears on SOAP wires: elements,
//! attributes, character data, the five predefined entities plus
//! numeric character references, CDATA sections, comments, processing
//! instructions and the XML declaration. DTDs are rejected (as real
//! SOAP stacks do, to avoid entity-expansion attacks).

use std::collections::HashMap;

use crate::error::XmlError;
use crate::name::QName;
use crate::node::{Element, Node};
use crate::Result;

/// Maximum element nesting depth accepted by [`parse`]. The parser is
/// recursive and debug-build frames are large, so this is set well
/// inside a 2 MiB test-thread stack while remaining far beyond any
/// real SOAP message (real stacks bound nesting too).
pub const MAX_DEPTH: usize = 100;

/// Parse a complete XML document (or bare element) into an [`Element`].
pub fn parse(input: &str) -> Result<Element> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        ns_stack: Vec::new(),
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(XmlError::at(
            "trailing content after document element",
            p.pos,
        ));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Stack of per-element namespace bindings: prefix -> uri. The
    /// empty-string prefix holds the default namespace.
    ns_stack: Vec<HashMap<String, String>>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn skip_until(&mut self, pat: &str) -> Result<()> {
        let hay = &self.bytes[self.pos..];
        match find_sub(hay, pat.as_bytes()) {
            Some(i) => {
                self.pos += i + pat.len();
                Ok(())
            }
            None => Err(XmlError::at(
                format!("unterminated construct, expected '{}'", pat),
                self.pos,
            )),
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_until("?>")?;
        }
        self.skip_misc();
        if self.starts_with("<!DOCTYPE") {
            return Err(XmlError::at("DTDs are not accepted", self.pos));
        }
        Ok(())
    }

    /// Skip comments, PIs and whitespace between top-level constructs.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::at("expected a name", self.pos));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| XmlError::at("invalid utf-8 in name", start))?
            .to_string())
    }

    fn resolve(&self, prefix: &str, pos: usize, is_attr: bool) -> Result<Option<String>> {
        if prefix == "xml" {
            return Ok(Some("http://www.w3.org/XML/1998/namespace".to_string()));
        }
        for frame in self.ns_stack.iter().rev() {
            if let Some(uri) = frame.get(prefix) {
                if uri.is_empty() {
                    return Ok(None); // xmlns="" un-declares the default ns
                }
                return Ok(Some(uri.clone()));
            }
        }
        if prefix.is_empty() || (is_attr && prefix.is_empty()) {
            Ok(None)
        } else {
            Err(XmlError::at(
                format!("undeclared namespace prefix '{}'", prefix),
                pos,
            ))
        }
    }

    fn split_prefixed(raw: &str) -> (&str, &str) {
        match raw.find(':') {
            Some(i) => (&raw[..i], &raw[i + 1..]),
            None => ("", raw),
        }
    }

    fn parse_element(&mut self) -> Result<Element> {
        if self.ns_stack.len() >= crate::parser::MAX_DEPTH {
            return Err(XmlError::at(
                format!("element nesting exceeds {} levels", MAX_DEPTH),
                self.pos,
            ));
        }
        let tag_pos = self.pos;
        self.expect_byte(b'<')?;
        let raw_name = self.parse_name()?;

        // First pass over attributes: gather raw attrs and ns decls.
        let mut frame: HashMap<String, String> = HashMap::new();
        let mut raw_attrs: Vec<(String, String, usize)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let apos = self.pos;
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.expect_byte(b'=')?;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .ok_or_else(|| XmlError::at("eof in attribute", self.pos))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(XmlError::at("attribute value must be quoted", self.pos));
                    }
                    self.pos += 1;
                    let vstart = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        if b == b'<' {
                            return Err(XmlError::at("'<' in attribute value", self.pos));
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(XmlError::at("unterminated attribute value", vstart));
                    }
                    let raw_val = std::str::from_utf8(&self.bytes[vstart..self.pos])
                        .map_err(|_| XmlError::at("invalid utf-8", vstart))?;
                    let value = unescape(raw_val, vstart)?;
                    self.pos += 1; // closing quote
                    if aname == "xmlns" {
                        frame.insert(String::new(), value);
                    } else if let Some(pfx) = aname.strip_prefix("xmlns:") {
                        frame.insert(pfx.to_string(), value);
                    } else {
                        raw_attrs.push((aname, value, apos));
                    }
                }
                None => return Err(XmlError::at("eof inside start tag", self.pos)),
            }
        }
        self.ns_stack.push(frame);

        // Resolve the element name and attribute names.
        let (prefix, local) = Self::split_prefixed(&raw_name);
        let ns = self.resolve(prefix, tag_pos, false)?;
        let name = match ns {
            Some(uri) => QName::new(uri, local),
            None => QName::local(local),
        };
        let mut element = Element::with_name(name);
        for (raw, value, apos) in raw_attrs {
            let (pfx, loc) = Self::split_prefixed(&raw);
            // Per the namespaces spec, unprefixed attributes are in no
            // namespace (they do NOT inherit the default namespace).
            let qn = if pfx.is_empty() {
                QName::local(loc)
            } else {
                match self.resolve(pfx, apos, true)? {
                    Some(uri) => QName::new(uri, loc),
                    None => QName::local(loc),
                }
            };
            element.attrs.push((qn, value));
        }

        // Empty-element tag?
        if self.peek() == Some(b'/') {
            self.pos += 1;
            self.expect_byte(b'>')?;
            self.ns_stack.pop();
            return Ok(element);
        }
        self.expect_byte(b'>')?;

        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close_pos = self.pos;
                let close_name = self.parse_name()?;
                self.skip_ws();
                self.expect_byte(b'>')?;
                if close_name != raw_name {
                    return Err(XmlError::at(
                        format!("mismatched close tag </{}> for <{}>", close_name, raw_name),
                        close_pos,
                    ));
                }
                self.ns_stack.pop();
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                self.skip_until("]]>")?;
                let text = std::str::from_utf8(&self.bytes[start..self.pos - 3])
                    .map_err(|_| XmlError::at("invalid utf-8 in CDATA", start))?;
                push_text(&mut element, text.to_string());
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(Node::Element(child));
            } else if self.peek().is_some() {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| XmlError::at("invalid utf-8 in text", start))?;
                push_text(&mut element, unescape(raw, start)?);
            } else {
                return Err(XmlError::at("eof inside element content", self.pos));
            }
        }
    }
}

/// Append text, merging with a trailing text node (CDATA adjacency).
fn push_text(element: &mut Element, text: String) {
    if text.is_empty() {
        return;
    }
    if let Some(Node::Text(prev)) = element.children.last_mut() {
        prev.push_str(&text);
    } else {
        element.children.push(Node::Text(text));
    }
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Decode the predefined entities and numeric character references.
fn unescape(raw: &str, offset: usize) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| XmlError::at("unterminated entity reference", offset))?;
        let entity = &rest[1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| XmlError::at("bad hex character reference", offset))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| XmlError::at("invalid character reference", offset))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| XmlError::at("bad character reference", offset))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| XmlError::at("invalid character reference", offset))?,
                );
            }
            other => {
                return Err(XmlError::at(
                    format!("unknown entity '&{};'", other),
                    offset,
                ));
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let e = parse("<?xml version=\"1.0\"?><a x=\"1\"><b>hi</b></a>").unwrap();
        assert_eq!(e.name.local, "a");
        assert_eq!(e.attr_value("x"), Some("1"));
        assert_eq!(e.find_local("b").unwrap().text_content(), "hi");
    }

    #[test]
    fn resolves_default_and_prefixed_namespaces() {
        let e = parse("<a xmlns=\"urn:d\" xmlns:p=\"urn:p\"><p:b/><c/></a>").unwrap();
        assert!(e.name.is("urn:d", "a"));
        assert!(e.elements().next().unwrap().name.is("urn:p", "b"));
        assert!(e.elements().nth(1).unwrap().name.is("urn:d", "c"));
    }

    #[test]
    fn unprefixed_attributes_have_no_namespace() {
        let e = parse("<a xmlns=\"urn:d\" k=\"v\"/>").unwrap();
        assert_eq!(e.attrs[0].0, QName::local("k"));
    }

    #[test]
    fn namespace_scoping_and_shadowing() {
        let e = parse("<a xmlns:p=\"urn:1\"><b xmlns:p=\"urn:2\"><p:x/></b><p:y/></a>").unwrap();
        let b = e.elements().next().unwrap();
        assert!(b.elements().next().unwrap().name.is("urn:2", "x"));
        assert!(e.elements().nth(1).unwrap().name.is("urn:1", "y"));
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        assert!(parse("<p:a/>").is_err());
    }

    #[test]
    fn entities_and_char_refs() {
        let e = parse("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>").unwrap();
        assert_eq!(e.text_content(), "<>&\"'AB");
    }

    #[test]
    fn cdata_is_literal_text() {
        let e = parse("<a><![CDATA[1 < 2 & x]]></a>").unwrap();
        assert_eq!(e.text_content(), "1 < 2 & x");
    }

    #[test]
    fn adjacent_text_and_cdata_merge() {
        let e = parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(e.children.len(), 1);
        assert_eq!(e.text_content(), "xyz");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let e = parse("<!-- c --><a><!-- c2 --><?pi data?><b/></a><!-- tail -->").unwrap();
        assert_eq!(e.element_count(), 1);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn doctype_rejected() {
        assert!(parse("<!DOCTYPE a []><a/>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn single_quoted_attributes() {
        let e = parse("<a k='v\"w'/>").unwrap();
        assert_eq!(e.attr_value("k"), Some("v\"w"));
    }

    #[test]
    fn xmlns_empty_undeclares_default() {
        let e = parse("<a xmlns=\"urn:d\"><b xmlns=\"\"/></a>").unwrap();
        assert!(e.elements().next().unwrap().name.ns.is_none());
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "<a>".repeat(MAX_DEPTH + 1) + &"</a>".repeat(MAX_DEPTH + 1);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Depth just under the limit is fine.
        let ok = "<a>".repeat(MAX_DEPTH - 1) + &"</a>".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn roundtrip_through_writer() {
        let src = crate::Element::new("urn:x", "root")
            .attr("a", "1 < 2")
            .child(crate::Element::new("urn:y", "kid").text("t&t"))
            .child(crate::Element::new("urn:x", "kid2"));
        let parsed = parse(&src.to_xml()).unwrap();
        assert_eq!(parsed, src);
    }
}
