//! A single-pass, namespace-resolving XML parser.
//!
//! Supports the subset of XML 1.0 that appears on SOAP wires: elements,
//! attributes, character data, the five predefined entities plus
//! numeric character references, CDATA sections, comments, processing
//! instructions and the XML declaration. DTDs are rejected (as real
//! SOAP stacks do, to avoid entity-expansion attacks).
//!
//! Two surfaces share one tokenizer:
//!
//! * [`PullParser`] — a forward-only cursor that yields borrowed
//!   [`Event`]s (start/end/text, with attributes available on the
//!   parser between a start tag and the next event) straight out of
//!   the receive buffer. Namespace URIs are resolved eagerly against
//!   the live binding stack and handed out as interned `Arc<str>`
//!   (see [`crate::name::intern_ns`]), so consumers that only route on
//!   a handful of headers never allocate a tree.
//! * [`parse`] — the classic DOM entry point, now a thin wrapper that
//!   drives a `PullParser` through [`PullParser::build_element`]. The
//!   two are byte-for-byte equivalent by construction, including error
//!   messages and offsets.
//!
//! Process-global counters track tokenizer work: [`parse_event_count`]
//! increments once per event produced, [`dom_build_count`] once per
//! materialized subtree. The wirepath budget tests pin both per
//! exchange, exactly like `wsrf_soap::render_count` pins renders.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::XmlError;
use crate::name::{intern_ns, QName};
use crate::node::{Element, Node};
use crate::Result;

/// Maximum element nesting depth accepted by the parser. Tree building
/// is recursive and debug-build frames are large, so this is set well
/// inside a 2 MiB test-thread stack while remaining far beyond any
/// real SOAP message (real stacks bound nesting too).
pub const MAX_DEPTH: usize = 100;

/// Process-global count of pull events produced (start/end/text).
static PARSE_EVENTS: AtomicU64 = AtomicU64::new(0);
/// Process-global count of DOM subtrees materialized from the stream.
static DOM_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total pull-parser events produced by this process so far.
///
/// Monotonic; tests snapshot it before and after an exchange to pin a
/// tokenization budget.
pub fn parse_event_count() -> u64 {
    PARSE_EVENTS.load(Ordering::Relaxed)
}

/// Total DOM subtrees materialized by this process so far (one per
/// [`PullParser::build_element`] call; [`parse`] counts as one).
pub fn dom_build_count() -> u64 {
    DOM_BUILDS.load(Ordering::Relaxed)
}

/// Parse a complete XML document (or bare element) into an [`Element`].
pub fn parse(input: &str) -> Result<Element> {
    let mut p = PullParser::new(input);
    match p.next_event()? {
        Some(Event::Start { .. }) => {
            let root = p.build_element()?;
            // Runs the trailing-content check after the root element.
            p.next_event()?;
            Ok(root)
        }
        // Unreachable: at the top level the first event is a start tag
        // or an error ("expected '<'"), never text or clean EOF.
        _ => Err(XmlError::at("document has no root element", 0)),
    }
}

/// One borrowed event from the pull stream.
///
/// `Start` carries the eagerly resolved, interned namespace and the
/// local name borrowed from the input; the start tag's attributes are
/// available via [`PullParser::attrs`] until the next event is pulled.
#[derive(Debug, Clone)]
pub enum Event<'a> {
    /// A start tag (including empty-element tags, which are followed
    /// by a matching [`Event::End`]).
    Start {
        ns: Option<Arc<str>>,
        local: &'a str,
    },
    /// A close tag (or the synthetic close of an empty-element tag).
    End,
    /// A run of character data (entities decoded) or one CDATA
    /// section. Adjacent runs are NOT merged at the event level; DOM
    /// materialization merges them.
    Text(Cow<'a, str>),
}

/// A resolved attribute of the most recent start tag.
#[derive(Debug, Clone)]
pub struct Attr<'a> {
    /// Interned namespace URI; `None` for unprefixed attributes (they
    /// do not inherit the default namespace).
    pub ns: Option<Arc<str>>,
    /// Local name, borrowed from the input buffer.
    pub local: &'a str,
    /// Attribute value, borrowed when it contained no references.
    pub value: Cow<'a, str>,
}

/// One open element: where its raw name lives in the input (for close
/// tag matching) and how many namespace bindings it pushed.
struct OpenTag {
    name_start: usize,
    name_end: usize,
    binds_before: usize,
}

/// A forward-only streaming parser over a borrowed input buffer.
///
/// Call [`next_event`](Self::next_event) until it returns `Ok(None)`
/// (clean end of document). After an [`Event::Start`], the tag's
/// attributes are in [`attrs`](Self::attrs) and
/// [`build_element`](Self::build_element) can materialize that whole
/// subtree as a DOM escape hatch; [`skip_element`](Self::skip_element)
/// discards it instead without building anything.
pub struct PullParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Flat stack of namespace bindings: prefix -> interned URI
    /// (`None` records `xmlns=""` un-declaring the default).
    bindings: Vec<(String, Option<Arc<str>>)>,
    frames: Vec<OpenTag>,
    /// Resolved attributes of the most recent start tag.
    attrs: Vec<Attr<'a>>,
    /// Scratch for the raw first pass over a start tag's attributes.
    raw_attrs: Vec<(&'a str, Cow<'a, str>, usize)>,
    /// Name of the most recent start tag, for `build_element`.
    last_start: Option<(Option<Arc<str>>, &'a str)>,
    /// Byte offset of the most recent start tag's `<`.
    last_tag_pos: usize,
    /// An empty-element tag was consumed; emit its `End` next.
    pending_end: bool,
    prolog_done: bool,
    seen_root: bool,
    finished: bool,
}

impl<'a> PullParser<'a> {
    /// A parser positioned at the start of `input` (prolog allowed).
    pub fn new(input: &'a str) -> Self {
        PullParser {
            bytes: input.as_bytes(),
            pos: 0,
            bindings: Vec::new(),
            frames: Vec::new(),
            attrs: Vec::new(),
            raw_attrs: Vec::new(),
            last_start: None,
            last_tag_pos: 0,
            pending_end: false,
            prolog_done: false,
            seen_root: false,
            finished: false,
        }
    }

    /// A parser over a document fragment with namespace bindings
    /// inherited from an enclosing scope (as captured by
    /// [`scope`](Self::scope)). Used to re-parse a deferred subtree —
    /// e.g. a SOAP body span — in its original namespace environment.
    pub fn with_scope(input: &'a str, scope: &[(String, Option<Arc<str>>)]) -> Self {
        let mut p = Self::new(input);
        p.bindings = scope.to_vec();
        p
    }

    /// Current byte offset of the cursor.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Byte offset of the `<` of the most recent start tag.
    pub fn last_start_pos(&self) -> usize {
        self.last_tag_pos
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The resolved attributes of the most recent start tag. Valid
    /// until the next event is pulled.
    pub fn attrs(&self) -> &[Attr<'a>] {
        &self.attrs
    }

    /// Snapshot of the namespace bindings currently in scope, for
    /// [`with_scope`](Self::with_scope).
    pub fn scope(&self) -> Vec<(String, Option<Arc<str>>)> {
        self.bindings.clone()
    }

    /// Pull the next event, or `Ok(None)` at clean end of document.
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>> {
        let ev = self.next_event_inner()?;
        if ev.is_some() {
            PARSE_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        Ok(ev)
    }

    fn next_event_inner(&mut self) -> Result<Option<Event<'a>>> {
        if self.pending_end {
            self.pending_end = false;
            self.pop_frame();
            return Ok(Some(Event::End));
        }
        if self.frames.is_empty() {
            if self.finished {
                return Ok(None);
            }
            if self.seen_root {
                // After the document element: misc, then clean EOF.
                self.skip_misc();
                if self.pos != self.bytes.len() {
                    return Err(XmlError::at(
                        "trailing content after document element",
                        self.pos,
                    ));
                }
                self.finished = true;
                return Ok(None);
            }
            if !self.prolog_done {
                self.skip_prolog()?;
                self.prolog_done = true;
            }
            return self.start_tag().map(Some);
        }
        // Inside element content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close_pos = self.pos;
                let (close_name, _) = self.parse_name()?;
                self.skip_ws();
                self.expect_byte(b'>')?;
                let open = self.frames.last().expect("content implies open tag");
                let open_name = &self.bytes[open.name_start..open.name_end];
                if close_name.as_bytes() != open_name {
                    let open_name = std::str::from_utf8(open_name).unwrap_or("?");
                    return Err(XmlError::at(
                        format!("mismatched close tag </{}> for <{}>", close_name, open_name),
                        close_pos,
                    ));
                }
                self.pop_frame();
                return Ok(Some(Event::End));
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                self.skip_until("]]>")?;
                let bytes = self.bytes;
                let text = std::str::from_utf8(&bytes[start..self.pos - 3])
                    .map_err(|_| XmlError::at("invalid utf-8 in CDATA", start))?;
                if text.is_empty() {
                    continue;
                }
                return Ok(Some(Event::Text(Cow::Borrowed(text))));
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                return self.start_tag().map(Some);
            } else if self.peek().is_some() {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let bytes = self.bytes;
                let raw = std::str::from_utf8(&bytes[start..self.pos])
                    .map_err(|_| XmlError::at("invalid utf-8 in text", start))?;
                return Ok(Some(Event::Text(unescape(raw, start)?)));
            } else {
                return Err(XmlError::at("eof inside element content", self.pos));
            }
        }
    }

    /// Materialize the element whose [`Event::Start`] was just pulled
    /// (attributes included), consuming events through its matching
    /// end. This is the DOM escape hatch; each call counts one DOM
    /// build in [`dom_build_count`].
    pub fn build_element(&mut self) -> Result<Element> {
        DOM_BUILDS.fetch_add(1, Ordering::Relaxed);
        self.build_current()
    }

    fn build_current(&mut self) -> Result<Element> {
        let (ns, local) = self
            .last_start
            .take()
            .ok_or_else(|| XmlError::new("build_element: no current start tag"))?;
        let name = match ns {
            Some(uri) => QName {
                ns: Some(uri),
                local: local.to_string(),
            },
            None => QName::local(local),
        };
        let mut element = Element::with_name(name);
        for a in self.attrs.drain(..) {
            let qn = match a.ns {
                Some(uri) => QName {
                    ns: Some(uri),
                    local: a.local.to_string(),
                },
                None => QName::local(a.local),
            };
            element.attrs.push((qn, a.value.into_owned()));
        }
        loop {
            match self.next_event()? {
                Some(Event::Start { .. }) => {
                    let child = self.build_current()?;
                    element.children.push(Node::Element(child));
                }
                Some(Event::Text(t)) => push_text(&mut element, t.into_owned()),
                Some(Event::End) => return Ok(element),
                None => {
                    return Err(XmlError::at("eof inside element content", self.pos));
                }
            }
        }
    }

    /// Skip the element whose [`Event::Start`] was just pulled,
    /// consuming events through its matching end without building
    /// anything.
    pub fn skip_element(&mut self) -> Result<()> {
        self.last_start = None;
        let mut depth = 1usize;
        while depth > 0 {
            match self.next_event()? {
                Some(Event::Start { .. }) => depth += 1,
                Some(Event::End) => depth -= 1,
                Some(Event::Text(_)) => {}
                None => {
                    return Err(XmlError::at("eof inside element content", self.pos));
                }
            }
        }
        Ok(())
    }

    /// Collect the text content of the element whose [`Event::Start`]
    /// was just pulled — concatenated character data of the element
    /// and its descendants — without materializing a DOM.
    pub fn collect_text(&mut self) -> Result<String> {
        self.last_start = None;
        let mut out = String::new();
        let mut depth = 1usize;
        while depth > 0 {
            match self.next_event()? {
                Some(Event::Start { .. }) => depth += 1,
                Some(Event::End) => depth -= 1,
                Some(Event::Text(t)) => out.push_str(&t),
                None => {
                    return Err(XmlError::at("eof inside element content", self.pos));
                }
            }
        }
        Ok(out)
    }

    // ---- tokenizer internals -------------------------------------

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn skip_until(&mut self, pat: &str) -> Result<()> {
        let hay = &self.bytes[self.pos..];
        match find_sub(hay, pat.as_bytes()) {
            Some(i) => {
                self.pos += i + pat.len();
                Ok(())
            }
            None => Err(XmlError::at(
                format!("unterminated construct, expected '{}'", pat),
                self.pos,
            )),
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_until("?>")?;
        }
        self.skip_misc();
        if self.starts_with("<!DOCTYPE") {
            return Err(XmlError::at("DTDs are not accepted", self.pos));
        }
        Ok(())
    }

    /// Skip comments, PIs and whitespace between top-level constructs.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<(&'a str, usize)> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::at("expected a name", self.pos));
        }
        let bytes = self.bytes;
        let name = std::str::from_utf8(&bytes[start..self.pos])
            .map_err(|_| XmlError::at("invalid utf-8 in name", start))?;
        Ok((name, start))
    }

    fn resolve(&self, prefix: &str, pos: usize) -> Result<Option<Arc<str>>> {
        if prefix == "xml" {
            return Ok(Some(intern_ns("http://www.w3.org/XML/1998/namespace")));
        }
        for (p, uri) in self.bindings.iter().rev() {
            if p == prefix {
                // `None` records xmlns="" un-declaring the namespace.
                return Ok(uri.clone());
            }
        }
        if prefix.is_empty() {
            Ok(None)
        } else {
            Err(XmlError::at(
                format!("undeclared namespace prefix '{}'", prefix),
                pos,
            ))
        }
    }

    fn split_prefixed(raw: &str) -> (&str, &str) {
        match raw.find(':') {
            Some(i) => (&raw[..i], &raw[i + 1..]),
            None => ("", raw),
        }
    }

    fn pop_frame(&mut self) {
        if let Some(open) = self.frames.pop() {
            self.bindings.truncate(open.binds_before);
        }
    }

    fn start_tag(&mut self) -> Result<Event<'a>> {
        if self.frames.len() >= MAX_DEPTH {
            return Err(XmlError::at(
                format!("element nesting exceeds {} levels", MAX_DEPTH),
                self.pos,
            ));
        }
        let tag_pos = self.pos;
        self.expect_byte(b'<')?;
        let (raw_name, name_start) = self.parse_name()?;
        let name_end = name_start + raw_name.len();
        let binds_before = self.bindings.len();

        // First pass over attributes: gather raw attrs and ns decls.
        self.raw_attrs.clear();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let apos = self.pos;
                    let (aname, _) = self.parse_name()?;
                    self.skip_ws();
                    self.expect_byte(b'=')?;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .ok_or_else(|| XmlError::at("eof in attribute", self.pos))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(XmlError::at("attribute value must be quoted", self.pos));
                    }
                    self.pos += 1;
                    let vstart = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        if b == b'<' {
                            return Err(XmlError::at("'<' in attribute value", self.pos));
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(XmlError::at("unterminated attribute value", vstart));
                    }
                    let bytes = self.bytes;
                    let raw_val = std::str::from_utf8(&bytes[vstart..self.pos])
                        .map_err(|_| XmlError::at("invalid utf-8", vstart))?;
                    let value = unescape(raw_val, vstart)?;
                    self.pos += 1; // closing quote
                    if aname == "xmlns" {
                        let uri = if value.is_empty() {
                            None
                        } else {
                            Some(intern_ns(&value))
                        };
                        self.bindings.push((String::new(), uri));
                    } else if let Some(pfx) = aname.strip_prefix("xmlns:") {
                        let uri = if value.is_empty() {
                            None
                        } else {
                            Some(intern_ns(&value))
                        };
                        self.bindings.push((pfx.to_string(), uri));
                    } else {
                        self.raw_attrs.push((aname, value, apos));
                    }
                }
                None => return Err(XmlError::at("eof inside start tag", self.pos)),
            }
        }

        // Resolve the element name and attribute names.
        let (prefix, local) = Self::split_prefixed(raw_name);
        let ns = self.resolve(prefix, tag_pos)?;
        self.attrs.clear();
        let raw_attrs = std::mem::take(&mut self.raw_attrs);
        for (raw, value, apos) in &raw_attrs {
            let (pfx, loc) = Self::split_prefixed(raw);
            // Per the namespaces spec, unprefixed attributes are in no
            // namespace (they do NOT inherit the default namespace).
            let ans = if pfx.is_empty() {
                None
            } else {
                self.resolve(pfx, *apos)?
            };
            self.attrs.push(Attr {
                ns: ans,
                local: loc,
                value: value.clone(),
            });
        }
        self.raw_attrs = raw_attrs;
        self.raw_attrs.clear();

        // Empty-element tag?
        if self.peek() == Some(b'/') {
            self.pos += 1;
            self.expect_byte(b'>')?;
            self.pending_end = true;
        } else {
            self.expect_byte(b'>')?;
        }
        self.frames.push(OpenTag {
            name_start,
            name_end,
            binds_before,
        });
        self.seen_root = true;
        self.last_tag_pos = tag_pos;
        self.last_start = Some((ns.clone(), local));
        Ok(Event::Start { ns, local })
    }
}

/// Append text, merging with a trailing text node (CDATA adjacency).
fn push_text(element: &mut Element, text: String) {
    if text.is_empty() {
        return;
    }
    if let Some(Node::Text(prev)) = element.children.last_mut() {
        prev.push_str(&text);
    } else {
        element.children.push(Node::Text(text));
    }
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Decode the predefined entities and numeric character references,
/// borrowing the input when it contains none.
fn unescape(raw: &str, offset: usize) -> Result<Cow<'_, str>> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| XmlError::at("unterminated entity reference", offset))?;
        let entity = &rest[1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| XmlError::at("bad hex character reference", offset))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| XmlError::at("invalid character reference", offset))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| XmlError::at("bad character reference", offset))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| XmlError::at("invalid character reference", offset))?,
                );
            }
            other => {
                return Err(XmlError::at(
                    format!("unknown entity '&{};'", other),
                    offset,
                ));
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let e = parse("<?xml version=\"1.0\"?><a x=\"1\"><b>hi</b></a>").unwrap();
        assert_eq!(e.name.local, "a");
        assert_eq!(e.attr_value("x"), Some("1"));
        assert_eq!(e.find_local("b").unwrap().text_content(), "hi");
    }

    #[test]
    fn resolves_default_and_prefixed_namespaces() {
        let e = parse("<a xmlns=\"urn:d\" xmlns:p=\"urn:p\"><p:b/><c/></a>").unwrap();
        assert!(e.name.is("urn:d", "a"));
        assert!(e.elements().next().unwrap().name.is("urn:p", "b"));
        assert!(e.elements().nth(1).unwrap().name.is("urn:d", "c"));
    }

    #[test]
    fn unprefixed_attributes_have_no_namespace() {
        let e = parse("<a xmlns=\"urn:d\" k=\"v\"/>").unwrap();
        assert_eq!(e.attrs[0].0, QName::local("k"));
    }

    #[test]
    fn namespace_scoping_and_shadowing() {
        let e = parse("<a xmlns:p=\"urn:1\"><b xmlns:p=\"urn:2\"><p:x/></b><p:y/></a>").unwrap();
        let b = e.elements().next().unwrap();
        assert!(b.elements().next().unwrap().name.is("urn:2", "x"));
        assert!(e.elements().nth(1).unwrap().name.is("urn:1", "y"));
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        assert!(parse("<p:a/>").is_err());
    }

    #[test]
    fn entities_and_char_refs() {
        let e = parse("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>").unwrap();
        assert_eq!(e.text_content(), "<>&\"'AB");
    }

    #[test]
    fn cdata_is_literal_text() {
        let e = parse("<a><![CDATA[1 < 2 & x]]></a>").unwrap();
        assert_eq!(e.text_content(), "1 < 2 & x");
    }

    #[test]
    fn adjacent_text_and_cdata_merge() {
        let e = parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(e.children.len(), 1);
        assert_eq!(e.text_content(), "xyz");
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let e = parse("<!-- c --><a><!-- c2 --><?pi data?><b/></a><!-- tail -->").unwrap();
        assert_eq!(e.element_count(), 1);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn doctype_rejected() {
        assert!(parse("<!DOCTYPE a []><a/>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn single_quoted_attributes() {
        let e = parse("<a k='v\"w'/>").unwrap();
        assert_eq!(e.attr_value("k"), Some("v\"w"));
    }

    #[test]
    fn xmlns_empty_undeclares_default() {
        let e = parse("<a xmlns=\"urn:d\"><b xmlns=\"\"/></a>").unwrap();
        assert!(e.elements().next().unwrap().name.ns.is_none());
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "<a>".repeat(MAX_DEPTH + 1) + &"</a>".repeat(MAX_DEPTH + 1);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Depth just under the limit is fine.
        let ok = "<a>".repeat(MAX_DEPTH - 1) + &"</a>".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn roundtrip_through_writer() {
        let src = crate::Element::new("urn:x", "root")
            .attr("a", "1 < 2")
            .child(crate::Element::new("urn:y", "kid").text("t&t"))
            .child(crate::Element::new("urn:x", "kid2"));
        let parsed = parse(&src.to_xml()).unwrap();
        assert_eq!(parsed, src);
    }

    // ---- pull surface ---------------------------------------------

    #[test]
    fn pull_event_sequence() {
        let mut p = PullParser::new("<a xmlns=\"urn:d\" k=\"v\"><b>hi</b><c/></a>");
        match p.next_event().unwrap().unwrap() {
            Event::Start { ns, local } => {
                assert_eq!(ns.as_deref(), Some("urn:d"));
                assert_eq!(local, "a");
                assert_eq!(p.attrs().len(), 1);
                assert_eq!(p.attrs()[0].local, "k");
                assert_eq!(p.attrs()[0].value, "v");
                assert!(p.attrs()[0].ns.is_none());
            }
            other => panic!("expected start, got {:?}", other),
        }
        assert!(matches!(
            p.next_event().unwrap().unwrap(),
            Event::Start { local: "b", .. }
        ));
        match p.next_event().unwrap().unwrap() {
            Event::Text(t) => {
                assert_eq!(t, "hi");
                assert!(matches!(t, Cow::Borrowed(_)));
            }
            other => panic!("expected text, got {:?}", other),
        }
        assert!(matches!(p.next_event().unwrap().unwrap(), Event::End));
        assert!(matches!(
            p.next_event().unwrap().unwrap(),
            Event::Start { local: "c", .. }
        ));
        assert!(matches!(p.next_event().unwrap().unwrap(), Event::End));
        assert!(matches!(p.next_event().unwrap().unwrap(), Event::End));
        assert!(p.next_event().unwrap().is_none());
        // Idempotent at EOF.
        assert!(p.next_event().unwrap().is_none());
    }

    #[test]
    fn pull_interns_namespace_uris() {
        let mut p = PullParser::new("<a xmlns=\"urn:intern-me\"><b/></a>");
        let ns_a = match p.next_event().unwrap().unwrap() {
            Event::Start { ns, .. } => ns.unwrap(),
            _ => unreachable!(),
        };
        let ns_b = match p.next_event().unwrap().unwrap() {
            Event::Start { ns, .. } => ns.unwrap(),
            _ => unreachable!(),
        };
        assert!(Arc::ptr_eq(&ns_a, &ns_b));
    }

    #[test]
    fn build_element_mid_stream_matches_dom() {
        let doc = "<root><skip>x</skip><want a=\"1\"><kid>t&amp;t</kid></want><tail/></root>";
        let dom = parse(doc).unwrap();
        let mut p = PullParser::new(doc);
        p.next_event().unwrap(); // <root>
        p.next_event().unwrap(); // <skip>
        p.skip_element().unwrap();
        p.next_event().unwrap(); // <want>
        let want = p.build_element().unwrap();
        assert_eq!(&want, dom.find_local("want").unwrap());
        // Stream continues normally after the materialized subtree.
        assert!(matches!(
            p.next_event().unwrap().unwrap(),
            Event::Start { local: "tail", .. }
        ));
    }

    #[test]
    fn collect_text_spans_descendants() {
        let mut p = PullParser::new("<a>x<b>y</b>z</a>");
        p.next_event().unwrap();
        assert_eq!(p.collect_text().unwrap(), "xyz");
        assert!(p.next_event().unwrap().is_none());
    }

    #[test]
    fn with_scope_resolves_inherited_prefixes() {
        // Capture the scope at <Body> and re-parse a child span.
        let doc = "<e xmlns:p=\"urn:p\"><body><p:x k=\"v\"/></body></e>";
        let mut p = PullParser::new(doc);
        p.next_event().unwrap(); // <e>
        p.next_event().unwrap(); // <body>
        let scope = p.scope();
        p.next_event().unwrap(); // <p:x>
        let start = p.last_start_pos();
        p.skip_element().unwrap();
        let span = &doc[start..p.pos()];
        assert_eq!(span, "<p:x k=\"v\"/>");
        let mut sub = PullParser::with_scope(span, &scope);
        sub.next_event().unwrap();
        let el = sub.build_element().unwrap();
        assert!(el.name.is("urn:p", "x"));
        assert_eq!(el.attr_value("k"), Some("v"));
    }

    #[test]
    fn counters_advance() {
        let ev0 = parse_event_count();
        let dom0 = dom_build_count();
        parse("<a><b/>text</a>").unwrap();
        // start a, start b, end b, text, end a = 5 events, 1 build.
        assert_eq!(parse_event_count() - ev0, 5);
        assert_eq!(dom_build_count() - dom0, 1);
        let ev1 = parse_event_count();
        let dom1 = dom_build_count();
        let mut p = PullParser::new("<a><b/>text</a>");
        while p.next_event().unwrap().is_some() {}
        assert_eq!(parse_event_count() - ev1, 5);
        assert_eq!(dom_build_count() - dom1, 0);
    }

    #[test]
    fn truncated_content_is_an_error_not_a_hang() {
        let mut p = PullParser::new("<a><b>unfinished");
        p.next_event().unwrap();
        p.next_event().unwrap();
        p.next_event().unwrap(); // text
        let err = p.next_event().unwrap_err();
        assert!(err.message.contains("eof inside element content"), "{err}");
    }
}
