//! A minimal real SOAP-over-HTTP transport (HTTP/1.1 POST, one request
//! per connection) — the analogue of the paper's IIS/ASP.NET front end,
//! used to exercise true wire encoding/decoding costs in experiment E5
//! and the cross-process tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use simclock::Clock;
use wsrf_obs::MetricsRegistry;
use wsrf_soap::Envelope;

use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::obs::LinkObs;

/// Anti-slowloris limits applied to every accepted connection. A
/// client that trickles headers forever, or sends an unbounded header
/// block, used to pin its connection thread indefinitely; these bounds
/// turn both into prompt SOAP faults (408 / 431).
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Socket read timeout; an idle read past this answers 408.
    pub read_timeout: std::time::Duration,
    /// Cap on the request line + header block, in bytes (431 beyond).
    pub max_header_bytes: usize,
    /// Cap on the number of header lines (431 beyond).
    pub max_header_lines: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            read_timeout: std::time::Duration::from_secs(10),
            max_header_bytes: 16 << 10,
            max_header_lines: 100,
        }
    }
}

/// Monitoring context for the exposition endpoints: the registry to
/// scrape and the clock health views are evaluated against. A server
/// constructed without one ([`HttpSoapServer::start`] et al.) keeps the
/// historical POST-only behaviour — GETs answer 405 and the SOAP path
/// pays nothing for the feature.
struct Exposition {
    registry: Arc<MetricsRegistry>,
    clock: Clock,
    scrapes: wsrf_obs::Counter,
}

/// A listening HTTP SOAP endpoint.
pub struct HttpSoapServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpSoapServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving
    /// `endpoint`.
    pub fn start(endpoint: Arc<dyn Endpoint>) -> std::io::Result<Self> {
        Self::start_with_metrics(endpoint, &MetricsRegistry::disabled())
    }

    /// Like [`HttpSoapServer::start`], recording served traffic into a
    /// metrics registry (`transport.http.*`).
    pub fn start_with_metrics(
        endpoint: Arc<dyn Endpoint>,
        registry: &MetricsRegistry,
    ) -> std::io::Result<Self> {
        Self::start_inner(endpoint, registry, None, HttpLimits::default(), None)
    }

    /// Like [`HttpSoapServer::start`], with explicit anti-slowloris
    /// [`HttpLimits`].
    pub fn start_with_limits(
        endpoint: Arc<dyn Endpoint>,
        limits: HttpLimits,
    ) -> std::io::Result<Self> {
        Self::start_inner(endpoint, &MetricsRegistry::disabled(), None, limits, None)
    }

    /// Like [`HttpSoapServer::start_with_metrics`], additionally opening
    /// a transport hop span per served request that carries a trace
    /// header (timestamps read from `clock`).
    pub fn start_traced(
        endpoint: Arc<dyn Endpoint>,
        registry: &MetricsRegistry,
        clock: Clock,
    ) -> std::io::Result<Self> {
        Self::start_inner(endpoint, registry, Some(clock), HttpLimits::default(), None)
    }

    /// Like [`HttpSoapServer::start_traced`], additionally serving the
    /// monitoring-plane GET endpoints from `registry`:
    ///
    /// * `/metrics` — Prometheus text exposition,
    /// * `/metrics.json` — the flat JSON the bench gate parses,
    /// * `/healthz` — SLO health summary (503 when any burn rate > 1),
    /// * `/traces/<hex-id>.json` — one trace in Chrome trace format.
    ///
    /// Scrapes render through the sink pattern into the connection's
    /// reused wire buffer — no per-metric strings.
    pub fn start_monitored(
        endpoint: Arc<dyn Endpoint>,
        registry: &Arc<MetricsRegistry>,
        clock: Clock,
        limits: HttpLimits,
    ) -> std::io::Result<Self> {
        let expose = Exposition {
            registry: registry.clone(),
            clock: clock.clone(),
            scrapes: registry.counter("expose.scrapes"),
        };
        Self::start_inner(
            endpoint,
            registry,
            Some(clock),
            limits,
            Some(Arc::new(expose)),
        )
    }

    fn start_inner(
        endpoint: Arc<dyn Endpoint>,
        registry: &MetricsRegistry,
        clock: Option<Clock>,
        limits: HttpLimits,
        expose: Option<Arc<Exposition>>,
    ) -> std::io::Result<Self> {
        let obs = Arc::new(LinkObs::new(registry, "http"));
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = shutdown.clone();
        let accept_thread = std::thread::Builder::new()
            .name("http-soap-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if sd.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    stream.set_nodelay(true).ok();
                    // An idle or trickling client hits this timeout
                    // instead of pinning its thread forever.
                    stream.set_read_timeout(Some(limits.read_timeout)).ok();
                    let ep = endpoint.clone();
                    let obs = obs.clone();
                    let clock = clock.clone();
                    let expose = expose.clone();
                    // Thread per connection; connections are short-lived
                    // (Connection: close), matching 2004-era SOAP stacks.
                    let _ = std::thread::Builder::new()
                        .name("http-soap-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(
                                stream,
                                ep,
                                &obs,
                                clock.as_ref(),
                                &limits,
                                expose.as_deref(),
                            );
                        });
                }
            })?;
        Ok(HttpSoapServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address, e.g. `127.0.0.1:49152`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `http://host:port` authority string for building EPRs.
    pub fn authority(&self) -> String {
        self.addr.to_string()
    }
}

impl Drop for HttpSoapServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Outcome of scanning an HTTP header block for `Content-Length`.
enum ContentLength {
    /// No Content-Length header present.
    Missing,
    /// A Content-Length header whose value is not a number.
    Invalid(String),
    /// A well-formed length.
    Len(usize),
    /// The header block blew past [`HttpLimits`] (bytes or line count).
    TooLarge(&'static str),
}

/// Consume header lines up to the blank separator, extracting the
/// `Content-Length`. Server and client both parse through here, so the
/// two sides can never again drift on how a missing or garbage length
/// is treated (historically one side ignored it and the other silently
/// read a zero-byte body). The header block is bounded by `limits`: a
/// peer streaming endless (or endlessly long) header lines gets
/// [`ContentLength::TooLarge`] instead of an unbounded read loop.
fn read_content_length(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
) -> std::io::Result<ContentLength> {
    let mut limited = reader.take(limits.max_header_bytes as u64);
    let mut found = ContentLength::Missing;
    let mut lines = 0usize;
    loop {
        let mut h = String::new();
        let n = limited.read_line(&mut h)?;
        if n == 0 {
            if limited.limit() == 0 {
                return Ok(ContentLength::TooLarge("header block exceeds byte cap"));
            }
            // Genuine EOF before the blank separator: treat as end of
            // headers (legacy behaviour).
            break;
        }
        if !h.ends_with('\n') && limited.limit() == 0 {
            return Ok(ContentLength::TooLarge("header line exceeds byte cap"));
        }
        lines += 1;
        if lines > limits.max_header_lines {
            return Ok(ContentLength::TooLarge("too many header lines"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let value = value.trim();
                found = match value.parse() {
                    Ok(n) => ContentLength::Len(n),
                    Err(_) => ContentLength::Invalid(value.to_string()),
                };
            }
        }
    }
    Ok(found)
}

/// True when an IO error is the socket read timeout firing.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Render a SOAP client fault into `wire` and send it with the given
/// HTTP status.
fn write_fault_response(
    writer: &mut TcpStream,
    wire: &mut Vec<u8>,
    code: u16,
    reason: &str,
    detail: String,
) -> std::io::Result<()> {
    wire.clear();
    wsrf_soap::SoapFault::client(detail)
        .to_envelope()
        .write_into(wire);
    write_response(writer, code, reason, wire)
}

fn serve_connection(
    stream: TcpStream,
    endpoint: Arc<dyn Endpoint>,
    obs: &LinkObs,
    clock: Option<&Clock>,
    limits: &HttpLimits,
    expose: Option<&Exposition>,
) -> std::io::Result<()> {
    let started = std::time::Instant::now();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // Per-connection buffers: every response body (fault or not) is
    // rendered exactly once into `wire`, and the request body lands in
    // `body` — the endpoint only ever sees a borrowed slice of it
    // (via [`Endpoint::handle_wire`]), never an owned copy.
    let mut wire: Vec<u8> = Vec::with_capacity(512);
    let mut body: Vec<u8> = Vec::new();

    // Request line, bounded like the headers: a peer streaming one
    // endless line is cut off at the byte cap.
    let mut line = String::new();
    {
        let mut limited = (&mut reader).take(limits.max_header_bytes as u64);
        match limited.read_line(&mut line) {
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                return write_fault_response(
                    &mut writer,
                    &mut wire,
                    408,
                    "Request Timeout",
                    "timed out reading request line".into(),
                );
            }
            Err(e) => return Err(e),
        }
        if !line.ends_with('\n') && limited.limit() == 0 {
            return write_fault_response(
                &mut writer,
                &mut wire,
                431,
                "Request Header Fields Too Large",
                "request line exceeds byte cap".into(),
            );
        }
    }
    if let (Some(exp), true) = (expose, line.starts_with("GET ")) {
        // Exposition GET: drain the (bounded) header block — scrapers
        // send no body — then route on the path.
        match read_content_length(&mut reader, limits) {
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                return write_fault_response(
                    &mut writer,
                    &mut wire,
                    408,
                    "Request Timeout",
                    "timed out reading request headers".into(),
                );
            }
            Err(e) => return Err(e),
        }
        let path = line.split_whitespace().nth(1).unwrap_or("/");
        return serve_exposition(&mut writer, &mut wire, exp, path);
    }
    if !line.starts_with("POST ") {
        write_response(&mut writer, 405, "Method Not Allowed", b"")?;
        return Ok(());
    }

    // Headers. A request we cannot size is answered with a SOAP client
    // fault rather than a body-less status, so SOAP callers always get
    // a parseable envelope; a client trickling headers slower than the
    // read timeout gets 408 instead of pinning this thread.
    let scanned = match read_content_length(&mut reader, limits) {
        Ok(s) => s,
        Err(e) if is_timeout(&e) => {
            return write_fault_response(
                &mut writer,
                &mut wire,
                408,
                "Request Timeout",
                "timed out reading request headers".into(),
            );
        }
        Err(e) => return Err(e),
    };
    let len = match scanned {
        ContentLength::Len(n) => n,
        ContentLength::Missing => {
            return write_fault_response(
                &mut writer,
                &mut wire,
                411,
                "Length Required",
                "request has no Content-Length header".into(),
            );
        }
        ContentLength::Invalid(v) => {
            return write_fault_response(
                &mut writer,
                &mut wire,
                400,
                "Bad Request",
                format!("unparseable Content-Length {v:?}"),
            );
        }
        ContentLength::TooLarge(why) => {
            return write_fault_response(
                &mut writer,
                &mut wire,
                431,
                "Request Header Fields Too Large",
                why.into(),
            );
        }
    };
    if len > 64 << 20 {
        write_response(&mut writer, 413, "Payload Too Large", b"")?;
        return Ok(());
    }
    body.resize(len, 0);
    match reader.read_exact(&mut body) {
        Ok(()) => {}
        Err(e) if is_timeout(&e) => {
            return write_fault_response(
                &mut writer,
                &mut wire,
                408,
                "Request Timeout",
                "timed out reading request body".into(),
            );
        }
        Err(e) => return Err(e),
    }

    let Ok(text) = std::str::from_utf8(&body) else {
        write_response(&mut writer, 400, "Bad Request", b"body is not utf-8")?;
        return Ok(());
    };
    // Tracing needs to re-stamp the trace header before dispatch, which
    // forces an eager parse; everyone else hands the endpoint the
    // borrowed wire text, so a lazily-routing container reads headers
    // straight out of the receive buffer and may never build a body DOM.
    // Hop span under the request's trace header, if any; the guard
    // covers the dispatch and the response write.
    let mut _hop = None;
    let resp = if clock.is_some() && obs.tracer.is_enabled() {
        match Envelope::parse(text) {
            Err(e) => {
                return write_fault_response(
                    &mut writer,
                    &mut wire,
                    500,
                    "Internal Server Error",
                    format!("unparseable envelope: {e}"),
                );
            }
            Ok(mut env) => {
                _hop = clock.and_then(|c| obs.hop_span(&mut env, "transport.serve", c));
                endpoint.handle(env)
            }
        }
    } else {
        endpoint.handle_wire(text)
    };
    match resp {
        Some(resp) => {
            let t0 = std::time::Instant::now();
            wire.clear();
            resp.write_into(&mut wire);
            obs.record_serialize(wire.len() as u64, t0);
            obs.record_call(len as u64, wire.len() as u64, started);
            // SOAP 1.1 over HTTP: faults ride status 500.
            let (code, reason) = if resp.is_fault() {
                (500, "Internal Server Error")
            } else {
                (200, "OK")
            };
            write_response(&mut writer, code, reason, &wire)?;
        }
        None => {
            obs.record_oneway(len as u64, started);
            write_response(&mut writer, 202, "Accepted", b"")?;
        }
    }
    Ok(())
}

fn write_response(w: &mut TcpStream, code: u16, reason: &str, body: &[u8]) -> std::io::Result<()> {
    write_response_typed(w, code, reason, "text/xml; charset=utf-8", body)
}

fn write_response_typed(
    w: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

const CT_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
const CT_JSON: &str = "application/json; charset=utf-8";

/// Serve one monitoring-plane GET. Bodies render sink-style into the
/// connection's reused `wire` buffer: the metric values stream through
/// stack formatters, so a scrape allocates no per-metric strings.
fn serve_exposition(
    writer: &mut TcpStream,
    wire: &mut Vec<u8>,
    expose: &Exposition,
    path: &str,
) -> std::io::Result<()> {
    expose.scrapes.inc();
    wire.clear();
    match path {
        "/metrics" => {
            expose.registry.write_prometheus_into(wire);
            write_response_typed(writer, 200, "OK", CT_PROM, wire)
        }
        "/metrics.json" => {
            expose.registry.write_json_into(wire);
            write_response_typed(writer, 200, "OK", CT_JSON, wire)
        }
        "/healthz" => {
            let now_ns = expose.clock.now().as_nanos();
            let health = expose.registry.slo().health_all(now_ns);
            let degraded = health.iter().any(|h| !h.is_healthy());
            use wsrf_obs::MetricSink;
            wire.put("{\"status\": \"");
            wire.put(if degraded { "degraded" } else { "ok" });
            wire.put("\", \"virt_ns\": ");
            wire.put_u64(now_ns);
            wire.put(", \"services\": [");
            for (i, h) in health.iter().enumerate() {
                if i > 0 {
                    wire.put(", ");
                }
                // Rates are the one place floats are unavoidable; the
                // health view is tiny and off the scrape hot path.
                wire.put(&format!(
                    "{{\"service\": \"{}\", \"total\": {}, \"success_rate\": {:.6}, \
                     \"p99_ns\": {}, \"burn_rate\": {:.3}, \"healthy\": {}}}",
                    h.service,
                    h.total,
                    h.success_rate,
                    h.p99_ns,
                    h.burn_rate,
                    h.is_healthy()
                ));
            }
            wire.put("]}");
            let (code, reason) = if degraded {
                (503, "Service Unavailable")
            } else {
                (200, "OK")
            };
            write_response_typed(writer, code, reason, CT_JSON, wire)
        }
        _ => {
            if let Some(id) = path
                .strip_prefix("/traces/")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|id| u64::from_str_radix(id, 16).ok())
            {
                let trace = expose.registry.tracer().trace(id);
                if trace.is_empty() {
                    return write_response_typed(
                        writer,
                        404,
                        "Not Found",
                        CT_JSON,
                        b"{\"error\": \"no such trace\"}",
                    );
                }
                trace.write_chrome_into(wire);
                return write_response_typed(writer, 200, "OK", CT_JSON, wire);
            }
            write_response_typed(
                writer,
                404,
                "Not Found",
                CT_JSON,
                b"{\"error\": \"unknown path\"}",
            )
        }
    }
}

/// POST an envelope to `authority` (`host:port`) at `path`; returns the
/// response envelope (which may be a fault envelope), or `None` for a
/// 202 one-way acknowledgement.
pub fn http_post(
    authority: &str,
    path: &str,
    env: &Envelope,
) -> Result<Option<Envelope>, TransportError> {
    let stream = TcpStream::connect(authority)
        .map_err(|e| TransportError::Io(format!("connect {authority}: {e}")))?;
    stream.set_nodelay(true).ok();
    // One render per request, straight into the wire buffer.
    let mut body: Vec<u8> = Vec::with_capacity(512);
    env.write_into(&mut body);
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "POST /{} HTTP/1.1\r\nHost: {authority}\r\nContent-Type: text/xml; charset=utf-8\r\nSOAPAction: \"\"\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        path.trim_start_matches('/'),
        body.len()
    )?;
    writer.write_all(&body)?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| TransportError::Protocol(format!("bad status line {status_line:?}")))?;
    let content_length = read_content_length(&mut reader, &HttpLimits::default())?;
    if code == 202 {
        return Ok(None);
    }
    // A sized response is required past this point; treating a missing
    // or garbage length as zero would silently truncate the body.
    let len = match content_length {
        ContentLength::Len(n) => n,
        ContentLength::Missing => {
            return Err(TransportError::Protocol(
                "response missing Content-Length".into(),
            ));
        }
        ContentLength::Invalid(v) => {
            return Err(TransportError::Protocol(format!(
                "unparseable response Content-Length {v:?}"
            )));
        }
        ContentLength::TooLarge(why) => {
            return Err(TransportError::Protocol(format!(
                "response header block too large: {why}"
            )));
        }
    };
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    if !(code == 200 || code == 500) {
        return Err(TransportError::Protocol(format!("http status {code}")));
    }
    let text = std::str::from_utf8(&body)
        .map_err(|_| TransportError::Protocol("response not utf-8".into()))?;
    Envelope::parse(text)
        .map(Some)
        .map_err(|e| TransportError::Protocol(format!("bad response envelope: {e}")))
}

/// Request/response call over HTTP; `None` responses become errors.
pub fn http_call(authority: &str, path: &str, env: &Envelope) -> Result<Envelope, TransportError> {
    http_post(authority, path, env)?
        .ok_or_else(|| TransportError::NoResponse(format!("http://{authority}/{path}")))
}

/// Plain HTTP GET against `authority` (`host:port`): status code and
/// body. What a scraper (or the grid monitor pulling `/metrics.json`)
/// runs against [`HttpSoapServer::start_monitored`].
pub fn http_get(authority: &str, path: &str) -> Result<(u16, String), TransportError> {
    let stream = TcpStream::connect(authority)
        .map_err(|e| TransportError::Io(format!("connect {authority}: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "GET /{} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\r\n",
        path.trim_start_matches('/')
    )?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| TransportError::Protocol(format!("bad status line {status_line:?}")))?;
    let len = match read_content_length(&mut reader, &HttpLimits::default())? {
        ContentLength::Len(n) => n,
        _ => {
            return Err(TransportError::Protocol(
                "GET response missing Content-Length".into(),
            ));
        }
    };
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| TransportError::Protocol("GET response not utf-8".into()))?;
    Ok((code, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::FnEndpoint;
    use wsrf_xml::Element;

    #[test]
    fn end_to_end_call_over_real_sockets() {
        let server = HttpSoapServer::start(Arc::new(FnEndpoint::new("echo", |env| {
            let mut e = env;
            e.body = Element::local("Pong").child(e.body);
            Some(e)
        })))
        .unwrap();
        let req = Envelope::new(Element::local("Ping").text("payload"));
        let resp = http_call(&server.authority(), "svc", &req).unwrap();
        assert_eq!(resp.body.name.local, "Pong");
        assert_eq!(resp.body.text_content(), "payload");
    }

    #[test]
    fn fault_travels_as_http_500() {
        let server = HttpSoapServer::start(Arc::new(FnEndpoint::new("faulty", |_| {
            Some(wsrf_soap::SoapFault::server("boom").to_envelope())
        })))
        .unwrap();
        let resp = http_call(
            &server.authority(),
            "svc",
            &Envelope::new(Element::local("X")),
        )
        .unwrap();
        assert!(resp.is_fault());
        assert_eq!(resp.fault().unwrap().reason, "boom");
    }

    #[test]
    fn oneway_gets_202() {
        let server = HttpSoapServer::start(Arc::new(FnEndpoint::new("sink", |_| None))).unwrap();
        let out = http_post(
            &server.authority(),
            "svc",
            &Envelope::new(Element::local("X")),
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn connect_to_dead_port_is_io_error() {
        // Bind-then-drop to find a (very likely) dead port.
        let dead = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = http_call(&dead, "svc", &Envelope::new(Element::local("X"))).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)));
    }

    /// Read one raw HTTP response (status code + body) off a stream.
    fn raw_response(stream: TcpStream) -> (u16, String) {
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let code: u16 = status.split_whitespace().nth(1).unwrap().parse().unwrap();
        let len = match read_content_length(&mut reader, &HttpLimits::default()).unwrap() {
            ContentLength::Len(n) => n,
            _ => 0,
        };
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
        (code, String::from_utf8(body).unwrap())
    }

    #[test]
    fn idle_slowloris_client_gets_408_soap_fault() {
        let server = HttpSoapServer::start_with_limits(
            Arc::new(FnEndpoint::new("echo", Some)),
            HttpLimits {
                read_timeout: std::time::Duration::from_millis(100),
                ..HttpLimits::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Open the request but never finish the header block.
        stream
            .write_all(b"POST /svc HTTP/1.1\r\nHost: x\r\n")
            .unwrap();
        stream.flush().unwrap();
        let (code, body) = raw_response(stream);
        assert_eq!(code, 408);
        let env = Envelope::parse(&body).unwrap();
        assert!(env.is_fault(), "408 carries a SOAP fault body");
        assert!(env.fault().unwrap().reason.contains("timed out"));
    }

    #[test]
    fn header_flood_gets_431_soap_fault() {
        let server = HttpSoapServer::start_with_limits(
            Arc::new(FnEndpoint::new("echo", Some)),
            HttpLimits {
                max_header_lines: 8,
                ..HttpLimits::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /svc HTTP/1.1\r\n").unwrap();
        for i in 0..50 {
            stream
                .write_all(format!("X-Flood-{i}: y\r\n").as_bytes())
                .unwrap();
        }
        stream.write_all(b"\r\n").unwrap();
        stream.flush().unwrap();
        let (code, body) = raw_response(stream);
        assert_eq!(code, 431);
        assert!(Envelope::parse(&body).unwrap().is_fault());
    }

    #[test]
    fn oversized_header_block_gets_431() {
        let server = HttpSoapServer::start_with_limits(
            Arc::new(FnEndpoint::new("echo", Some)),
            HttpLimits {
                max_header_bytes: 256,
                ..HttpLimits::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /svc HTTP/1.1\r\n").unwrap();
        // One huge header line, no newline in sight.
        stream.write_all(&vec![b'a'; 4096]).unwrap();
        stream.flush().unwrap();
        let (code, body) = raw_response(stream);
        assert_eq!(code, 431);
        assert!(Envelope::parse(&body).unwrap().is_fault());
    }

    #[test]
    fn limits_leave_normal_calls_untouched() {
        let server = HttpSoapServer::start_with_limits(
            Arc::new(FnEndpoint::new("echo", Some)),
            HttpLimits::default(),
        )
        .unwrap();
        let req = Envelope::new(Element::local("Ping").text("p"));
        let resp = http_call(&server.authority(), "svc", &req).unwrap();
        assert_eq!(resp, req);
    }

    fn monitored_server() -> (HttpSoapServer, Arc<MetricsRegistry>, Clock) {
        let reg = wsrf_obs::MetricsRegistry::with_tracing(
            wsrf_obs::ObsConfig::enabled(),
            wsrf_obs::TraceConfig::enabled(),
        );
        let clock = Clock::manual();
        let server = HttpSoapServer::start_monitored(
            Arc::new(FnEndpoint::new("echo", Some)),
            &reg,
            clock.clone(),
            HttpLimits::default(),
        )
        .unwrap();
        (server, reg, clock)
    }

    #[test]
    fn exposition_endpoints_round_trip() {
        let (server, reg, clock) = monitored_server();
        reg.counter("jobs.completed").add(7);
        reg.histogram("op.lat_ns").record(500);
        reg.slo()
            .service("es")
            .record(true, 500, clock.now().as_nanos());

        let (code, text) = http_get(&server.authority(), "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(text.contains("jobs_completed 7"), "{text}");
        assert!(text.contains("op_lat_ns_count 1"));

        let (code, json) = http_get(&server.authority(), "/metrics.json").unwrap();
        assert_eq!(code, 200);
        assert!(json.contains("\"jobs.completed\": {\"type\": \"counter\", \"value\": 7}"));

        let (code, hz) = http_get(&server.authority(), "/healthz").unwrap();
        assert_eq!(code, 200);
        assert!(hz.contains("\"status\": \"ok\""), "{hz}");
        assert!(hz.contains("\"service\": \"es\""));

        let (code, _) = http_get(&server.authority(), "/nope").unwrap();
        assert_eq!(code, 404);
        // Scrapes were counted (4 GETs), and POST still works.
        assert!(reg.snapshot().counter("expose.scrapes") >= Some(4));
        let req = Envelope::new(Element::local("Ping").text("p"));
        let resp = http_call(&server.authority(), "svc", &req).unwrap();
        assert_eq!(resp.body.text_content(), "p");
    }

    #[test]
    fn healthz_degrades_on_slo_burn() {
        let (server, reg, clock) = monitored_server();
        let now = clock.now().as_nanos();
        let slo = reg.slo().service("es");
        for _ in 0..10 {
            slo.record(false, 1_000, now); // 100% errors → burn ≫ 1
        }
        let (code, hz) = http_get(&server.authority(), "/healthz").unwrap();
        assert_eq!(code, 503);
        assert!(hz.contains("\"status\": \"degraded\""), "{hz}");
        assert!(hz.contains("\"healthy\": false"));
    }

    #[test]
    fn trace_export_serves_chrome_format() {
        let (server, reg, clock) = monitored_server();
        let root = reg.tracer().start_root("submit", "Client", &clock);
        let trace_id = root.context().trace_id;
        drop(root);
        let (code, json) =
            http_get(&server.authority(), &format!("/traces/{trace_id:x}.json")).unwrap();
        assert_eq!(code, 200);
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"name\": \"submit\""));
        let (code, _) = http_get(&server.authority(), "/traces/deadbeef.json").unwrap();
        assert_eq!(code, 404, "unknown trace id");
    }

    #[test]
    fn unmonitored_server_still_rejects_gets() {
        let server = HttpSoapServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
        let err = http_get(&server.authority(), "/metrics");
        // 405 responses carry no Content-Length body contract for GET
        // clients; reaching the endpoint at all is the regression.
        match err {
            Ok((code, _)) => assert_eq!(code, 405),
            Err(TransportError::Protocol(_)) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn concurrent_clients() {
        let server = HttpSoapServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
        let auth = server.authority();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let auth = auth.clone();
                std::thread::spawn(move || {
                    let req = Envelope::new(Element::local("Ping").attr("i", i.to_string()));
                    let resp = http_call(&auth, "svc", &req).unwrap();
                    assert_eq!(resp, req);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
