//! Per-transport observability handles.
//!
//! Each transport owns a [`LinkObs`] created against a deployment's
//! [`MetricsRegistry`]; with the default disabled registry every handle
//! is a no-op, so the hot paths pay only a branch. When the registry
//! carries a live [`Tracer`], [`LinkObs::hop_span`] additionally opens
//! a child span per traced message, so every transport hop shows up in
//! the causal span tree between the sender's and the receiver's spans.

use std::sync::Arc;
use std::time::Instant;

use simclock::Clock;
use wsrf_obs::{ActiveSpan, Counter, Histogram, MetricsRegistry, SpanContext, Tracer};
use wsrf_soap::{Envelope, TraceContext};

/// Message/byte counters plus a per-transfer latency histogram for one
/// transport link (`transport.<kind>.*` metric names).
pub struct LinkObs {
    /// Request/response exchanges.
    pub calls: Counter,
    /// One-way messages.
    pub oneways: Counter,
    /// Payload bytes received by this side.
    pub bytes_in: Counter,
    /// Payload bytes sent by this side.
    pub bytes_out: Counter,
    /// Wall-clock time per transfer, nanoseconds.
    pub latency: Histogram,
    /// Wall-clock time spent serializing (or size-passing) envelopes
    /// for the wire, nanoseconds per message.
    pub serialize: Histogram,
    /// Exact serialized envelope bytes produced for the wire (both
    /// directions), as computed by the single render/size pass.
    pub wire_bytes: Counter,
    /// The deployment's tracer (noop unless the registry was built with
    /// tracing enabled).
    pub tracer: Tracer,
    /// Transport kind, used as the span "service" for hop spans
    /// (interned so hop spans record without allocating it).
    kind: Arc<str>,
}

impl LinkObs {
    pub fn new(registry: &MetricsRegistry, kind: &str) -> Self {
        let p = format!("transport.{kind}");
        LinkObs {
            calls: registry.counter(&format!("{p}.calls")),
            oneways: registry.counter(&format!("{p}.oneways")),
            bytes_in: registry.counter(&format!("{p}.bytes_in")),
            bytes_out: registry.counter(&format!("{p}.bytes_out")),
            latency: registry.histogram(&format!("{p}.latency_ns")),
            serialize: registry.histogram(&format!("{p}.serialize_ns")),
            wire_bytes: registry.counter(&format!("{p}.wire_bytes")),
            tracer: registry.tracer().clone(),
            kind: kind.into(),
        }
    }

    /// All-no-op handles.
    pub fn noop() -> Self {
        Self::new(&MetricsRegistry::disabled(), "noop")
    }

    /// Open a transport-hop span as a child of the trace context in
    /// `env`'s headers, re-stamping the envelope with the hop's own
    /// context so the receiver parents under the hop. Returns `None`
    /// (and leaves `env` untouched) when the tracer is disabled or the
    /// message carries no trace header — transports never start traces,
    /// they only extend them.
    pub fn hop_span(&self, env: &mut Envelope, name: &str, clock: &Clock) -> Option<ActiveSpan> {
        if !self.tracer.is_enabled() {
            return None;
        }
        let tc = TraceContext::from_envelope(env)?;
        let span = self.tracer.start_child(
            SpanContext {
                trace_id: tc.trace_id,
                span_id: tc.span_id,
                sampled: tc.sampled,
            },
            name,
            self.kind.clone(),
            clock,
        );
        if span.is_recording() {
            let c = span.context();
            TraceContext::new(c.trace_id, c.span_id, c.sampled).stamp(env);
        }
        Some(span)
    }

    /// Record one wire serialization (or exact-size pass): the bytes it
    /// produced and the wall-clock time it took.
    pub fn record_serialize(&self, bytes: u64, started: Instant) {
        self.wire_bytes.add(bytes);
        self.serialize.record_duration(started.elapsed());
    }

    /// Record one completed exchange.
    pub fn record_call(&self, bytes_in: u64, bytes_out: u64, started: Instant) {
        self.calls.inc();
        self.bytes_in.add(bytes_in);
        self.bytes_out.add(bytes_out);
        self.latency.record_duration(started.elapsed());
    }

    /// Record one accepted one-way message.
    pub fn record_oneway(&self, bytes: u64, started: Instant) {
        self.oneways.inc();
        self.bytes_in.add(bytes);
        self.latency.record_duration(started.elapsed());
    }
}
