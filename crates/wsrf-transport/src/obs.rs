//! Per-transport observability handles.
//!
//! Each transport owns a [`LinkObs`] created against a deployment's
//! [`MetricsRegistry`]; with the default disabled registry every handle
//! is a no-op, so the hot paths pay only a branch.

use std::time::Instant;

use wsrf_obs::{Counter, Histogram, MetricsRegistry};

/// Message/byte counters plus a per-transfer latency histogram for one
/// transport link (`transport.<kind>.*` metric names).
pub struct LinkObs {
    /// Request/response exchanges.
    pub calls: Counter,
    /// One-way messages.
    pub oneways: Counter,
    /// Payload bytes received by this side.
    pub bytes_in: Counter,
    /// Payload bytes sent by this side.
    pub bytes_out: Counter,
    /// Wall-clock time per transfer, nanoseconds.
    pub latency: Histogram,
}

impl LinkObs {
    pub fn new(registry: &MetricsRegistry, kind: &str) -> Self {
        let p = format!("transport.{kind}");
        LinkObs {
            calls: registry.counter(&format!("{p}.calls")),
            oneways: registry.counter(&format!("{p}.oneways")),
            bytes_in: registry.counter(&format!("{p}.bytes_in")),
            bytes_out: registry.counter(&format!("{p}.bytes_out")),
            latency: registry.histogram(&format!("{p}.latency_ns")),
        }
    }

    /// All-no-op handles.
    pub fn noop() -> Self {
        Self::new(&MetricsRegistry::disabled(), "noop")
    }

    /// Record one completed exchange.
    pub fn record_call(&self, bytes_in: u64, bytes_out: u64, started: Instant) {
        self.calls.inc();
        self.bytes_in.add(bytes_in);
        self.bytes_out.add(bytes_out);
        self.latency.record_duration(started.elapsed());
    }

    /// Record one accepted one-way message.
    pub fn record_oneway(&self, bytes: u64, started: Instant) {
        self.oneways.inc();
        self.bytes_in.add(bytes);
        self.latency.record_duration(started.elapsed());
    }
}
