//! The network cost model for the simulated campus grid.
//!
//! The paper contrasts transfer paths (client-side `soap.tcp` bulk
//! transfer vs HTTP `Read()` calls vs same-machine moves); this module
//! gives each scheme and each link a latency/bandwidth profile so those
//! comparisons are quantitative in our reproduction (experiment E5).

use std::collections::HashMap;
use std::time::Duration;

/// Latency/bandwidth description of a link (or scheme default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// One-way propagation + protocol handshake latency.
    pub latency: Duration,
    /// Payload bandwidth in bytes per (virtual) second.
    pub bandwidth_bps: u64,
    /// Fixed per-message protocol overhead bytes (HTTP headers, SOAP
    /// framing...), added to the payload before the bandwidth term.
    pub overhead_bytes: u64,
    /// Multiplier on payload size (e.g. base64 inflation for binary
    /// payloads carried in XML).
    pub inflation: f64,
}

impl LinkProfile {
    /// A zero-cost link (useful for deterministic unit tests).
    pub fn instant() -> Self {
        LinkProfile {
            latency: Duration::ZERO,
            bandwidth_bps: u64::MAX,
            overhead_bytes: 0,
            inflation: 1.0,
        }
    }

    /// A campus LAN profile: 1 ms latency, 100 Mbit/s.
    pub fn lan() -> Self {
        LinkProfile {
            latency: Duration::from_millis(1),
            bandwidth_bps: 12_500_000,
            overhead_bytes: 0,
            inflation: 1.0,
        }
    }

    /// Time to move `payload_bytes` across this link.
    pub fn transfer_time(&self, payload_bytes: u64) -> Duration {
        let effective = (payload_bytes as f64 * self.inflation) as u64 + self.overhead_bytes;
        if self.bandwidth_bps == u64::MAX || self.bandwidth_bps == 0 {
            return self.latency;
        }
        self.latency + Duration::from_secs_f64(effective as f64 / self.bandwidth_bps as f64)
    }
}

/// Cost configuration for the whole simulated network.
///
/// Resolution order for a destination address: exact-authority override
/// → scheme override → default.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Fallback profile.
    pub default: LinkProfile,
    /// Per-scheme profiles (`http` slower per message than `soap.tcp`,
    /// mirroring the paper's preference for WSE TCP on large files).
    pub per_scheme: HashMap<String, LinkProfile>,
    /// Per-destination-authority overrides (e.g. a slow building
    /// uplink).
    pub per_authority: HashMap<String, LinkProfile>,
}

impl Default for NetConfig {
    /// Everything instant — unit tests want determinism, not delays.
    fn default() -> Self {
        NetConfig {
            default: LinkProfile::instant(),
            per_scheme: HashMap::new(),
            per_authority: HashMap::new(),
        }
    }
}

impl NetConfig {
    /// The campus-grid profile used by the examples and benches:
    /// a LAN with HTTP's per-message overhead and base64 inflation
    /// versus lean `soap.tcp` framing.
    pub fn campus() -> Self {
        let mut per_scheme = HashMap::new();
        per_scheme.insert(
            "http".to_string(),
            LinkProfile {
                latency: Duration::from_millis(2),
                bandwidth_bps: 12_500_000,
                overhead_bytes: 600,
                inflation: 4.0 / 3.0, // binary payloads ride as base64
            },
        );
        per_scheme.insert(
            "soap.tcp".to_string(),
            LinkProfile {
                latency: Duration::from_millis(1),
                bandwidth_bps: 12_500_000,
                overhead_bytes: 64,
                inflation: 1.0,
            },
        );
        per_scheme.insert(
            "inproc".to_string(),
            LinkProfile {
                latency: Duration::from_millis(1),
                bandwidth_bps: 12_500_000,
                overhead_bytes: 200,
                inflation: 1.0,
            },
        );
        NetConfig {
            default: LinkProfile::lan(),
            per_scheme,
            per_authority: HashMap::new(),
        }
    }

    /// Select the profile for a destination.
    pub fn profile_for(&self, scheme: &str, authority: &str) -> LinkProfile {
        if let Some(p) = self.per_authority.get(authority) {
            return *p;
        }
        if let Some(p) = self.per_scheme.get(scheme) {
            return *p;
        }
        self.default
    }

    /// Cost of moving `bytes` to `scheme://authority/...`.
    pub fn transfer_time(&self, scheme: &str, authority: &str, bytes: u64) -> Duration {
        self.profile_for(scheme, authority).transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_profile_is_free() {
        assert_eq!(
            LinkProfile::instant().transfer_time(1 << 30),
            Duration::ZERO
        );
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let p = LinkProfile {
            latency: Duration::from_millis(1),
            bandwidth_bps: 1_000_000,
            overhead_bytes: 0,
            inflation: 1.0,
        };
        assert_eq!(p.transfer_time(0), Duration::from_millis(1));
        assert_eq!(p.transfer_time(1_000_000), Duration::from_millis(1001));
    }

    #[test]
    fn overhead_and_inflation_apply() {
        let p = LinkProfile {
            latency: Duration::ZERO,
            bandwidth_bps: 1000,
            overhead_bytes: 500,
            inflation: 2.0,
        };
        // 250 bytes * 2 + 500 = 1000 bytes -> 1 s.
        assert_eq!(p.transfer_time(250), Duration::from_secs(1));
    }

    #[test]
    fn resolution_order() {
        let mut cfg = NetConfig::default();
        cfg.per_scheme.insert("http".into(), LinkProfile::lan());
        let slow = LinkProfile {
            latency: Duration::from_secs(1),
            bandwidth_bps: 10,
            overhead_bytes: 0,
            inflation: 1.0,
        };
        cfg.per_authority.insert("far-building".into(), slow);
        assert_eq!(cfg.profile_for("http", "near"), LinkProfile::lan());
        assert_eq!(cfg.profile_for("http", "far-building"), slow);
        assert_eq!(cfg.profile_for("soap.tcp", "near"), LinkProfile::instant());
    }

    #[test]
    fn campus_prefers_tcp_for_large_files() {
        let cfg = NetConfig::campus();
        let size = 10_000_000;
        let http = cfg.transfer_time("http", "m1", size);
        let tcp = cfg.transfer_time("soap.tcp", "m1", size);
        assert!(tcp < http, "soap.tcp {tcp:?} should beat http {http:?}");
    }
}
