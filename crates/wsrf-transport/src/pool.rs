//! A small fixed-size worker pool for asynchronous one-way message
//! delivery (thread-per-message would melt under the notification
//! benches), plus a byte-buffer pool the socket transports use to
//! render each envelope once without a fresh allocation per message.

use crossbeam::channel::{unbounded, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Buffers larger than this are dropped instead of pooled, so one huge
/// file-staging message can't pin megabytes of idle capacity forever.
const MAX_POOLED_CAPACITY: usize = 4 << 20;

/// At most this many idle buffers are retained.
const MAX_POOLED_BUFFERS: usize = 8;

/// A tiny pool of reusable `Vec<u8>` wire buffers.
///
/// `take` hands out a cleared buffer (recycled when available, fresh
/// otherwise); `put` returns it. Amortizes render-buffer allocations on
/// the HTTP and framed-TCP clients, where calls from many threads share
/// one connection.
#[derive(Default)]
pub struct BufPool {
    slots: Mutex<Vec<Vec<u8>>>,
}

impl BufPool {
    pub fn new() -> Self {
        BufPool::default()
    }

    /// A cleared buffer, recycled when one is idle.
    pub fn take(&self) -> Vec<u8> {
        let mut buf = self
            .slots
            .lock()
            .expect("buffer pool poisoned")
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a buffer for reuse. Oversized or surplus buffers are
    /// simply dropped.
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        let mut slots = self.slots.lock().expect("buffer pool poisoned");
        if slots.len() < MAX_POOLED_BUFFERS {
            slots.push(buf);
        }
    }
}

type Task = Box<dyn FnOnce() + Send>;

/// Fixed-size thread pool. Tasks run FIFO across workers.
pub struct ThreadPool {
    tx: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `n` workers (at least 1).
    pub fn new(n: usize, label: &str) -> Self {
        let (tx, rx) = unbounded::<Task>();
        let workers = (0..n.max(1))
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("{label}-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueue a task.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            // Receivers only disappear at shutdown; ignore failure then.
            let _ = tx.send(Box::new(task));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel; workers drain remaining tasks then exit.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_tasks() {
        let pool = ThreadPool::new(4, "test");
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = count.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn buf_pool_recycles_and_clears() {
        let pool = BufPool::new();
        let mut b = pool.take();
        b.extend_from_slice(b"payload");
        let cap = b.capacity();
        pool.put(b);
        let again = pool.take();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "recycled the same allocation");
    }

    #[test]
    fn buf_pool_drops_oversized_buffers() {
        let pool = BufPool::new();
        pool.put(Vec::with_capacity(super::MAX_POOLED_CAPACITY + 1));
        assert_eq!(pool.take().capacity(), 0);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = ThreadPool::new(0, "clamp");
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.execute(move || {
            d.store(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
