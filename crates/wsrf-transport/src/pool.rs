//! A small fixed-size worker pool for asynchronous one-way message
//! delivery (thread-per-message would melt under the notification
//! benches).

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send>;

/// Fixed-size thread pool. Tasks run FIFO across workers.
pub struct ThreadPool {
    tx: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `n` workers (at least 1).
    pub fn new(n: usize, label: &str) -> Self {
        let (tx, rx) = unbounded::<Task>();
        let workers = (0..n.max(1))
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("{label}-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueue a task.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            // Receivers only disappear at shutdown; ignore failure then.
            let _ = tx.send(Box::new(task));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel; workers drain remaining tasks then exit.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_all_tasks() {
        let pool = ThreadPool::new(4, "test");
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = count.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = ThreadPool::new(0, "clamp");
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.execute(move || {
            d.store(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
