//! The [`Endpoint`] trait: anything that can receive SOAP messages.

use wsrf_soap::{Envelope, SoapFault};

/// A message sink. Service containers, notification listeners and the
/// client's local file server all implement this.
pub trait Endpoint: Send + Sync {
    /// Handle one message.
    ///
    /// * For a request/response exchange the return value is the
    ///   response envelope (faults travel as fault envelopes, not as
    ///   `None`).
    /// * For a one-way message the caller discards the return value;
    ///   endpoints that only ever receive one-way traffic may return
    ///   `None`.
    fn handle(&self, env: Envelope) -> Option<Envelope>;

    /// Handle one message directly from its wire text. The socket
    /// transports call this with a borrowed slice of their receive
    /// buffer, so endpoints that can route without a DOM (the service
    /// container's lazy dispatch) override it. The default parses a
    /// full envelope and delegates to [`handle`](Self::handle),
    /// answering unparseable wires with a client fault envelope — the
    /// same fault the transports historically produced themselves.
    fn handle_wire(&self, wire: &str) -> Option<Envelope> {
        match Envelope::parse(wire) {
            Ok(env) => self.handle(env),
            Err(e) => Some(SoapFault::client(format!("unparseable envelope: {e}")).to_envelope()),
        }
    }

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "endpoint"
    }
}

/// Adapter turning a closure into an [`Endpoint`]; handy in tests and
/// for small listeners.
pub struct FnEndpoint<F> {
    f: F,
    label: String,
}

impl<F> FnEndpoint<F>
where
    F: Fn(Envelope) -> Option<Envelope> + Send + Sync,
{
    /// Wrap a closure.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnEndpoint {
            f,
            label: label.into(),
        }
    }
}

impl<F> Endpoint for FnEndpoint<F>
where
    F: Fn(Envelope) -> Option<Envelope> + Send + Sync,
{
    fn handle(&self, env: Envelope) -> Option<Envelope> {
        (self.f)(env)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrf_xml::Element;

    #[test]
    fn fn_endpoint_invokes_closure() {
        let ep = FnEndpoint::new("echo", Some);
        let env = Envelope::new(Element::local("Ping"));
        assert_eq!(ep.handle(env.clone()), Some(env));
        assert_eq!(ep.name(), "echo");
    }
}
