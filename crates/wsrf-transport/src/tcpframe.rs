//! A WSE-like `soap.tcp` transport: length-prefixed SOAP frames over a
//! persistent TCP connection, with true one-way frames.
//!
//! The paper: "Files can be transferred via HTTP, but this is not the
//! preferred way to move large files. Instead, the FSS uses the Web
//! Service Enhancements (WSE) support for SOAP over TCP." WSE framed
//! SOAP with DIME; we use a simpler frame — magic, flags, length —
//! that preserves the two properties the paper relies on: persistent
//! connections (no per-message HTTP handshake) and binary-clean
//! payloads (no base64 inflation when shipping file content).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use wsrf_obs::MetricsRegistry;
use wsrf_soap::{Envelope, SoapFault};

use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::obs::LinkObs;
use crate::pool::BufPool;

const MAGIC: &[u8; 4] = b"WSE1";
/// Frame is a request expecting a response frame.
const FLAG_CALL: u8 = 0;
/// Frame is one-way; no response will be sent.
const FLAG_ONEWAY: u8 = 1;
/// Response frame carrying an envelope.
const FLAG_RESPONSE: u8 = 2;
/// Response frame indicating the endpoint produced no response.
const FLAG_EMPTY: u8 = 3;

const MAX_FRAME: usize = 256 << 20;

fn write_frame(w: &mut impl Write, flags: u8, payload: &[u8]) -> std::io::Result<()> {
    let mut head = [0u8; 9];
    head[..4].copy_from_slice(MAGIC);
    head[4] = flags;
    head[5..9].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Render `env` as one complete frame — header plus payload — into the
/// reusable `buf`. The envelope serializes exactly once, straight into
/// the buffer; the length field is back-patched afterwards. Returns the
/// payload length.
fn frame_into(buf: &mut Vec<u8>, flags: u8, env: &Envelope) -> usize {
    buf.clear();
    buf.extend_from_slice(MAGIC);
    buf.push(flags);
    buf.extend_from_slice(&[0u8; 4]); // length, patched below
    env.write_into(buf);
    let payload_len = buf.len() - 9;
    buf[5..9].copy_from_slice(&(payload_len as u32).to_be_bytes());
    payload_len
}

/// Read one frame into the reusable `payload` buffer; returns the frame
/// flags.
fn read_frame_into(r: &mut impl Read, payload: &mut Vec<u8>) -> Result<u8, TransportError> {
    let mut head = [0u8; 9];
    r.read_exact(&mut head)
        .map_err(|e| TransportError::Io(format!("read frame header: {e}")))?;
    if &head[..4] != MAGIC {
        return Err(TransportError::Protocol("bad frame magic".into()));
    }
    let flags = head[4];
    let len = u32::from_be_bytes(head[5..9].try_into().expect("4-byte slice")) as usize;
    if len > MAX_FRAME {
        return Err(TransportError::Protocol(format!("frame too large: {len}")));
    }
    payload.resize(len, 0);
    r.read_exact(payload)
        .map_err(|e| TransportError::Io(format!("read frame body: {e}")))?;
    Ok(flags)
}

fn decode_envelope(payload: &[u8]) -> Result<Envelope, TransportError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| TransportError::Protocol("frame payload not utf-8".into()))?;
    Envelope::parse(text).map_err(|e| TransportError::Protocol(format!("bad envelope: {e}")))
}

/// Render a client fault as a response frame into `outbuf`.
fn fault_frame(outbuf: &mut Vec<u8>, detail: String) -> usize {
    frame_into(
        outbuf,
        FLAG_RESPONSE,
        &SoapFault::client(detail).to_envelope(),
    )
}

/// A listening `soap.tcp` endpoint.
pub struct FramedServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FramedServer {
    /// Bind an ephemeral localhost port and serve `endpoint`.
    pub fn start(endpoint: Arc<dyn Endpoint>) -> std::io::Result<Self> {
        Self::start_with_metrics(endpoint, &MetricsRegistry::disabled())
    }

    /// Like [`FramedServer::start`], recording served frames into a
    /// metrics registry (`transport.tcpframe.*`).
    pub fn start_with_metrics(
        endpoint: Arc<dyn Endpoint>,
        registry: &MetricsRegistry,
    ) -> std::io::Result<Self> {
        let obs = Arc::new(LinkObs::new(registry, "tcpframe"));
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sd = shutdown.clone();
        let accept_thread = std::thread::Builder::new()
            .name("soap-tcp-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if sd.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    stream.set_nodelay(true).ok();
                    let ep = endpoint.clone();
                    let obs = obs.clone();
                    let _ = std::thread::Builder::new()
                        .name("soap-tcp-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, ep, &obs);
                        });
                }
            })?;
        Ok(FramedServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `host:port` authority string.
    pub fn authority(&self) -> String {
        self.addr.to_string()
    }
}

impl Drop for FramedServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve one persistent connection: a loop of frames until EOF.
fn serve_connection(
    stream: TcpStream,
    endpoint: Arc<dyn Endpoint>,
    obs: &LinkObs,
) -> Result<(), TransportError> {
    let mut reader = stream.try_clone().map_err(TransportError::from)?;
    let mut writer = stream;
    // Per-connection buffers, reused across the frame loop: one for
    // inbound payloads, one the response renders into (exactly once).
    // The endpoint sees a *borrowed* slice of `inbuf` through
    // [`Endpoint::handle_wire`], so a lazily-routing container never
    // pays for an owned copy or an eager DOM.
    let mut inbuf: Vec<u8> = Vec::new();
    let mut outbuf: Vec<u8> = Vec::new();
    loop {
        let flags = match read_frame_into(&mut reader, &mut inbuf) {
            Ok(f) => f,
            Err(TransportError::Io(_)) => return Ok(()), // peer closed
            Err(e) => return Err(e),
        };
        let started = std::time::Instant::now();
        match flags {
            FLAG_ONEWAY => {
                // Undecodable one-ways are dropped — there is nobody to
                // answer — but the connection survives for later frames.
                if let Ok(text) = std::str::from_utf8(&inbuf) {
                    endpoint.handle_wire(text);
                }
                obs.record_oneway(inbuf.len() as u64, started);
            }
            FLAG_CALL => {
                let resp = match std::str::from_utf8(&inbuf) {
                    Ok(text) => endpoint.handle_wire(text),
                    // A garbage payload answers with a fault frame (the
                    // connection stays usable) instead of tearing the
                    // whole persistent session down.
                    Err(_) => {
                        let resp_len = fault_frame(&mut outbuf, "frame payload not utf-8".into());
                        obs.record_call(inbuf.len() as u64, resp_len as u64, started);
                        writer.write_all(&outbuf)?;
                        writer.flush()?;
                        continue;
                    }
                };
                match resp {
                    Some(resp) => {
                        let t0 = std::time::Instant::now();
                        let resp_len = frame_into(&mut outbuf, FLAG_RESPONSE, &resp);
                        obs.record_serialize(resp_len as u64, t0);
                        obs.record_call(inbuf.len() as u64, resp_len as u64, started);
                        writer.write_all(&outbuf)?;
                        writer.flush()?;
                    }
                    None => {
                        obs.record_call(inbuf.len() as u64, 0, started);
                        write_frame(&mut writer, FLAG_EMPTY, b"")?
                    }
                }
            }
            other => {
                return Err(TransportError::Protocol(format!(
                    "unexpected client frame flags {other}"
                )))
            }
        }
    }
}

/// A persistent client connection to a [`FramedServer`].
///
/// Thread-safe: calls are serialized over the single connection,
/// matching WSE's session semantics.
pub struct FramedClient {
    stream: Mutex<TcpStream>,
    authority: String,
    /// Reusable wire buffers. Frames render here *before* the
    /// connection lock is taken, so serialization cost never extends
    /// the critical section other callers queue behind.
    pool: BufPool,
}

impl FramedClient {
    /// Connect to `host:port`.
    pub fn connect(authority: &str) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(authority)
            .map_err(|e| TransportError::Io(format!("connect {authority}: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(FramedClient {
            stream: Mutex::new(stream),
            authority: authority.to_string(),
            pool: BufPool::new(),
        })
    }

    /// Request/response over the persistent connection.
    pub fn call(&self, env: &Envelope) -> Result<Envelope, TransportError> {
        let mut buf = self.pool.take();
        frame_into(&mut buf, FLAG_CALL, env);
        let io = {
            let mut stream = self.stream.lock();
            stream
                .write_all(&buf)
                .and_then(|()| stream.flush())
                .map_err(TransportError::from)
                // The request frame has been written; reuse the same
                // buffer for the response payload.
                .and_then(|()| read_frame_into(&mut *stream, &mut buf))
        };
        let out = match io {
            Ok(FLAG_RESPONSE) => decode_envelope(&buf),
            Ok(FLAG_EMPTY) => Err(TransportError::NoResponse(self.authority.clone())),
            Ok(other) => Err(TransportError::Protocol(format!(
                "unexpected response flags {other}"
            ))),
            Err(e) => Err(e),
        };
        self.pool.put(buf);
        out
    }

    /// Fire-and-forget frame; returns once the bytes are written.
    pub fn send_oneway(&self, env: &Envelope) -> Result<(), TransportError> {
        let mut buf = self.pool.take();
        frame_into(&mut buf, FLAG_ONEWAY, env);
        let io = {
            let mut stream = self.stream.lock();
            stream.write_all(&buf).and_then(|()| stream.flush())
        };
        self.pool.put(buf);
        io.map_err(TransportError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::FnEndpoint;
    use std::sync::atomic::AtomicUsize;
    use wsrf_xml::Element;

    #[test]
    fn persistent_connection_carries_many_calls() {
        let server = FramedServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
        let client = FramedClient::connect(&server.authority()).unwrap();
        for i in 0..20 {
            let req = Envelope::new(Element::local("Ping").attr("i", i.to_string()));
            assert_eq!(client.call(&req).unwrap(), req);
        }
    }

    #[test]
    fn oneway_frames_deliver_without_response() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let server = FramedServer::start(Arc::new(FnEndpoint::new("sink", move |_| {
            h.fetch_add(1, Ordering::SeqCst);
            None
        })))
        .unwrap();
        let client = FramedClient::connect(&server.authority()).unwrap();
        for _ in 0..10 {
            client
                .send_oneway(&Envelope::new(Element::local("Evt")))
                .unwrap();
        }
        // One-way frames race the assertion; poll briefly.
        for _ in 0..200 {
            if hits.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn empty_response_is_no_response_error() {
        let server = FramedServer::start(Arc::new(FnEndpoint::new("none", |_| None))).unwrap();
        let client = FramedClient::connect(&server.authority()).unwrap();
        let err = client
            .call(&Envelope::new(Element::local("X")))
            .unwrap_err();
        assert!(matches!(err, TransportError::NoResponse(_)));
    }

    #[test]
    fn binary_heavy_payload_roundtrips() {
        let server = FramedServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
        let client = FramedClient::connect(&server.authority()).unwrap();
        let blob = wsrf_xml::base64::encode(&vec![0xA5u8; 100_000]);
        let req = Envelope::new(Element::local("Write").text(blob));
        assert_eq!(client.call(&req).unwrap(), req);
    }

    #[test]
    fn bad_call_payload_answers_fault_and_keeps_connection() {
        let server = FramedServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut buf = Vec::new();

        // Garbage XML on a CALL frame: a fault frame comes back and the
        // persistent connection survives.
        write_frame(&mut stream, FLAG_CALL, b"<not-xml").unwrap();
        assert_eq!(
            read_frame_into(&mut stream, &mut buf).unwrap(),
            FLAG_RESPONSE
        );
        let fault = Envelope::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!(fault.is_fault());
        assert!(fault
            .fault()
            .unwrap()
            .reason
            .contains("unparseable envelope"));

        // Non-utf-8 payload likewise faults without killing the session.
        write_frame(&mut stream, FLAG_CALL, &[0xFF, 0xFE, 0x00]).unwrap();
        assert_eq!(
            read_frame_into(&mut stream, &mut buf).unwrap(),
            FLAG_RESPONSE
        );
        assert!(Envelope::parse(std::str::from_utf8(&buf).unwrap())
            .unwrap()
            .is_fault());

        // The same connection still carries a good call.
        let req = Envelope::new(Element::local("Ping"));
        let mut out = Vec::new();
        frame_into(&mut out, FLAG_CALL, &req);
        stream.write_all(&out).unwrap();
        stream.flush().unwrap();
        assert_eq!(
            read_frame_into(&mut stream, &mut buf).unwrap(),
            FLAG_RESPONSE
        );
        assert_eq!(
            Envelope::parse(std::str::from_utf8(&buf).unwrap()).unwrap(),
            req
        );
    }

    #[test]
    fn shared_client_across_threads() {
        let server = FramedServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
        let client = Arc::new(FramedClient::connect(&server.authority()).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let c = client.clone();
                std::thread::spawn(move || {
                    for j in 0..10 {
                        let req = Envelope::new(
                            Element::local("P")
                                .attr("t", i.to_string())
                                .attr("j", j.to_string()),
                        );
                        assert_eq!(c.call(&req).unwrap(), req);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
