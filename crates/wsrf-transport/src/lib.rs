//! # wsrf-transport
//!
//! Message transports for the WSRF stack.
//!
//! The paper's testbed moves SOAP messages three ways:
//!
//! 1. ordinary request/response over HTTP (IIS/ASP.NET dispatch),
//! 2. **one-way messages** ("a one-way message closes the connection
//!    immediately after sending ... while a void function will actually
//!    send a reply message with an empty message body") used by the
//!    File System Service upload protocol and by all notifications,
//! 3. WSE's SOAP-over-TCP (`soap.tcp`) for bulk file transfer from the
//!    client's machine.
//!
//! This crate reproduces all three:
//!
//! * [`InProcNetwork`] — the simulated campus network. Endpoints
//!   register under `scheme://authority/path` addresses; message costs
//!   (latency + size/bandwidth, with per-scheme protocol overheads)
//!   are modeled against the shared [`simclock::Clock`] and recorded in
//!   [`NetMetrics`].
//! * [`http::HttpSoapServer`] / [`http::http_call`] — a real minimal
//!   HTTP/1.1 SOAP endpoint over localhost TCP.
//! * [`tcpframe::FramedServer`] / [`tcpframe::FramedClient`] — a real
//!   WSE-like length-prefixed `soap.tcp` transport with persistent
//!   connections and true one-way frames.
//!
//! All service containers speak through the [`Endpoint`] trait, so the
//! same service runs unchanged behind any of the three transports.

pub mod endpoint;
pub mod error;
pub mod http;
pub mod inproc;
pub mod netsim;
pub mod obs;
pub mod pool;
pub mod tcpframe;

pub use endpoint::{Endpoint, FnEndpoint};
pub use error::TransportError;
pub use inproc::{modeled_metric_name, InProcNetwork, NetMetrics};
pub use netsim::{LinkProfile, NetConfig};
