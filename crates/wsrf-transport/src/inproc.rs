//! The simulated campus network.
//!
//! Every machine's services register here under their full address
//! (`inproc://machine01/ExecutionService`, `soap.tcp://client/files`).
//! Message *costs* come from the [`NetConfig`] model against the shared
//! virtual clock; message *delivery* is an in-process method call, so a
//! whole campus grid runs in one address space at memory speed while
//! still exhibiting realistic timing and traffic metrics.
//!
//! Because delivery passes the [`Envelope`] by value — no wire text is
//! ever produced — this transport's receive path is already "zero
//! parse": the inbound-lazy machinery ([`Endpoint::handle_wire`], the
//! container's pull-scan routing) only comes into play on the socket
//! transports, which own real receive buffers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use simclock::Clock;
use wsrf_obs::{Histogram, HistogramFamily, MetricsRegistry};
use wsrf_soap::{Envelope, Uri};

use crate::endpoint::Endpoint;
use crate::error::TransportError;
use crate::netsim::NetConfig;
use crate::obs::LinkObs;
use crate::pool::ThreadPool;

/// Traffic counters, readable at any time (experiments E5/E8 plot
/// these).
#[derive(Default)]
pub struct NetMetrics {
    /// Request/response exchanges completed.
    pub calls: AtomicU64,
    /// One-way messages accepted for delivery.
    pub oneways: AtomicU64,
    /// Serialized payload bytes moved (requests + responses).
    pub bytes: AtomicU64,
    /// Accumulated modeled (virtual) transfer time in nanoseconds.
    pub modeled_nanos: AtomicU64,
    /// Messages dropped because the destination vanished between
    /// scheduling and delivery.
    pub undeliverable: AtomicU64,
}

impl NetMetrics {
    /// Snapshot of (calls, oneways, bytes, modeled transfer time).
    pub fn snapshot(&self) -> (u64, u64, u64, Duration) {
        (
            self.calls.load(Ordering::Relaxed),
            self.oneways.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            Duration::from_nanos(self.modeled_nanos.load(Ordering::Relaxed)),
        )
    }

    fn record(&self, bytes: u64, modeled: Duration) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.modeled_nanos
            .fetch_add(modeled.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// The simulated network fabric.
pub struct InProcNetwork {
    clock: Clock,
    /// Shared with deferred one-way deliveries, which re-resolve their
    /// destination at delivery time (see [`InProcNetwork::send_oneway`]).
    registry: Arc<RwLock<HashMap<String, Arc<dyn Endpoint>>>>,
    /// Cost model: read on every call/oneway, written only when a
    /// test or bench reconfigures the net — hence a RwLock, so
    /// concurrent senders never serialize on it.
    config: RwLock<NetConfig>,
    /// Counters for experiments.
    pub metrics: Arc<NetMetrics>,
    /// Registry-backed observability (no-op unless constructed via
    /// [`InProcNetwork::with_metrics`]).
    obs: LinkObs,
    /// The deployment's registry; services built on this network
    /// default their metrics to it.
    obs_registry: Arc<MetricsRegistry>,
    /// Modeled (virtual) transfer time per message, nanoseconds.
    obs_modeled: Histogram,
    /// Per-authority breakdown of the same, bounded: authorities come
    /// from an open set (every client id is one), so past the cap the
    /// long tail shares `transport.inproc.modeled.other_ns` instead of
    /// minting a histogram per name.
    obs_modeled_by_auth: HistogramFamily,
    pool: ThreadPool,
}

impl InProcNetwork {
    /// A network with zero-cost links (deterministic tests).
    pub fn new(clock: Clock) -> Arc<Self> {
        Self::with_config(clock, NetConfig::default())
    }

    /// A network with an explicit cost model.
    pub fn with_config(clock: Clock, config: NetConfig) -> Arc<Self> {
        Self::with_metrics(clock, config, &MetricsRegistry::disabled())
    }

    /// A network that additionally records traffic into a metrics
    /// registry (`transport.inproc.*`).
    pub fn with_metrics(
        clock: Clock,
        config: NetConfig,
        registry: &Arc<MetricsRegistry>,
    ) -> Arc<Self> {
        Arc::new(InProcNetwork {
            clock,
            registry: Arc::new(RwLock::new(HashMap::new())),
            config: RwLock::new(config),
            metrics: Arc::new(NetMetrics::default()),
            obs: LinkObs::new(registry, "inproc"),
            obs_modeled: registry.histogram("transport.inproc.modeled_ns"),
            obs_modeled_by_auth: registry.histogram_family(
                "transport.inproc.modeled",
                "_ns",
                MODELED_AUTHORITY_CAP,
            ),
            obs_registry: registry.clone(),
            pool: ThreadPool::new(4, "inproc-oneway"),
        })
    }

    /// The clock this network charges costs against.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The metrics registry this network records into (a disabled
    /// registry unless constructed via [`InProcNetwork::with_metrics`]).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs_registry
    }

    /// Replace the cost model (benches sweep this).
    pub fn set_config(&self, config: NetConfig) {
        *self.config.write() = config;
    }

    /// Register an endpoint at a full address
    /// (`scheme://authority/path`). Re-registering replaces.
    pub fn register(&self, address: impl Into<String>, endpoint: Arc<dyn Endpoint>) {
        self.registry
            .write()
            .insert(normalize(&address.into()), endpoint);
    }

    /// Remove an endpoint; true if it existed.
    pub fn unregister(&self, address: &str) -> bool {
        self.registry.write().remove(&normalize(address)).is_some()
    }

    /// Addresses currently registered (diagnostics).
    pub fn addresses(&self) -> Vec<String> {
        let mut v: Vec<String> = self.registry.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn lookup(&self, address: &str) -> Result<Arc<dyn Endpoint>, TransportError> {
        // Keys were normalized at register time, and callers almost
        // always pass already-normalized addresses — probe with the
        // borrowed key and only allocate a normalized copy when the
        // address actually needs fixing up.
        let reg = self.registry.read();
        let found = if is_normalized(address) {
            reg.get(address)
        } else {
            reg.get(normalize(address).as_str())
        };
        found
            .cloned()
            .ok_or_else(|| TransportError::NoRoute(address.to_string()))
    }

    /// Exact wire size of `env`, computed by a single counting pass
    /// over the serializer — no render, no clone. Feeds the serialize
    /// metrics when the registry is live.
    fn wire_size(&self, env: &Envelope) -> u64 {
        if self.obs_registry.is_enabled() {
            let t0 = std::time::Instant::now();
            let bytes = env.wire_len() as u64;
            self.obs.record_serialize(bytes, t0);
            bytes
        } else {
            env.wire_len() as u64
        }
    }

    fn cost(&self, address: &str, bytes: u64) -> Duration {
        match Uri::parse(address) {
            Some(u) => self
                .config
                .read()
                .transfer_time(&u.scheme, &u.authority, bytes),
            None => Duration::ZERO,
        }
    }

    /// Synchronous request/response exchange.
    ///
    /// The caller experiences the modeled request + response transfer
    /// times: on a scaled clock it genuinely sleeps (scaled); on a
    /// manual clock costs are recorded in [`NetMetrics`] but delivery
    /// is inline, keeping tests single-threaded and deterministic.
    pub fn call(&self, to: &str, mut env: Envelope) -> Result<Envelope, TransportError> {
        let started = std::time::Instant::now();
        let ep = self.lookup(to)?;
        // Hop span (noop unless tracing): re-stamps the trace header
        // before byte accounting so the wire size reflects what is
        // delivered. Finishes when the exchange completes.
        let mut hop = self.obs.hop_span(&mut env, "transport.call", &self.clock);
        if let Some(s) = hop.as_mut() {
            s.annotate("to", to);
        }
        let req_bytes = self.wire_size(&env);
        let req_cost = self.cost(to, req_bytes);
        self.metrics.record(req_bytes, req_cost);
        self.record_modeled(to, req_cost);
        self.charge(req_cost);
        let resp = ep
            .handle(env)
            .ok_or_else(|| TransportError::NoResponse(to.to_string()))?;
        let resp_bytes = self.wire_size(&resp);
        let resp_cost = self.cost(to, resp_bytes);
        self.metrics.record(resp_bytes, resp_cost);
        self.record_modeled(to, resp_cost);
        self.charge(resp_cost);
        self.metrics.calls.fetch_add(1, Ordering::Relaxed);
        self.obs.record_call(req_bytes, resp_bytes, started);
        Ok(resp)
    }

    /// One-way message: returns as soon as the message is "on the
    /// wire". Routing failures surface immediately; delivery happens
    /// after the modeled transfer time (via the clock in manual mode,
    /// via the worker pool in scaled mode).
    pub fn send_oneway(&self, to: &str, mut env: Envelope) -> Result<(), TransportError> {
        let started = std::time::Instant::now();
        let ep = self.lookup(to)?;
        let mut hop = self.obs.hop_span(&mut env, "transport.oneway", &self.clock);
        if let Some(s) = hop.as_mut() {
            s.annotate("to", to);
        }
        let bytes = self.wire_size(&env);
        let cost = self.cost(to, bytes);
        self.metrics.record(bytes, cost);
        self.record_modeled(to, cost);
        self.metrics.oneways.fetch_add(1, Ordering::Relaxed);
        self.obs.record_oneway(bytes, started);
        if self.clock.is_manual() && cost.is_zero() {
            ep.handle(env);
            return Ok(());
        }
        // Deferred delivery late-binds the destination: the endpoint
        // is re-resolved when the message "arrives", not captured at
        // send time. A container that unregistered (crashed) in the
        // meantime drops the message (`undeliverable`); one that
        // re-registered (restarted, or a standby taking over the
        // address) receives it — exactly the wire semantics a real
        // network would give a rebound listener.
        drop(ep);
        let addr = if is_normalized(to) {
            to.to_string()
        } else {
            normalize(to)
        };
        let registry = self.registry.clone();
        let metrics = self.metrics.clone();
        let deliver = move || {
            let found = registry.read().get(&addr).cloned();
            match found {
                Some(ep) => {
                    ep.handle(env);
                }
                None => {
                    metrics.undeliverable.fetch_add(1, Ordering::Relaxed);
                }
            }
        };
        if self.clock.is_manual() {
            self.clock.schedule(cost, move |_| deliver());
        } else {
            let clock = self.clock.clone();
            self.pool.execute(move || {
                clock.sleep(cost);
                deliver();
            });
        }
        Ok(())
    }

    /// Record one modeled transfer: the aggregate histogram plus the
    /// per-authority breakdown ([`modeled_metric_name`]) that lets a
    /// feedback policy see which machine's link is slow. The breakdown
    /// rides a bounded [`HistogramFamily`]: the first
    /// [`MODELED_AUTHORITY_CAP`] authorities get their own histogram
    /// (cached handles — no per-transfer name formatting), the rest
    /// share the `other` overflow.
    fn record_modeled(&self, to: &str, cost: Duration) {
        self.obs_modeled.record_duration(cost);
        if self.obs_registry.is_enabled() {
            if let Some(u) = Uri::parse(to) {
                let h = if u.authority.bytes().any(|b| b.is_ascii_uppercase()) {
                    self.obs_modeled_by_auth
                        .histogram(&u.authority.to_ascii_lowercase())
                } else {
                    self.obs_modeled_by_auth.histogram(&u.authority)
                };
                h.record_duration(cost);
            }
        }
    }

    /// Charge a modeled duration to the caller.
    fn charge(&self, cost: Duration) {
        if !cost.is_zero() && !self.clock.is_manual() {
            self.clock.sleep(cost);
        }
    }
}

fn normalize(address: &str) -> String {
    address.trim_end_matches('/').to_ascii_lowercase()
}

/// True when [`normalize`] would return `address` unchanged, so the
/// lookup can probe the map without allocating.
fn is_normalized(address: &str) -> bool {
    !address.ends_with('/') && !address.bytes().any(|b| b.is_ascii_uppercase())
}

/// Max distinct authorities holding their own modeled-transfer
/// histogram; the rest share `transport.inproc.modeled.other_ns`.
pub const MODELED_AUTHORITY_CAP: usize = 64;

/// Metric name of the per-authority modeled-transfer histogram, e.g.
/// `transport.inproc.modeled.machine01_ns`. Feedback-aware schedulers
/// read these to learn which links are slow. Only the first
/// [`MODELED_AUTHORITY_CAP`] authorities get their own series; past
/// the cap the name resolves to an empty histogram and the samples
/// live in the shared overflow.
pub fn modeled_metric_name(authority: &str) -> String {
    format!(
        "transport.inproc.modeled.{}_ns",
        authority.to_ascii_lowercase()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::FnEndpoint;
    use wsrf_xml::Element;

    fn echo() -> Arc<dyn Endpoint> {
        Arc::new(FnEndpoint::new("echo", Some))
    }

    fn ping() -> Envelope {
        Envelope::new(Element::local("Ping"))
    }

    #[test]
    fn call_routes_to_registered_endpoint() {
        let net = InProcNetwork::new(Clock::manual());
        net.register("inproc://m1/Echo", echo());
        let resp = net.call("inproc://m1/Echo", ping()).unwrap();
        assert_eq!(resp, ping());
        let (calls, oneways, bytes, _) = net.metrics.snapshot();
        assert_eq!((calls, oneways), (1, 0));
        assert!(bytes > 0);
    }

    #[test]
    fn modeled_per_authority_histograms_are_bounded() {
        let reg = MetricsRegistry::enabled();
        let net = InProcNetwork::with_metrics(Clock::manual(), NetConfig::default(), &reg);
        // Twice the cap of distinct authorities (every client id is
        // one in real runs) must not mint twice the cap of metrics.
        for i in 0..(MODELED_AUTHORITY_CAP * 2) {
            let addr = format!("inproc://auth{i:03}/Echo");
            net.register(&addr, echo());
            net.call(&addr, ping()).unwrap();
        }
        let snap = reg.snapshot();
        let per_auth = snap
            .entries
            .iter()
            .filter(|(n, _)| n.starts_with("transport.inproc.modeled."))
            .count();
        // cap named series + the shared overflow.
        assert_eq!(per_auth, MODELED_AUTHORITY_CAP + 1);
        // In-cap authorities keep the modeled_metric_name contract the
        // feedback policy reads through (2 samples: request + response).
        assert_eq!(
            snap.histogram(&modeled_metric_name("auth000"))
                .unwrap()
                .count,
            2
        );
        // The long tail lands in the overflow, none of it lost.
        assert_eq!(
            snap.histogram("transport.inproc.modeled.other_ns")
                .unwrap()
                .count,
            2 * MODELED_AUTHORITY_CAP as u64
        );
        assert!(snap
            .histogram(&modeled_metric_name(&format!(
                "auth{:03}",
                MODELED_AUTHORITY_CAP + 1
            )))
            .is_none());
    }

    #[test]
    fn unknown_address_is_no_route() {
        let net = InProcNetwork::new(Clock::manual());
        assert_eq!(
            net.call("inproc://nowhere/X", ping()),
            Err(TransportError::NoRoute("inproc://nowhere/X".into()))
        );
        assert_eq!(
            net.send_oneway("inproc://nowhere/X", ping()),
            Err(TransportError::NoRoute("inproc://nowhere/X".into()))
        );
    }

    #[test]
    fn addresses_are_case_insensitive_and_slash_tolerant() {
        let net = InProcNetwork::new(Clock::manual());
        net.register("inproc://M1/Echo/", echo());
        assert!(net.call("INPROC://m1/echo", ping()).is_ok());
    }

    #[test]
    fn unregister_removes_route() {
        let net = InProcNetwork::new(Clock::manual());
        net.register("inproc://m1/Echo", echo());
        assert!(net.unregister("inproc://m1/Echo"));
        assert!(!net.unregister("inproc://m1/Echo"));
        assert!(matches!(
            net.call("inproc://m1/Echo", ping()),
            Err(TransportError::NoRoute(_))
        ));
    }

    #[test]
    fn oneway_with_zero_cost_delivers_inline_on_manual_clock() {
        use std::sync::atomic::AtomicUsize;
        let net = InProcNetwork::new(Clock::manual());
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        net.register(
            "inproc://m1/Sink",
            Arc::new(FnEndpoint::new("sink", move |_| {
                h.fetch_add(1, Ordering::SeqCst);
                None
            })),
        );
        net.send_oneway("inproc://m1/Sink", ping()).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn oneway_with_modeled_cost_waits_for_advance() {
        use std::sync::atomic::AtomicUsize;
        let clock = Clock::manual();
        let cfg = NetConfig {
            default: crate::netsim::LinkProfile {
                latency: Duration::from_millis(10),
                bandwidth_bps: u64::MAX,
                overhead_bytes: 0,
                inflation: 1.0,
            },
            ..NetConfig::default()
        };
        let net = InProcNetwork::with_config(clock.clone(), cfg);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        net.register(
            "inproc://m1/Sink",
            Arc::new(FnEndpoint::new("sink", move |_| {
                h.fetch_add(1, Ordering::SeqCst);
                None
            })),
        );
        net.send_oneway("inproc://m1/Sink", ping()).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 0, "not yet delivered");
        clock.advance(Duration::from_millis(10));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scheduled_oneway_delivers_to_rebound_endpoint_not_stale_one() {
        // A container that restarts between a message being "on the
        // wire" and arriving must receive it at its new endpoint; a
        // vanished one must count as undeliverable, not deliver to the
        // stale registration.
        use std::sync::atomic::AtomicUsize;
        let clock = Clock::manual();
        let cfg = NetConfig {
            default: crate::netsim::LinkProfile {
                latency: Duration::from_millis(10),
                bandwidth_bps: u64::MAX,
                overhead_bytes: 0,
                inflation: 1.0,
            },
            ..NetConfig::default()
        };
        let net = InProcNetwork::with_config(clock.clone(), cfg);
        let old_hits = Arc::new(AtomicUsize::new(0));
        let new_hits = Arc::new(AtomicUsize::new(0));
        let (o, n) = (old_hits.clone(), new_hits.clone());
        net.register(
            "inproc://m1/Sink",
            Arc::new(FnEndpoint::new("old", move |_| {
                o.fetch_add(1, Ordering::SeqCst);
                None
            })),
        );
        // In flight, then the container restarts (unregister + register).
        net.send_oneway("inproc://m1/Sink", ping()).unwrap();
        net.unregister("inproc://m1/Sink");
        net.register(
            "inproc://m1/Sink",
            Arc::new(FnEndpoint::new("new", move |_| {
                n.fetch_add(1, Ordering::SeqCst);
                None
            })),
        );
        clock.advance(Duration::from_millis(10));
        assert_eq!(old_hits.load(Ordering::SeqCst), 0, "stale endpoint hit");
        assert_eq!(
            new_hits.load(Ordering::SeqCst),
            1,
            "rebound endpoint missed"
        );

        // In flight with no one rebinding: dropped and counted.
        net.send_oneway("inproc://m1/Sink", ping()).unwrap();
        net.unregister("inproc://m1/Sink");
        clock.advance(Duration::from_millis(10));
        assert_eq!(new_hits.load(Ordering::SeqCst), 1);
        assert_eq!(net.metrics.undeliverable.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn endpoint_returning_none_on_call_is_an_error() {
        let net = InProcNetwork::new(Clock::manual());
        net.register(
            "inproc://m1/Sink",
            Arc::new(FnEndpoint::new("sink", |_| None)),
        );
        assert!(matches!(
            net.call("inproc://m1/Sink", ping()),
            Err(TransportError::NoResponse(_))
        ));
    }

    #[test]
    fn modeled_time_accumulates_in_metrics() {
        let clock = Clock::manual();
        let cfg = NetConfig {
            default: crate::netsim::LinkProfile {
                latency: Duration::from_millis(5),
                bandwidth_bps: u64::MAX,
                overhead_bytes: 0,
                inflation: 1.0,
            },
            ..NetConfig::default()
        };
        let net = InProcNetwork::with_config(clock, cfg);
        net.register("inproc://m1/Echo", echo());
        net.call("inproc://m1/Echo", ping()).unwrap();
        let (_, _, _, modeled) = net.metrics.snapshot();
        assert_eq!(modeled, Duration::from_millis(10), "request + response");
    }

    #[test]
    fn scaled_clock_call_experiences_latency() {
        let clock = Clock::scaled(1000.0); // 1 virtual ms = 1 real us
        let cfg = NetConfig {
            default: crate::netsim::LinkProfile {
                latency: Duration::from_secs(1), // 1 virtual s = 1 real ms
                bandwidth_bps: u64::MAX,
                overhead_bytes: 0,
                inflation: 1.0,
            },
            ..NetConfig::default()
        };
        let net = InProcNetwork::with_config(clock, cfg);
        net.register("inproc://m1/Echo", echo());
        let t0 = std::time::Instant::now();
        net.call("inproc://m1/Echo", ping()).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(2),
            "two modeled seconds"
        );
    }
}
