//! Transport-level errors (distinct from SOAP faults, which travel
//! *inside* successfully delivered envelopes).

use std::fmt;

/// An error raised by a transport while routing or moving bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No endpoint is registered at (or listening on) the address.
    NoRoute(String),
    /// Connecting or talking to a real socket failed.
    Io(String),
    /// The peer violated the wire protocol (bad framing, bad HTTP, a
    /// response that is not an envelope, ...).
    Protocol(String),
    /// A request/response exchange got no response (the endpoint
    /// treated it as one-way).
    NoResponse(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::NoRoute(a) => write!(f, "no route to '{a}'"),
            TransportError::Io(m) => write!(f, "transport i/o error: {m}"),
            TransportError::Protocol(m) => write!(f, "protocol error: {m}"),
            TransportError::NoResponse(a) => write!(f, "no response from '{a}'"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_address() {
        let e = TransportError::NoRoute("inproc://m1/Svc".into());
        assert_eq!(e.to_string(), "no route to 'inproc://m1/Svc'");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused");
        let t: TransportError = io.into();
        assert!(matches!(t, TransportError::Io(_)));
    }
}
