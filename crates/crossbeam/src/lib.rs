//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`channel`] — an unbounded MPMC channel whose `Receiver` is
//!   `Clone` (every clone drains the *same* queue, so cloned receivers
//!   act as competing consumers, exactly how the transport thread pool
//!   uses them).
//! * [`thread::scope`] — scoped spawns, delegating to
//!   `std::thread::scope` with crossbeam's closure signature.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half; cloning adds another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloning adds another *competing* consumer over
    /// the same queue (MPMC), unlike `std::sync::mpsc`.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            st.items.push_back(item);
            drop(st);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item is available or every `Sender` is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(item) = st.items.pop_front() {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(item) = st.items.pop_front() {
                Ok(item)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            let st = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            st.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }
}

pub mod thread {
    /// Scoped threads with crossbeam's closure signature: spawned
    /// closures receive a `&Scope` argument (unused by this shim's
    /// callers beyond nesting spawns).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = self.inner;
            ScopedJoinHandle {
                inner: scope.spawn(move || f(&Scope { inner: scope })),
            }
        }
    }

    /// Runs `f` with a scope handle; all threads spawned through the
    /// scope are joined before `scope` returns. Returns `Err` if any
    /// unjoined spawned thread panicked, mirroring crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let result = std::thread::scope(|s| f(&Scope { inner: s }));
        Ok(result)
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn cloned_receivers_compete_for_items() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = AtomicU64::new(0);
        let seen = AtomicU64::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                let seen = &seen;
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(u64::from(v), Ordering::Relaxed);
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(total.load(Ordering::Relaxed), (0..100u64).sum::<u64>());
    }

    #[test]
    fn recv_errors_once_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn scope_joins_and_propagates_results() {
        let mut vals = vec![0u32; 3];
        crate::scope(|s| {
            for (i, v) in vals.iter_mut().enumerate() {
                s.spawn(move |_| *v = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(vals, vec![1, 2, 3]);
    }
}
