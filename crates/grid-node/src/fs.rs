//! The per-machine simulated filesystem.
//!
//! Paths are `/`-separated relative paths (`jobs/dir-3/input.dat`).
//! File contents are [`bytes::Bytes`], so cross-machine "transfers"
//! inside the simulation are cheap reference-counted clones while the
//! *modeled* cost is charged by the network layer.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path (or a parent directory) does not exist.
    NotFound(String),
    /// Target already exists.
    AlreadyExists(String),
    /// A path component that should be a directory is a file (or vice
    /// versa).
    NotADirectory(String),
    /// The write would exceed the machine's quota.
    QuotaExceeded { requested: u64, available: u64 },
    /// Empty path, empty component, or `..`.
    InvalidPath(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: '{p}'"),
            FsError::AlreadyExists(p) => write!(f, "already exists: '{p}'"),
            FsError::NotADirectory(p) => write!(f, "not a directory: '{p}'"),
            FsError::QuotaExceeded {
                requested,
                available,
            } => {
                write!(
                    f,
                    "quota exceeded: need {requested} bytes, {available} available"
                )
            }
            FsError::InvalidPath(p) => write!(f, "invalid path: '{p}'"),
        }
    }
}

impl std::error::Error for FsError {}

/// A directory entry as reported by [`SimFs::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirEntry {
    /// A file and its size in bytes.
    File(String, u64),
    /// A subdirectory name.
    Dir(String),
}

impl DirEntry {
    /// The entry's name.
    pub fn name(&self) -> &str {
        match self {
            DirEntry::File(n, _) => n,
            DirEntry::Dir(n) => n,
        }
    }
}

enum Node {
    File(Bytes),
    Dir(BTreeMap<String, Node>),
}

/// The simulated filesystem of one machine.
pub struct SimFs {
    root: Mutex<BTreeMap<String, Node>>,
    quota: Option<u64>,
    used: AtomicU64,
    unique: AtomicU64,
}

fn split(path: &str) -> Result<Vec<&str>, FsError> {
    let parts: Vec<&str> = path
        .split('/')
        .filter(|p| !p.is_empty() && *p != ".")
        .collect();
    if parts.is_empty() || parts.contains(&"..") {
        return Err(FsError::InvalidPath(path.to_string()));
    }
    Ok(parts)
}

impl SimFs {
    /// Unlimited filesystem.
    pub fn new() -> Self {
        SimFs {
            root: Mutex::new(BTreeMap::new()),
            quota: None,
            used: AtomicU64::new(0),
            unique: AtomicU64::new(1),
        }
    }

    /// Filesystem with a byte quota.
    pub fn with_quota(quota_bytes: u64) -> Self {
        SimFs {
            quota: Some(quota_bytes),
            ..SimFs::new()
        }
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Navigate to the parent map of `parts`; runs `f` on it.
    fn with_parent<R>(
        &self,
        parts: &[&str],
        create_parents: bool,
        f: impl FnOnce(&mut BTreeMap<String, Node>, &str) -> Result<R, FsError>,
    ) -> Result<R, FsError> {
        let mut root = self.root.lock();
        let mut cur: &mut BTreeMap<String, Node> = &mut root;
        for part in &parts[..parts.len() - 1] {
            if create_parents && !cur.contains_key(*part) {
                cur.insert(part.to_string(), Node::Dir(BTreeMap::new()));
            }
            match cur.get_mut(*part) {
                Some(Node::Dir(d)) => cur = d,
                Some(Node::File(_)) => return Err(FsError::NotADirectory(part.to_string())),
                None => return Err(FsError::NotFound(part.to_string())),
            }
        }
        f(cur, parts[parts.len() - 1])
    }

    /// Create a directory, creating parents as needed. Fails if the
    /// leaf exists.
    pub fn create_dir(&self, path: &str) -> Result<(), FsError> {
        let parts = split(path)?;
        self.with_parent(&parts, true, |dir, leaf| {
            if dir.contains_key(leaf) {
                return Err(FsError::AlreadyExists(path.to_string()));
            }
            dir.insert(leaf.to_string(), Node::Dir(BTreeMap::new()));
            Ok(())
        })
    }

    /// Create a fresh uniquely named directory under `parent` (which is
    /// created if needed); returns its path. This is what the FSS uses
    /// to make working directories.
    pub fn create_unique_dir(&self, parent: &str, prefix: &str) -> Result<String, FsError> {
        loop {
            let n = self.unique.fetch_add(1, Ordering::Relaxed);
            let path = format!("{}/{}-{}", parent.trim_end_matches('/'), prefix, n);
            match self.create_dir(&path) {
                Ok(()) => return Ok(path),
                Err(FsError::AlreadyExists(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Write a file (overwrites), creating parent directories.
    pub fn write(&self, path: &str, content: impl Into<Bytes>) -> Result<(), FsError> {
        let content = content.into();
        let parts = split(path)?;
        let new_len = content.len() as u64;
        // Quota check uses the delta vs any existing file.
        let old_len = self.file_size(path).unwrap_or(0);
        if let Some(q) = self.quota {
            let used = self.used.load(Ordering::Relaxed);
            let projected = used - old_len + new_len;
            if projected > q {
                return Err(FsError::QuotaExceeded {
                    requested: new_len,
                    available: q.saturating_sub(used - old_len),
                });
            }
        }
        self.with_parent(&parts, true, |dir, leaf| {
            if matches!(dir.get(leaf), Some(Node::Dir(_))) {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            dir.insert(leaf.to_string(), Node::File(content));
            Ok(())
        })?;
        self.used.fetch_add(new_len, Ordering::Relaxed);
        self.used.fetch_sub(old_len, Ordering::Relaxed);
        Ok(())
    }

    /// Read a file's contents (cheap clone).
    pub fn read(&self, path: &str) -> Result<Bytes, FsError> {
        let parts = split(path)?;
        self.with_parent(&parts, false, |dir, leaf| match dir.get(leaf) {
            Some(Node::File(b)) => Ok(b.clone()),
            Some(Node::Dir(_)) => Err(FsError::NotADirectory(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        })
    }

    /// Size of a file, if it exists.
    pub fn file_size(&self, path: &str) -> Option<u64> {
        let parts = split(path).ok()?;
        self.with_parent(&parts, false, |dir, leaf| match dir.get(leaf) {
            Some(Node::File(b)) => Ok(b.len() as u64),
            _ => Err(FsError::NotFound(path.to_string())),
        })
        .ok()
    }

    /// List a directory.
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>, FsError> {
        let parts = split(path)?;
        self.with_parent(&parts, false, |dir, leaf| match dir.get(leaf) {
            Some(Node::Dir(d)) => Ok(d
                .iter()
                .map(|(name, node)| match node {
                    Node::File(b) => DirEntry::File(name.clone(), b.len() as u64),
                    Node::Dir(_) => DirEntry::Dir(name.clone()),
                })
                .collect()),
            Some(Node::File(_)) => Err(FsError::NotADirectory(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        })
    }

    /// True if a file or directory exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        let Ok(parts) = split(path) else { return false };
        self.with_parent(&parts, false, |dir, leaf| {
            dir.get(leaf)
                .map(|_| ())
                .ok_or_else(|| FsError::NotFound(path.to_string()))
        })
        .is_ok()
    }

    /// Delete a file or (recursively) a directory.
    pub fn delete(&self, path: &str) -> Result<(), FsError> {
        let parts = split(path)?;
        let removed = self.with_parent(&parts, false, |dir, leaf| {
            dir.remove(leaf)
                .ok_or_else(|| FsError::NotFound(path.to_string()))
        })?;
        let freed = node_bytes(&removed);
        self.used.fetch_sub(freed, Ordering::Relaxed);
        Ok(())
    }

    /// Move a file within this filesystem (the same-machine fast path:
    /// "the FSS simply moves the file within the portion of the file
    /// system it controls").
    pub fn move_file(&self, from: &str, to: &str) -> Result<(), FsError> {
        let content = self.read(from)?;
        // Write first so a quota failure leaves the source intact; the
        // delta accounting in `write` treats it as a copy until delete.
        self.write(to, content)?;
        self.delete(from)
    }

    /// Directory size (recursive), if the path is a directory.
    pub fn dir_bytes(&self, path: &str) -> Result<u64, FsError> {
        let parts = split(path)?;
        self.with_parent(&parts, false, |dir, leaf| match dir.get(leaf) {
            Some(n @ Node::Dir(_)) => Ok(node_bytes(n)),
            Some(Node::File(_)) => Err(FsError::NotADirectory(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        })
    }
}

impl Default for SimFs {
    fn default() -> Self {
        Self::new()
    }
}

fn node_bytes(n: &Node) -> u64 {
    match n {
        Node::File(b) => b.len() as u64,
        Node::Dir(d) => d.values().map(node_bytes).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let fs = SimFs::new();
        fs.write("a/b/file.txt", &b"hello"[..]).unwrap();
        assert_eq!(&fs.read("a/b/file.txt").unwrap()[..], b"hello");
        assert_eq!(fs.file_size("a/b/file.txt"), Some(5));
        assert!(fs.exists("a/b"));
        assert!(fs.exists("a/b/file.txt"));
        assert!(!fs.exists("a/c"));
    }

    #[test]
    fn overwrite_replaces_and_accounts() {
        let fs = SimFs::new();
        fs.write("f", vec![0u8; 100]).unwrap();
        fs.write("f", vec![0u8; 40]).unwrap();
        assert_eq!(fs.used_bytes(), 40);
    }

    #[test]
    fn read_missing_is_not_found() {
        let fs = SimFs::new();
        assert!(matches!(fs.read("nope"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.read("a/b"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn create_dir_and_list() {
        let fs = SimFs::new();
        fs.create_dir("jobs/j1").unwrap();
        fs.write("jobs/j1/out.dat", vec![1u8; 10]).unwrap();
        fs.create_dir("jobs/j1/sub").unwrap();
        let entries = fs.list("jobs/j1").unwrap();
        assert_eq!(
            entries,
            vec![
                DirEntry::File("out.dat".into(), 10),
                DirEntry::Dir("sub".into())
            ]
        );
        assert!(matches!(
            fs.create_dir("jobs/j1"),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.list("jobs/j1/out.dat"),
            Err(FsError::NotADirectory(_))
        ));
    }

    #[test]
    fn unique_dirs_are_unique() {
        let fs = SimFs::new();
        let a = fs.create_unique_dir("jobs", "job").unwrap();
        let b = fs.create_unique_dir("jobs", "job").unwrap();
        assert_ne!(a, b);
        assert!(fs.exists(&a));
        assert!(fs.exists(&b));
    }

    #[test]
    fn quota_enforced_with_delta_accounting() {
        let fs = SimFs::with_quota(100);
        fs.write("a", vec![0u8; 80]).unwrap();
        assert!(matches!(
            fs.write("b", vec![0u8; 30]),
            Err(FsError::QuotaExceeded { .. })
        ));
        // Overwriting the 80-byte file with 90 bytes fits (delta +10).
        fs.write("a", vec![0u8; 90]).unwrap();
        assert_eq!(fs.used_bytes(), 90);
        fs.delete("a").unwrap();
        fs.write("b", vec![0u8; 30]).unwrap();
    }

    #[test]
    fn delete_directory_frees_space() {
        let fs = SimFs::new();
        fs.write("d/x", vec![0u8; 50]).unwrap();
        fs.write("d/sub/y", vec![0u8; 25]).unwrap();
        assert_eq!(fs.dir_bytes("d").unwrap(), 75);
        fs.delete("d").unwrap();
        assert_eq!(fs.used_bytes(), 0);
        assert!(!fs.exists("d"));
    }

    #[test]
    fn move_file_same_machine() {
        let fs = SimFs::new();
        fs.write("src/f.bin", vec![7u8; 10]).unwrap();
        fs.create_dir("dst").unwrap();
        fs.move_file("src/f.bin", "dst/g.bin").unwrap();
        assert!(!fs.exists("src/f.bin"));
        assert_eq!(&fs.read("dst/g.bin").unwrap()[..], &[7u8; 10]);
        assert_eq!(fs.used_bytes(), 10);
    }

    #[test]
    fn invalid_paths_rejected() {
        let fs = SimFs::new();
        assert!(matches!(fs.write("", vec![]), Err(FsError::InvalidPath(_))));
        assert!(matches!(
            fs.write("a/../b", vec![]),
            Err(FsError::InvalidPath(_))
        ));
        assert!(matches!(fs.read("///"), Err(FsError::InvalidPath(_))));
    }

    #[test]
    fn write_through_file_component_fails() {
        let fs = SimFs::new();
        fs.write("a", vec![1]).unwrap();
        assert!(matches!(
            fs.write("a/b", vec![2]),
            Err(FsError::NotADirectory(_))
        ));
        assert!(
            matches!(fs.write("a", vec![0u8; 3]), Ok(())),
            "overwrite file ok"
        );
        assert!(fs.create_dir("a").is_err(), "dir over file");
    }

    #[test]
    fn concurrent_writers_do_not_corrupt_accounting() {
        let fs = std::sync::Arc::new(SimFs::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let fs = fs.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        fs.write(&format!("t{t}/f{i}"), vec![0u8; 10]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(fs.used_bytes(), 8 * 50 * 10);
    }
}
