//! The ProcSpawn service — the analogue of "WSRF.NET's process
//! launcher Windows Service to start a new process as a particular
//! user".
//!
//! Given an executable path, working directory and credentials, the
//! spawner authenticates the user, parses the staged
//! [`crate::program::JobProgram`], verifies its declared inputs are
//! present, runs the simulated work on the machine's CPU, writes the
//! declared outputs into the working directory and reports the exit
//! code — "when the job exits, the ProcSpawn service sends a
//! notification message to the ES with the job's exit code".

use std::sync::Arc;

use crate::cpu::{Completion, Pid, ProcStatus};
use crate::machine::Machine;
use crate::program::{JobProgram, EXIT_KILLED, EXIT_MISSING_INPUT, EXIT_OUTPUT_FAILED};

/// Errors raised while *starting* a process (post-start failures are
/// exit codes, like real processes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnError {
    /// Unknown user or wrong password.
    BadCredentials(String),
    /// Executable not found.
    NoSuchExecutable(String),
    /// The executable is not a UVACG job manifest.
    NotExecutable(String),
    /// Working directory does not exist.
    NoSuchWorkdir(String),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::BadCredentials(u) => write!(f, "cannot run as user '{u}': bad credentials"),
            SpawnError::NoSuchExecutable(p) => write!(f, "no such executable: '{p}'"),
            SpawnError::NotExecutable(p) => write!(f, "'{p}' is not a runnable program"),
            SpawnError::NoSuchWorkdir(p) => write!(f, "no such working directory: '{p}'"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// The process spawner of one machine.
pub struct ProcSpawn {
    machine: Arc<Machine>,
}

impl ProcSpawn {
    /// Attach to a machine.
    pub fn new(machine: Arc<Machine>) -> Self {
        ProcSpawn { machine }
    }

    /// The machine this spawner controls.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// Start `executable` in `workdir` as `user`. `on_exit(code,
    /// cpu_seconds)` fires when the process terminates for any reason.
    pub fn spawn(
        &self,
        executable: &str,
        workdir: &str,
        user: &str,
        password: &str,
        on_exit: impl FnOnce(i32, f64) + Send + 'static,
    ) -> Result<Pid, SpawnError> {
        if !self.machine.check_credentials(user, password) {
            return Err(SpawnError::BadCredentials(user.to_string()));
        }
        if !self.machine.fs.exists(workdir) {
            return Err(SpawnError::NoSuchWorkdir(workdir.to_string()));
        }
        let bytes = self
            .machine
            .fs
            .read(executable)
            .map_err(|_| SpawnError::NoSuchExecutable(executable.to_string()))?;
        let program = JobProgram::parse(&bytes)
            .ok_or_else(|| SpawnError::NotExecutable(executable.to_string()))?;

        // Input check happens "at exec time": a missing input is a
        // *process failure* (exit 66), not a spawn error — mirroring a
        // real program crashing on a missing file.
        let missing_input = program
            .reads
            .iter()
            .any(|r| !self.machine.fs.exists(&format!("{workdir}/{r}")));

        let fs = self.machine.fs.clone();
        let workdir_owned = workdir.to_string();
        let work = if missing_input {
            0.0
        } else {
            program.cpu_seconds
        };
        let pid = self.machine.cpu.spawn(work, move |completion, cpu_used| {
            let code = match completion {
                Completion::Killed => EXIT_KILLED,
                Completion::Finished if missing_input => EXIT_MISSING_INPUT,
                Completion::Finished => {
                    // Write declared outputs; quota failures surface as
                    // a nonzero exit code.
                    let mut failed = false;
                    for (name, size) in &program.outputs {
                        let content = JobProgram::generate_output(name, *size);
                        if fs
                            .write(&format!("{workdir_owned}/{name}"), content)
                            .is_err()
                        {
                            failed = true;
                            break;
                        }
                    }
                    if failed {
                        EXIT_OUTPUT_FAILED
                    } else {
                        program.exit_code
                    }
                }
            };
            on_exit(code, cpu_used);
        });
        Ok(pid)
    }

    /// Kill a process.
    pub fn kill(&self, pid: Pid) -> bool {
        self.machine.cpu.kill(pid)
    }

    /// Status of a process.
    pub fn status(&self, pid: Pid) -> Option<ProcStatus> {
        self.machine.cpu.status(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;
    use parking_lot::Mutex;
    use simclock::Clock;
    use std::time::Duration;

    struct Fixture {
        clock: Clock,
        machine: Arc<Machine>,
        spawner: ProcSpawn,
        exits: Arc<Mutex<Vec<(i32, f64)>>>,
    }

    fn fixture() -> Fixture {
        let clock = Clock::manual();
        let machine = Machine::new(
            MachineSpec::new("m1")
                .with_cpu_mhz(2000)
                .with_user("alice", "pw"),
            clock.clone(),
        );
        let spawner = ProcSpawn::new(machine.clone());
        Fixture {
            clock,
            machine,
            spawner,
            exits: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn exit_cb(f: &Fixture) -> impl FnOnce(i32, f64) + Send + 'static {
        let exits = f.exits.clone();
        move |code, used| exits.lock().push((code, used))
    }

    fn stage(f: &Fixture, program: &JobProgram) -> (String, String) {
        let workdir = f.machine.fs.create_unique_dir("jobs", "job").unwrap();
        let exe = format!("{workdir}/job.exe");
        f.machine.fs.write(&exe, program.to_manifest()).unwrap();
        (exe, workdir)
    }

    #[test]
    fn successful_run_writes_outputs_and_reports_exit() {
        let f = fixture();
        let prog = JobProgram::compute(4.0).writing("out.dat", 128).exiting(0);
        let (exe, workdir) = stage(&f, &prog);
        f.spawner
            .spawn(&exe, &workdir, "alice", "pw", exit_cb(&f))
            .unwrap();
        // 4 cpu-sec at 2x speed = 2 virtual seconds.
        f.clock.advance(Duration::from_secs_f64(2.1));
        let exits = f.exits.lock().clone();
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].0, 0);
        assert!((exits[0].1 - 4.0).abs() < 1e-6, "cpu time {}", exits[0].1);
        assert_eq!(
            f.machine.fs.file_size(&format!("{workdir}/out.dat")),
            Some(128)
        );
    }

    #[test]
    fn bad_credentials_rejected_at_spawn() {
        let f = fixture();
        let (exe, workdir) = stage(&f, &JobProgram::compute(1.0));
        assert_eq!(
            f.spawner.spawn(&exe, &workdir, "alice", "WRONG", |_, _| {}),
            Err(SpawnError::BadCredentials("alice".into()))
        );
        assert_eq!(
            f.spawner.spawn(&exe, &workdir, "mallory", "pw", |_, _| {}),
            Err(SpawnError::BadCredentials("mallory".into()))
        );
    }

    #[test]
    fn missing_executable_and_workdir() {
        let f = fixture();
        let (exe, workdir) = stage(&f, &JobProgram::compute(1.0));
        assert!(matches!(
            f.spawner
                .spawn("jobs/nope.exe", &workdir, "alice", "pw", |_, _| {}),
            Err(SpawnError::NoSuchExecutable(_))
        ));
        assert!(matches!(
            f.spawner.spawn(&exe, "jobs/nope", "alice", "pw", |_, _| {}),
            Err(SpawnError::NoSuchWorkdir(_))
        ));
    }

    #[test]
    fn garbage_executable_is_not_runnable() {
        let f = fixture();
        let workdir = f.machine.fs.create_unique_dir("jobs", "job").unwrap();
        let exe = format!("{workdir}/bad.exe");
        f.machine
            .fs
            .write(&exe, &b"#!/bin/sh\necho hi"[..])
            .unwrap();
        assert!(matches!(
            f.spawner.spawn(&exe, &workdir, "alice", "pw", |_, _| {}),
            Err(SpawnError::NotExecutable(_))
        ));
    }

    #[test]
    fn missing_input_exits_66() {
        let f = fixture();
        let prog = JobProgram::compute(5.0).reading("input.dat");
        let (exe, workdir) = stage(&f, &prog);
        f.spawner
            .spawn(&exe, &workdir, "alice", "pw", exit_cb(&f))
            .unwrap();
        f.clock.advance(Duration::from_millis(1));
        let exits = f.exits.lock().clone();
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].0, EXIT_MISSING_INPUT);
    }

    #[test]
    fn present_input_allows_success() {
        let f = fixture();
        let prog = JobProgram::compute(1.0).reading("input.dat");
        let (exe, workdir) = stage(&f, &prog);
        f.machine
            .fs
            .write(&format!("{workdir}/input.dat"), &b"data"[..])
            .unwrap();
        f.spawner
            .spawn(&exe, &workdir, "alice", "pw", exit_cb(&f))
            .unwrap();
        f.clock.advance(Duration::from_secs(1));
        assert_eq!(f.exits.lock()[0].0, 0);
    }

    #[test]
    fn kill_reports_minus_nine() {
        let f = fixture();
        let (exe, workdir) = stage(&f, &JobProgram::compute(100.0));
        let pid = f
            .spawner
            .spawn(&exe, &workdir, "alice", "pw", exit_cb(&f))
            .unwrap();
        f.clock.advance(Duration::from_secs(1));
        assert!(f.spawner.kill(pid));
        assert_eq!(f.exits.lock()[0].0, EXIT_KILLED);
        assert!(matches!(
            f.spawner.status(pid),
            Some(ProcStatus::Done {
                completion: Completion::Killed,
                ..
            })
        ));
    }

    #[test]
    fn quota_failure_exits_73() {
        let clock = Clock::manual();
        let machine = Machine::new(MachineSpec::new("m1").with_disk_quota(256), clock.clone());
        let spawner = ProcSpawn::new(machine.clone());
        let workdir = machine.fs.create_unique_dir("jobs", "job").unwrap();
        let prog = JobProgram::compute(1.0).writing("huge.dat", 10_000);
        let exe = format!("{workdir}/job.exe");
        machine.fs.write(&exe, prog.to_manifest()).unwrap();
        let exits = Arc::new(Mutex::new(Vec::new()));
        let e = exits.clone();
        spawner
            .spawn(&exe, &workdir, "griduser", "gridpass", move |c, u| {
                e.lock().push((c, u))
            })
            .unwrap();
        clock.advance(Duration::from_secs(2));
        assert_eq!(exits.lock()[0].0, EXIT_OUTPUT_FAILED);
    }

    #[test]
    fn nonzero_program_exit_code_propagates() {
        let f = fixture();
        let (exe, workdir) = stage(&f, &JobProgram::compute(0.5).exiting(17));
        f.spawner
            .spawn(&exe, &workdir, "alice", "pw", exit_cb(&f))
            .unwrap();
        f.clock.advance(Duration::from_secs(1));
        assert_eq!(f.exits.lock()[0].0, 17);
    }

    #[test]
    fn processes_on_one_machine_share_cpu() {
        let f = fixture();
        let (exe, workdir) = stage(&f, &JobProgram::compute(2.0));
        f.spawner
            .spawn(&exe, &workdir, "alice", "pw", exit_cb(&f))
            .unwrap();
        f.spawner
            .spawn(&exe, &workdir, "alice", "pw", exit_cb(&f))
            .unwrap();
        // Each needs 1 virtual second alone (2 cpu-sec @2x); sharing
        // doubles that.
        f.clock.advance(Duration::from_secs_f64(1.5));
        assert!(f.exits.lock().is_empty());
        f.clock.advance(Duration::from_secs_f64(0.6));
        assert_eq!(f.exits.lock().len(), 2);
    }
}
