//! The synthetic "executable" format.
//!
//! The paper ships real Windows binaries through the File System
//! Service and runs them via ProcSpawn. Our substitution keeps the
//! whole staging path intact — executables are files, uploaded into
//! the working directory like any other input — but their *content* is
//! a small manifest describing the work to simulate:
//!
//! ```text
//! UVACG-JOB v1
//! cpu=2.5              # CPU-seconds of work at the 1 GHz reference
//! read=input1.dat      # input file that must exist in the workdir
//! out=result.dat:4096  # output file and its size in bytes
//! exit=0               # exit code on success
//! ```

use bytes::Bytes;

/// A parsed job program.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProgram {
    /// CPU-seconds of work at the 1 GHz reference speed.
    pub cpu_seconds: f64,
    /// Input file names (relative to the working directory) the program
    /// requires; a missing one aborts the run with exit code 66.
    pub reads: Vec<String>,
    /// `(name, bytes)` outputs written to the working directory on
    /// completion.
    pub outputs: Vec<(String, u64)>,
    /// Exit code reported on normal completion.
    pub exit_code: i32,
}

/// Exit code used when a required input file is missing.
pub const EXIT_MISSING_INPUT: i32 = 66;
/// Exit code used when writing an output fails (quota).
pub const EXIT_OUTPUT_FAILED: i32 = 73;
/// Exit code reported for killed processes.
pub const EXIT_KILLED: i32 = -9;

impl JobProgram {
    /// A pure-compute program.
    pub fn compute(cpu_seconds: f64) -> Self {
        JobProgram {
            cpu_seconds,
            reads: Vec::new(),
            outputs: Vec::new(),
            exit_code: 0,
        }
    }

    /// Builder: require an input file.
    pub fn reading(mut self, name: impl Into<String>) -> Self {
        self.reads.push(name.into());
        self
    }

    /// Builder: produce an output file.
    pub fn writing(mut self, name: impl Into<String>, bytes: u64) -> Self {
        self.outputs.push((name.into(), bytes));
        self
    }

    /// Builder: exit with a specific code.
    pub fn exiting(mut self, code: i32) -> Self {
        self.exit_code = code;
        self
    }

    /// Serialize to the executable manifest format.
    pub fn to_manifest(&self) -> Bytes {
        let mut s = String::from("UVACG-JOB v1\n");
        s.push_str(&format!("cpu={}\n", self.cpu_seconds));
        for r in &self.reads {
            s.push_str(&format!("read={r}\n"));
        }
        for (name, size) in &self.outputs {
            s.push_str(&format!("out={name}:{size}\n"));
        }
        s.push_str(&format!("exit={}\n", self.exit_code));
        Bytes::from(s)
    }

    /// Parse an executable's bytes. `None` for non-UVACG binaries or
    /// malformed manifests.
    pub fn parse(bytes: &[u8]) -> Option<JobProgram> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.lines();
        if lines.next()?.trim() != "UVACG-JOB v1" {
            return None;
        }
        let mut prog = JobProgram::compute(0.0);
        for line in lines {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once('=')?;
            match k.trim() {
                "cpu" => prog.cpu_seconds = v.trim().parse().ok()?,
                "read" => prog.reads.push(v.trim().to_string()),
                "out" => {
                    let (name, size) = v.trim().rsplit_once(':')?;
                    prog.outputs.push((name.to_string(), size.parse().ok()?));
                }
                "exit" => prog.exit_code = v.trim().parse().ok()?,
                _ => return None,
            }
        }
        if prog.cpu_seconds < 0.0 {
            return None;
        }
        Some(prog)
    }

    /// Deterministic output file content: size bytes derived from the
    /// file name, so downstream jobs can verify what they read.
    pub fn generate_output(name: &str, size: u64) -> Bytes {
        let seed = name.bytes().fold(0u8, u8::wrapping_add);
        let mut v = Vec::with_capacity(size as usize);
        for i in 0..size {
            v.push(seed.wrapping_add((i % 251) as u8));
        }
        Bytes::from(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let p = JobProgram::compute(2.5)
            .reading("input1.dat")
            .reading("input2.dat")
            .writing("result.dat", 4096)
            .exiting(3);
        let back = JobProgram::parse(&p.to_manifest()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn rejects_foreign_binaries() {
        assert_eq!(JobProgram::parse(b"MZ\x90\x00real windows binary"), None);
        assert_eq!(JobProgram::parse(b""), None);
        assert_eq!(JobProgram::parse(&[0xFF, 0xFE, 0x00]), None);
    }

    #[test]
    fn rejects_malformed_manifests() {
        assert_eq!(JobProgram::parse(b"UVACG-JOB v1\ncpu=abc\n"), None);
        assert_eq!(JobProgram::parse(b"UVACG-JOB v1\nout=noSize\n"), None);
        assert_eq!(JobProgram::parse(b"UVACG-JOB v1\nbogus=1\n"), None);
        assert_eq!(JobProgram::parse(b"UVACG-JOB v1\ncpu=-1\n"), None);
    }

    #[test]
    fn comments_and_blank_lines_allowed() {
        let m = b"UVACG-JOB v1\n# header\ncpu=1.0  # one second\n\nexit=0\n";
        assert_eq!(JobProgram::parse(m).unwrap().cpu_seconds, 1.0);
    }

    #[test]
    fn output_names_may_contain_colons() {
        let p = JobProgram::compute(0.0).writing("odd:name.dat", 8);
        let back = JobProgram::parse(&p.to_manifest()).unwrap();
        assert_eq!(back.outputs, vec![("odd:name.dat".to_string(), 8)]);
    }

    #[test]
    fn generated_output_is_deterministic_and_sized() {
        let a = JobProgram::generate_output("result.dat", 1000);
        let b = JobProgram::generate_output("result.dat", 1000);
        let c = JobProgram::generate_output("other.dat", 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
    }
}
