//! The processor-sharing CPU simulator.
//!
//! Model: a machine has `c` cores at a speed factor `s` (relative to a
//! 1 GHz reference). With `n` runnable processes, each progresses at
//! `s × min(1, c/n)` CPU-seconds per virtual second — the classic
//! egalitarian processor-sharing queue, which is what a timeshared
//! Windows box approximates. On every arrival/departure the simulator
//! settles accrued work and reschedules the next completion event on
//! the virtual clock, so completions are exact (no ticking).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::{Clock, SimTime, TimerId};

/// Process identifier (per machine).
pub type Pid = u64;

/// Completion reason passed to the spawner's callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The process consumed all its work.
    Finished,
    /// The process was killed.
    Killed,
}

/// Externally visible process status.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcStatus {
    /// Still running; CPU-seconds consumed so far.
    Running { cpu_used: f64 },
    /// Completed (finished or killed); CPU-seconds consumed.
    Done {
        completion: Completion,
        cpu_used: f64,
    },
}

type CompleteFn = Box<dyn FnOnce(Completion, f64) + Send>;

struct RunningProc {
    remaining: f64,
    cpu_used: f64,
    on_complete: Option<CompleteFn>,
}

struct State {
    running: HashMap<Pid, RunningProc>,
    done: HashMap<Pid, (Completion, f64)>,
    next_pid: Pid,
    last_settle: SimTime,
    timer: Option<TimerId>,
}

type UtilizationHook = Box<dyn Fn(f64) + Send + Sync>;

struct Inner {
    clock: Clock,
    cores: f64,
    speed: f64,
    state: Mutex<State>,
    hooks: Mutex<Vec<UtilizationHook>>,
}

/// A machine's CPU. Clone-able handle (`Arc` inside).
#[derive(Clone)]
pub struct CpuSim {
    inner: Arc<Inner>,
}

const EPS: f64 = 1e-9;

impl CpuSim {
    /// A CPU with `cores` cores at `speed` × the 1 GHz reference.
    pub fn new(clock: Clock, cores: u32, speed: f64) -> Self {
        assert!(cores > 0 && speed > 0.0);
        CpuSim {
            inner: Arc::new(Inner {
                clock: clock.clone(),
                cores: cores as f64,
                speed,
                state: Mutex::new(State {
                    running: HashMap::new(),
                    done: HashMap::new(),
                    next_pid: 1,
                    last_settle: clock.now(),
                    timer: None,
                }),
                hooks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Install a hook invoked (with the new utilization) after every
    /// arrival or departure event.
    pub fn add_utilization_hook(&self, f: impl Fn(f64) + Send + Sync + 'static) {
        self.inner.hooks.lock().push(Box::new(f));
    }

    /// Start a process with `work` CPU-seconds (reference speed) of
    /// demand. `on_complete(reason, cpu_used)` runs when it finishes or
    /// is killed.
    pub fn spawn(
        &self,
        work: f64,
        on_complete: impl FnOnce(Completion, f64) + Send + 'static,
    ) -> Pid {
        let mut callbacks = Vec::new();
        let pid = {
            let mut st = self.inner.state.lock();
            self.settle(&mut st);
            let pid = st.next_pid;
            st.next_pid += 1;
            st.running.insert(
                pid,
                RunningProc {
                    remaining: work.max(0.0),
                    cpu_used: 0.0,
                    on_complete: Some(Box::new(on_complete)),
                },
            );
            // Zero-work processes complete immediately.
            self.harvest(&mut st, &mut callbacks);
            self.reschedule(&mut st);
            pid
        };
        self.after_event(callbacks);
        pid
    }

    /// Kill a running process. Returns false if it is not running.
    pub fn kill(&self, pid: Pid) -> bool {
        let mut callbacks = Vec::new();
        let killed = {
            let mut st = self.inner.state.lock();
            self.settle(&mut st);
            match st.running.remove(&pid) {
                Some(mut p) => {
                    let cb = p.on_complete.take();
                    st.done.insert(pid, (Completion::Killed, p.cpu_used));
                    if let Some(cb) = cb {
                        callbacks.push((cb, Completion::Killed, p.cpu_used));
                    }
                    self.reschedule(&mut st);
                    true
                }
                None => false,
            }
        };
        self.after_event(callbacks);
        killed
    }

    /// Kill every running process (machine crash simulation). Exit
    /// callbacks do NOT run — a crashed machine notifies nobody.
    pub fn kill_all_silently(&self) -> usize {
        let mut guard = self.inner.state.lock();
        self.settle(&mut guard);
        let st = &mut *guard; // split field borrows through the guard
        let n = st.running.len();
        for (pid, mut p) in st.running.drain() {
            p.on_complete.take(); // dropped, never invoked
            st.done.insert(pid, (Completion::Killed, p.cpu_used));
        }
        self.reschedule(&mut guard);
        n
    }

    /// Status of a process (None for unknown pids).
    pub fn status(&self, pid: Pid) -> Option<ProcStatus> {
        let mut st = self.inner.state.lock();
        self.settle(&mut st);
        if let Some(p) = st.running.get(&pid) {
            return Some(ProcStatus::Running {
                cpu_used: p.cpu_used,
            });
        }
        st.done.get(&pid).map(|(c, used)| ProcStatus::Done {
            completion: *c,
            cpu_used: *used,
        })
    }

    /// Number of running processes.
    pub fn running_count(&self) -> usize {
        self.inner.state.lock().running.len()
    }

    /// Utilization in `[0, 1]`: running processes over cores, capped.
    pub fn utilization(&self) -> f64 {
        let n = self.running_count() as f64;
        (n / self.inner.cores).min(1.0)
    }

    /// Per-process progress rate with `n` runners.
    fn rate(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.inner.speed * (self.inner.cores / n as f64).min(1.0)
    }

    /// Accrue work since the last settle.
    fn settle(&self, st: &mut State) {
        let now = self.inner.clock.now();
        let dt = (now - st.last_settle).as_secs_f64();
        st.last_settle = now;
        if dt <= 0.0 || st.running.is_empty() {
            return;
        }
        let r = self.rate(st.running.len());
        for p in st.running.values_mut() {
            let step = r * dt;
            let used = step.min(p.remaining.max(0.0) + EPS).min(step);
            p.cpu_used += used;
            p.remaining -= step;
        }
    }

    /// Move finished processes (remaining ≤ 0) to `done`.
    fn harvest(&self, st: &mut State, callbacks: &mut Vec<(CompleteFn, Completion, f64)>) {
        let finished: Vec<Pid> = st
            .running
            .iter()
            .filter(|(_, p)| p.remaining <= EPS)
            .map(|(pid, _)| *pid)
            .collect();
        for pid in finished {
            let mut p = st.running.remove(&pid).unwrap();
            let cb = p.on_complete.take();
            st.done.insert(pid, (Completion::Finished, p.cpu_used));
            if let Some(cb) = cb {
                callbacks.push((cb, Completion::Finished, p.cpu_used));
            }
        }
    }

    /// Schedule the next completion event.
    fn reschedule(&self, st: &mut State) {
        if let Some(t) = st.timer.take() {
            self.inner.clock.cancel(t);
        }
        if st.running.is_empty() {
            return;
        }
        let r = self.rate(st.running.len());
        let min_remaining = st
            .running
            .values()
            .map(|p| p.remaining.max(0.0))
            .fold(f64::INFINITY, f64::min);
        // Clamp to a minimum tick: a sub-nanosecond dt would round to a
        // zero-length timer, and firing it would not advance virtual
        // time — settle would accrue no work and the simulator would
        // reschedule the same instant forever.
        let dt = std::time::Duration::from_secs_f64((min_remaining / r).max(0.0))
            .max(std::time::Duration::from_micros(1));
        let sim = self.clone();
        st.timer = Some(self.inner.clock.schedule(dt, move |_| sim.on_timer()));
    }

    fn on_timer(&self) {
        let mut callbacks = Vec::new();
        {
            let mut st = self.inner.state.lock();
            st.timer = None;
            self.settle(&mut st);
            self.harvest(&mut st, &mut callbacks);
            self.reschedule(&mut st);
        }
        self.after_event(callbacks);
    }

    /// Run completion callbacks and utilization hooks outside the lock.
    fn after_event(&self, callbacks: Vec<(CompleteFn, Completion, f64)>) {
        let fired = !callbacks.is_empty();
        for (cb, completion, used) in callbacks {
            cb(completion, used);
        }
        // Hooks fire on every call that could change utilization; the
        // monitor dedupes via its delta threshold. Spawns also route
        // here (with an empty callback list) — fire regardless.
        let _ = fired;
        let u = self.utilization();
        for h in self.inner.hooks.lock().iter() {
            h(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;
    use std::time::Duration;

    type CompletionLog = StdArc<Mutex<Vec<(Completion, f64)>>>;

    fn collector() -> (CompletionLog, impl Fn(Completion, f64) + Clone) {
        let log = StdArc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        (log, move |c, used| l2.lock().push((c, used)))
    }

    #[test]
    fn single_process_finishes_after_its_work() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 1, 1.0);
        let (log, cb) = collector();
        cpu.spawn(5.0, cb);
        clock.advance(Duration::from_secs_f64(4.9));
        assert!(log.lock().is_empty());
        assert_eq!(cpu.running_count(), 1);
        clock.advance(Duration::from_secs_f64(0.2));
        let done = log.lock().clone();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, Completion::Finished);
        assert!((done[0].1 - 5.0).abs() < 1e-6, "cpu used {}", done[0].1);
    }

    #[test]
    fn faster_machine_finishes_sooner() {
        let clock = Clock::manual();
        let fast = CpuSim::new(clock.clone(), 1, 3.0);
        let (log, cb) = collector();
        fast.spawn(6.0, cb);
        clock.advance(Duration::from_secs_f64(2.01));
        assert_eq!(log.lock().len(), 1, "6 cpu-sec at 3x takes 2s");
    }

    #[test]
    fn two_processes_share_one_core() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 1, 1.0);
        let (log, cb) = collector();
        cpu.spawn(2.0, cb.clone());
        cpu.spawn(2.0, cb);
        // Sharing: each runs at 0.5 — both finish at t=4.
        clock.advance(Duration::from_secs_f64(3.9));
        assert!(log.lock().is_empty());
        clock.advance(Duration::from_secs_f64(0.2));
        assert_eq!(log.lock().len(), 2);
    }

    #[test]
    fn two_cores_run_two_processes_at_full_speed() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 2, 1.0);
        let (log, cb) = collector();
        cpu.spawn(2.0, cb.clone());
        cpu.spawn(2.0, cb);
        clock.advance(Duration::from_secs_f64(2.1));
        assert_eq!(log.lock().len(), 2, "no sharing penalty with 2 cores");
    }

    #[test]
    fn late_arrival_slows_the_first_process() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 1, 1.0);
        let (log, cb) = collector();
        cpu.spawn(4.0, cb.clone());
        clock.advance(Duration::from_secs(2)); // first has 2.0 left
        cpu.spawn(10.0, cb);
        // From t=2 both share: first needs 4 more wall seconds.
        clock.advance(Duration::from_secs_f64(3.9));
        assert!(log.lock().is_empty(), "first not done at t=5.9");
        clock.advance(Duration::from_secs_f64(0.2));
        assert_eq!(log.lock().len(), 1, "first done at ~t=6");
        // Second then runs alone: had 10-1.9..2 ≈ 8 left... total work
        // conserved: finish by t = 6 + remaining.
        clock.advance(Duration::from_secs(9));
        assert_eq!(log.lock().len(), 2);
    }

    #[test]
    fn kill_stops_a_process_and_reports_partial_cpu() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 1, 1.0);
        let (log, cb) = collector();
        let pid = cpu.spawn(100.0, cb);
        clock.advance(Duration::from_secs(3));
        assert!(cpu.kill(pid));
        assert!(!cpu.kill(pid), "double kill is a no-op");
        let done = log.lock().clone();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, Completion::Killed);
        assert!((done[0].1 - 3.0).abs() < 1e-6);
        assert_eq!(
            cpu.status(pid),
            Some(ProcStatus::Done {
                completion: Completion::Killed,
                cpu_used: done[0].1
            })
        );
    }

    #[test]
    fn status_reports_progress() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 1, 2.0);
        let pid = cpu.spawn(10.0, |_, _| {});
        clock.advance(Duration::from_secs(2));
        match cpu.status(pid).unwrap() {
            ProcStatus::Running { cpu_used } => assert!((cpu_used - 4.0).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cpu.status(999), None);
    }

    #[test]
    fn utilization_tracks_load() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 4, 1.0);
        assert_eq!(cpu.utilization(), 0.0);
        let pids: Vec<Pid> = (0..2).map(|_| cpu.spawn(100.0, |_, _| {})).collect();
        assert_eq!(cpu.utilization(), 0.5);
        for _ in 0..6 {
            cpu.spawn(100.0, |_, _| {});
        }
        assert_eq!(cpu.utilization(), 1.0, "capped at 1");
        cpu.kill(pids[0]);
        assert_eq!(cpu.running_count(), 7);
    }

    #[test]
    fn utilization_hooks_fire_on_events() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 2, 1.0);
        let hits = StdArc::new(AtomicUsize::new(0));
        let h = hits.clone();
        cpu.add_utilization_hook(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        let pid = cpu.spawn(1.0, |_, _| {});
        assert!(hits.load(Ordering::SeqCst) >= 1, "spawn fires hook");
        cpu.kill(pid);
        assert!(hits.load(Ordering::SeqCst) >= 2, "kill fires hook");
    }

    #[test]
    fn zero_work_process_completes_immediately() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock, 1, 1.0);
        let (log, cb) = collector();
        cpu.spawn(0.0, cb);
        assert_eq!(log.lock().len(), 1);
    }

    #[test]
    fn completion_callback_can_spawn_again() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 1, 1.0);
        let (log, cb) = collector();
        let cpu2 = cpu.clone();
        cpu.spawn(1.0, move |_, _| {
            cpu2.spawn(1.0, cb);
        });
        clock.advance(Duration::from_secs(3));
        assert_eq!(log.lock().len(), 1, "chained spawn completed");
    }

    #[test]
    fn total_cpu_time_is_conserved_under_sharing() {
        let clock = Clock::manual();
        let cpu = CpuSim::new(clock.clone(), 1, 1.0);
        let (log, cb) = collector();
        for w in [1.0, 2.0, 3.0] {
            cpu.spawn(w, cb.clone());
        }
        clock.advance(Duration::from_secs(20));
        let done = log.lock().clone();
        assert_eq!(done.len(), 3);
        let total: f64 = done.iter().map(|(_, u)| u).sum();
        assert!((total - 6.0).abs() < 1e-3, "total cpu {total}");
    }

    #[test]
    fn works_with_scaled_clock() {
        let clock = Clock::scaled(1000.0);
        let cpu = CpuSim::new(clock.clone(), 1, 1.0);
        let (log, cb) = collector();
        cpu.spawn(2.0, cb); // 2 virtual s = 2 real ms
        let t0 = std::time::Instant::now();
        while log.lock().is_empty() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(log.lock().len(), 1);
    }
}
