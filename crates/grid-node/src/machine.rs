//! The assembled grid machine.

use std::sync::Arc;

use parking_lot::Mutex;
use simclock::Clock;

use crate::cpu::CpuSim;
use crate::fs::SimFs;

/// Static description of a machine — what the Node Info Service
/// advertises ("hardware characteristics, such as CPU speed and total
/// RAM").
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Host name, e.g. `machine01`.
    pub name: String,
    /// Clock speed in MHz (1000 = the reference speed).
    pub cpu_mhz: u32,
    /// Cores.
    pub cores: u32,
    /// RAM in MB.
    pub ram_mb: u32,
    /// Local accounts: `(username, password)`.
    pub users: Vec<(String, String)>,
    /// Grid-usable disk quota in bytes (None = unlimited).
    pub disk_quota: Option<u64>,
}

impl MachineSpec {
    /// A reasonable default lab machine.
    pub fn new(name: impl Into<String>) -> Self {
        MachineSpec {
            name: name.into(),
            cpu_mhz: 1000,
            cores: 1,
            ram_mb: 512,
            users: vec![("griduser".into(), "gridpass".into())],
            disk_quota: None,
        }
    }

    /// Builder: CPU speed.
    pub fn with_cpu_mhz(mut self, mhz: u32) -> Self {
        self.cpu_mhz = mhz;
        self
    }

    /// Builder: core count.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Builder: RAM.
    pub fn with_ram_mb(mut self, ram: u32) -> Self {
        self.ram_mb = ram;
        self
    }

    /// Builder: add a user account.
    pub fn with_user(mut self, name: &str, password: &str) -> Self {
        self.users.push((name.to_string(), password.to_string()));
        self
    }

    /// Builder: disk quota.
    pub fn with_disk_quota(mut self, bytes: u64) -> Self {
        self.disk_quota = Some(bytes);
        self
    }

    /// Speed factor relative to the 1 GHz reference.
    pub fn speed_factor(&self) -> f64 {
        self.cpu_mhz as f64 / 1000.0
    }
}

/// A running simulated machine: spec + filesystem + CPU.
pub struct Machine {
    /// Static description.
    pub spec: MachineSpec,
    /// The machine's grid filesystem slice.
    pub fs: Arc<SimFs>,
    /// Its processors.
    pub cpu: CpuSim,
    clock: Clock,
}

impl Machine {
    /// Boot a machine on the shared grid clock.
    pub fn new(spec: MachineSpec, clock: Clock) -> Arc<Machine> {
        let fs = Arc::new(match spec.disk_quota {
            Some(q) => SimFs::with_quota(q),
            None => SimFs::new(),
        });
        let cpu = CpuSim::new(clock.clone(), spec.cores, spec.speed_factor());
        Arc::new(Machine {
            spec,
            fs,
            cpu,
            clock,
        })
    }

    /// The machine's clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Validate a local account.
    pub fn check_credentials(&self, user: &str, password: &str) -> bool {
        self.spec
            .users
            .iter()
            .any(|(u, p)| u == user && p == password)
    }

    /// Simulate a crash/power-cut: every process dies silently (no
    /// exit callbacks — a dead machine notifies nobody). Returns the
    /// number of processes killed. The caller should also unregister
    /// the machine's services from the network.
    pub fn crash(&self) -> usize {
        self.cpu.kill_all_silently()
    }

    /// Current processor utilization in `[0,1]`.
    pub fn utilization(&self) -> f64 {
        self.cpu.utilization()
    }

    /// Attach a Processor-Utilization-service-style monitor: `report`
    /// is invoked with the new utilization whenever it moves by at
    /// least `delta` from the last *reported* value — "whenever the
    /// utilization of the machine's processors changes by more than a
    /// configurable amount".
    pub fn monitor_utilization(&self, delta: f64, report: impl Fn(f64) + Send + Sync + 'static) {
        let last = Mutex::new(f64::NAN);
        self.cpu.add_utilization_hook(move |u| {
            let mut last = last.lock();
            if last.is_nan() || (u - *last).abs() >= delta {
                *last = u;
                report(u);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn spec_builder() {
        let spec = MachineSpec::new("m1")
            .with_cpu_mhz(3000)
            .with_cores(2)
            .with_ram_mb(2048)
            .with_user("wasson", "pw")
            .with_disk_quota(1 << 20);
        assert_eq!(spec.speed_factor(), 3.0);
        assert_eq!(spec.users.len(), 2);
    }

    #[test]
    fn credentials_checked() {
        let m = Machine::new(
            MachineSpec::new("m1").with_user("alice", "secret"),
            Clock::manual(),
        );
        assert!(m.check_credentials("alice", "secret"));
        assert!(m.check_credentials("griduser", "gridpass"));
        assert!(!m.check_credentials("alice", "wrong"));
        assert!(!m.check_credentials("bob", "secret"));
    }

    #[test]
    fn quota_applies_to_machine_fs() {
        let m = Machine::new(MachineSpec::new("m1").with_disk_quota(10), Clock::manual());
        assert!(m.fs.write("f", vec![0u8; 20]).is_err());
    }

    #[test]
    fn utilization_monitor_thresholds() {
        let clock = Clock::manual();
        let m = Machine::new(MachineSpec::new("m1").with_cores(4), clock.clone());
        let reports = Arc::new(Mutex::new(Vec::new()));
        let r = reports.clone();
        m.monitor_utilization(0.5, move |u| r.lock().push(u));
        // 0 -> 0.25: below delta after the initial 0.25 report? The
        // first event always reports (last = NaN).
        m.cpu.spawn(100.0, |_, _| {});
        assert_eq!(reports.lock().as_slice(), &[0.25]);
        m.cpu.spawn(100.0, |_, _| {}); // 0.5: delta from 0.25 is 0.25 < 0.5
        assert_eq!(reports.lock().len(), 1);
        m.cpu.spawn(100.0, |_, _| {}); // 0.75: delta 0.5 -> report
        assert_eq!(reports.lock().as_slice(), &[0.25, 0.75]);
    }

    #[test]
    fn monitor_reports_drop_after_completion() {
        let clock = Clock::manual();
        let m = Machine::new(MachineSpec::new("m1"), clock.clone());
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        m.monitor_utilization(0.9, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        m.cpu.spawn(1.0, |_, _| {}); // 0 -> 1.0 reported
        clock.advance(Duration::from_secs(2)); // 1.0 -> 0 reported
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
