//! # grid-node
//!
//! The machine substrate under the remote-execution testbed.
//!
//! The paper runs jobs on real Windows machines: each runs the
//! **ProcSpawn** Windows service ("to start Windows processes as
//! particular users") and the **Processor Utilization** Windows service
//! ("asynchronously notifies the NIS whenever the utilization of the
//! machine's processors changes by more than a configurable amount"),
//! plus a slice of local disk managed by the File System Service. None
//! of that hardware is available here, so this crate simulates it —
//! faithfully enough that the scheduling-, utilization- and
//! file-movement behaviour the paper's services depend on is preserved:
//!
//! * [`fs::SimFs`] — a per-machine hierarchical in-memory filesystem
//!   with quotas (directories are what the FSS exposes as
//!   WS-Resources),
//! * [`program::JobProgram`] — the synthetic "executable" format: a
//!   manifest declaring CPU demand, required inputs, produced outputs
//!   and exit code. Executables are plain files, staged through the
//!   FSS exactly like the paper ships real binaries,
//! * [`cpu::CpuSim`] — a processor-sharing CPU model on the virtual
//!   clock: n runnable processes on c cores each progress at rate
//!   `min(1, c/n) × speed`, with per-process CPU-time accounting,
//! * [`machine::Machine`] + [`spawner`] — the assembled node: user
//!   accounts, credential checks, spawn/kill/status (ProcSpawn), and
//!   the utilization monitor with its configurable delta.

pub mod cpu;
pub mod fs;
pub mod machine;
pub mod program;
pub mod spawner;

pub use cpu::{CpuSim, Pid, ProcStatus};
pub use fs::{FsError, SimFs};
pub use machine::{Machine, MachineSpec};
pub use program::JobProgram;
pub use spawner::{ProcSpawn, SpawnError};
