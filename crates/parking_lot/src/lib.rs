//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset this workspace uses — `Mutex`, `RwLock`, and
//! `Condvar` with parking_lot's ergonomics (no `Result` poisoning, and
//! condvar waits that take `&mut MutexGuard`) — on top of `std::sync`.
//! Poisoned std locks are recovered transparently: a panic while a
//! guard is held does not wedge every later lock call, matching
//! parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`]; the inner `Option` lets [`Condvar`] take the
/// std guard out during a wait and put it back afterwards.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard taken during wait")
    }
}

/// Condition variable whose waits borrow the guard mutably instead of
/// consuming it, matching parking_lot's API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard taken during wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard taken during wait");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn lock_recovers_after_holder_panics() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
