//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive` / `boxed`, range and
//! regex-subset string strategies, `collection::vec`, `option::of`,
//! `prop_oneof!`, and the `proptest!` test macro with
//! `#![proptest_config(..)]` support.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; cases are seeded deterministically from the test name
//!   and case index, so failures reproduce exactly on re-run.
//! * String strategies accept the regex *subset* actually used here:
//!   concatenations of literals and character classes (with ranges),
//!   each optionally quantified by `{n}`, `{m,n}`, `*`, `+`, or `?`.

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

// ---------------------------------------------------------------------------
// Test runner plumbing
// ---------------------------------------------------------------------------

/// Error a property-test case can return to signal failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Alias kept for API compatibility.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` matters to this shim, the other
/// fields exist so `..ProptestConfig::default()` spreads compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted and ignored (no rejection sampling in the shim).
    pub max_local_rejects: u32,
    /// Accepted and ignored (no shrinking in the shim).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
            max_shrink_iters: 1024,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Per-case state handed to the generated test body: a seeded RNG plus
/// a log of sampled inputs for failure reporting.
pub struct TestRunner {
    rng: StdRng,
    inputs: RefCell<Vec<(&'static str, String)>>,
}

impl TestRunner {
    fn new(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            inputs: RefCell::new(Vec::new()),
        }
    }

    /// Samples one value and records its debug form under `name`.
    pub fn sample<S: Strategy>(&mut self, name: &'static str, strategy: &S) -> S::Value
    where
        S::Value: fmt::Debug,
    {
        let value = strategy.generate(&mut self.rng);
        self.inputs.borrow_mut().push((name, format!("{value:?}")));
        value
    }

    fn describe_inputs(&self) -> String {
        self.inputs
            .borrow()
            .iter()
            .map(|(n, v)| format!("    {n} = {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index: stable across
    // runs so failures reproduce.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Drives `config.cases` deterministic cases of one property. Called
/// by the `proptest!` expansion; panics (failing the enclosing
/// `#[test]`) on the first case that fails, printing the inputs.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case_fn: F)
where
    F: FnMut(&mut TestRunner) -> TestCaseResult,
{
    for case in 0..config.cases {
        let mut runner = TestRunner::new(seed_for(test_name, case));
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case_fn(&mut runner)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(err)) => panic!(
                "proptest case {case}/{total} of `{test_name}` failed: {err}\n  inputs:\n{inputs}",
                total = config.cases,
                inputs = runner.describe_inputs(),
            ),
            Err(panic_payload) => {
                eprintln!(
                    "proptest case {case}/{total} of `{test_name}` panicked\n  inputs:\n{inputs}",
                    total = config.cases,
                    inputs = runner.describe_inputs(),
                );
                std::panic::resume_unwind(panic_payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds trees up to `depth` recursion levels: the closure maps a
    /// strategy for the previous level to one for the next. The size
    /// parameters are accepted for API compatibility; bounded depth is
    /// what terminates generation here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy; cheap to clone and reusable.
pub struct BoxedStrategy<V> {
    gen: Rc<dyn Fn(&mut StdRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: self.gen.clone(),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (self.gen)(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.generate(rng);
            }
            pick -= *w;
        }
        unreachable!("weights sum mismatch")
    }
}

// Integer / float range strategies.
macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

// Tuple strategies.
macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// A `Vec` of strategies generates one value per element — used for
/// "one strategy per position" shapes like per-node DAG dependency
/// lists.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

pub struct Any<A> {
    _marker: PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary_value(rng)
    }
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CharSet {
    Literal(char),
    /// Flattened class alternatives (ranges expanded at sample time).
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // `a-z` is a range unless the dash is last-in-class.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // consume ']'
                CharSet::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                CharSet::Literal(c)
            }
            c => {
                i += 1;
                CharSet::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad quantifier"),
                            hi.parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = body.parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn sample_char(set: &CharSet, rng: &mut StdRng) -> char {
    match set {
        CharSet::Literal(c) => *c,
        CharSet::Class(ranges) => {
            let idx = rng.gen_range(0..ranges.len());
            let (lo, hi) = ranges[idx];
            let v = rng.gen_range(lo as u32..=hi as u32);
            char::from_u32(v).expect("range produced invalid char")
        }
    }
}

/// String strategies from `&'static str` regex-subset patterns.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                rng.gen_range(atom.min..=atom.max)
            };
            for _ in 0..count {
                out.push(sample_char(&atom.set, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            // Some ~75% of the time, like real proptest's default.
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Alias namespace so `prop::collection::vec(..)` / `prop::option::of(..)`
/// resolve after `use proptest::prelude::*`.
pub mod prop {
    pub use super::{collection, option};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left, right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |__runner| {
                $(let $pat = __runner.sample(stringify!($pat), &($strat));)+
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __result
            });
        }
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let strat = "[A-Za-z][A-Za-z0-9_.-]{0,8}";
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn trailing_dash_in_class_is_literal() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        for _ in 0..300 {
            let s = Strategy::generate(&"[a-z0-9-]{4}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_respects_size_bounds(v in prop::collection::vec(0u8..10, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_draws_every_arm_eventually(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u32..5, "[a-z]{2}").prop_map(|(n, s)| (n, s.len()))) {
            prop_assert!(pair.0 < 5);
            prop_assert_eq!(pair.1, 2);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(ProptestConfig::with_cases(4), "always_fails", |r| {
                let _v = r.sample("v", &(0u8..4));
                Err(TestCaseError::fail("nope"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails") && msg.contains("v ="), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first = Vec::new();
        crate::run_cases(ProptestConfig::with_cases(8), "det", |r| {
            first.push(r.sample("x", &(0u64..1_000_000)));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases(ProptestConfig::with_cases(8), "det", |r| {
            second.push(r.sample("x", &(0u64..1_000_000)));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
