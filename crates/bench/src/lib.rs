//! Shared workload builders for the benchmark suite.
//!
//! Each experiment (E1–E10, see DESIGN.md / EXPERIMENTS.md) has a
//! Criterion bench exercising the *real* software costs and, where the
//! quantity of interest is modeled (virtual) time or message traffic,
//! a row generator used by the `harness` binary to print the
//! EXPERIMENTS.md tables.

// See wsrf-core: fault values are rich by design; not hot paths.
#![allow(clippy::result_large_err)]

use std::sync::Arc;
use std::time::Duration;

use simclock::Clock;
use uvacg::{CampusGrid, Client, FileRef, GridConfig, JobSetHandle, JobSetSpec, JobSpec};
use wsrf_core::container::{action_uri, Service, ServiceBuilder};
use wsrf_core::properties::PropertyDoc;
use wsrf_core::store::{ColumnType, ResourceStore};
use wsrf_soap::ns::UVACG;
use wsrf_soap::{EndpointReference, Envelope, MessageInfo};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{Element, QName};

pub use grid_node::JobProgram;

/// Qualified name in the testbed namespace.
pub fn q(local: &str) -> QName {
    QName::new(UVACG, local)
}

/// A canonical "job-like" property document with `extra` additional
/// scalar properties (to sweep document size).
pub fn job_doc(extra: usize) -> PropertyDoc {
    let mut doc = PropertyDoc::new();
    doc.set_text(q("JobName"), "bench-job");
    doc.set_text(q("Status"), "Running");
    doc.set_f64(q("CpuTime"), 12.5);
    doc.set_i64(q("Pid"), 4242);
    for i in 0..extra {
        doc.set_text(q(&format!("Extra{i}")), format!("value-{i}"));
    }
    doc
}

/// The schema matching [`job_doc`] for the structured store.
pub fn job_schema(extra: usize) -> Vec<(QName, ColumnType)> {
    let mut cols = vec![
        (q("JobName"), ColumnType::Text),
        (q("Status"), ColumnType::Text),
        (q("CpuTime"), ColumnType::Float),
        (q("Pid"), ColumnType::Int),
    ];
    for i in 0..extra {
        cols.push((q(&format!("Extra{i}")), ColumnType::Text));
    }
    cols
}

/// A minimal one-op service on the given store; returns (service,
/// resource EPR, network). Observability off — see
/// [`bench_service_obs`] for the instrumented variant.
pub fn bench_service(
    store: Arc<dyn ResourceStore>,
) -> (Arc<Service>, EndpointReference, Arc<InProcNetwork>) {
    bench_service_obs(store, wsrf_obs::MetricsRegistry::disabled())
}

/// [`bench_service`] with an explicit metrics registry (E1 measures
/// the instrumented container against the opted-out one).
pub fn bench_service_obs(
    store: Arc<dyn ResourceStore>,
    metrics: Arc<wsrf_obs::MetricsRegistry>,
) -> (Arc<Service>, EndpointReference, Arc<InProcNetwork>) {
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    let svc = ServiceBuilder::new("Bench", "inproc://bench/Svc", store)
        .with_metrics(metrics)
        .operation("Touch", |ctx| {
            let doc = ctx.resource_mut()?;
            let n = doc.i64(&q("Pid")).unwrap_or(0) + 1;
            doc.set_i64(q("Pid"), n);
            Ok(Element::new(UVACG, "TouchResponse").text(n.to_string()))
        })
        .build(clock, net.clone());
    svc.register(&net);
    let epr = svc
        .core()
        .create_resource_with_key("r1", job_doc(0))
        .unwrap();
    (svc, epr, net)
}

/// A pre-addressed envelope for an operation on `epr`.
pub fn request(epr: &EndpointReference, service: &str, op: &str, body: Element) -> Envelope {
    let mut env = Envelope::new(body);
    MessageInfo::request(epr.clone(), action_uri(service, op)).apply(&mut env);
    env
}

/// Deploy a grid and a client pre-loaded with a `cpu`-second program
/// under `local://C:\prog.exe`.
pub fn grid_with_client(machines: usize, cpu: f64) -> (CampusGrid, Client) {
    let grid = CampusGrid::build(GridConfig::with_machines(machines), Clock::manual());
    let client = grid.client("bench");
    client.put_file(
        "C:\\prog.exe",
        JobProgram::compute(cpu)
            .writing("out.dat", 1024)
            .to_manifest(),
    );
    (grid, client)
}

/// A job set of `n` jobs shaped as requested.
pub fn shaped_spec(shape: &str, n: usize) -> JobSetSpec {
    let exe = FileRef::parse("local://C:\\prog.exe").unwrap();
    let mut spec = JobSetSpec::new(format!("{shape}-{n}"));
    match shape {
        "chain" => {
            for i in 0..n {
                let mut job = JobSpec::new(format!("j{i}"), exe.clone()).output("out.dat");
                if i > 0 {
                    job = job.input(
                        FileRef::parse(&format!("j{}://out.dat", i - 1)).unwrap(),
                        "prev.dat",
                    );
                }
                spec = spec.job(job);
            }
        }
        "fanout" => {
            spec = spec.job(JobSpec::new("root", exe.clone()).output("out.dat"));
            for i in 1..n {
                spec = spec.job(
                    JobSpec::new(format!("j{i}"), exe.clone())
                        .input(FileRef::parse("root://out.dat").unwrap(), "seed.dat")
                        .output("out.dat"),
                );
            }
        }
        "diamond" => {
            // Repeated diamonds: root -> (left,right) -> join, chained.
            assert!(n >= 4, "diamond needs >= 4 jobs");
            spec = spec.job(JobSpec::new("j0", exe.clone()).output("out.dat"));
            let mut prev = "j0".to_string();
            let mut i = 1;
            while i + 2 < n {
                let l = format!("j{i}");
                let r = format!("j{}", i + 1);
                let join = format!("j{}", i + 2);
                for side in [&l, &r] {
                    spec = spec.job(
                        JobSpec::new(side, exe.clone())
                            .input(
                                FileRef::parse(&format!("{prev}://out.dat")).unwrap(),
                                "in.dat",
                            )
                            .output("out.dat"),
                    );
                }
                spec = spec.job(
                    JobSpec::new(&join, exe.clone())
                        .input(FileRef::parse(&format!("{l}://out.dat")).unwrap(), "a.dat")
                        .input(FileRef::parse(&format!("{r}://out.dat")).unwrap(), "b.dat")
                        .output("out.dat"),
                );
                prev = join;
                i += 3;
            }
        }
        _ => {
            // independent
            for i in 0..n {
                spec = spec.job(JobSpec::new(format!("j{i}"), exe.clone()).output("out.dat"));
            }
        }
    }
    spec
}

/// Drive a submitted set to completion on a manual clock; returns the
/// virtual makespan in seconds (panics on failure or budget overrun).
pub fn drive(grid: &CampusGrid, handle: &JobSetHandle, budget_virtual_secs: u64) -> f64 {
    let start = grid.clock.now();
    let mut elapsed = 0;
    while handle.outcome().is_none() {
        assert!(
            elapsed < budget_virtual_secs,
            "budget exceeded for {}",
            handle.topic
        );
        grid.clock.advance(Duration::from_secs(1));
        elapsed += 1;
    }
    assert_eq!(
        handle.outcome(),
        Some(uvacg::JobSetOutcome::Completed),
        "job set failed"
    );
    (grid.clock.now() - start).as_secs_f64()
}

/// Render an aligned text table (used by the harness binary).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        s
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}
