//! Regenerates every EXPERIMENTS.md table (E1–E11, E13, E14).
//!
//! ```text
//! cargo run -p bench --bin harness --release
//! ```
//!
//! Real-time numbers are medians over small in-process samples (the
//! statistically careful runs live in `cargo bench`); virtual-time and
//! message-count numbers are exact model outputs.

#![allow(clippy::result_large_err)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{
    bench_service, bench_service_obs, drive, grid_with_client, job_doc, job_schema, print_table, q,
    request, shaped_spec, JobProgram,
};
use grid_node::{Machine, MachineSpec, ProcSpawn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simclock::Clock;
use uvacg::baseline::{self, single_file_server};
use uvacg::{
    CampusGrid, FastestAvailable, GridConfig, LeastLoaded, MetricsFeedback, Random, RoundRobin,
    SchedulingPolicy,
};
use ws_notification::broker::{
    notification_broker, notification_broker_with, publish, subscribe, BrokerConfig,
};
use ws_notification::consumer::NotificationListener;
use ws_notification::message::NotificationMessage;
use ws_notification::producer::NotificationProducer;
use ws_notification::topics::TopicExpression;
use wsrf_core::porttypes::{wsrp_action, XPATH_DIALECT};
use wsrf_core::store::{BlobStore, MemoryStore, ResourceStore, StructuredStore};
use wsrf_core::DurableStore;
use wsrf_obs::{EventKind, MetricsRegistry, ObsConfig, Severity, TraceConfig};
use wsrf_soap::ns::{UVACG, WSRP};
use wsrf_soap::{EndpointReference, Envelope, MessageInfo, TraceContext};
use wsrf_transport::http::{http_get, HttpLimits, HttpSoapServer};
use wsrf_transport::{FnEndpoint, InProcNetwork, NetConfig};
use wsrf_xml::Element;

/// Median wall time of `f` over `n` runs.
fn time_median(n: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Wall time per iteration over a batch (for sub-microsecond work).
fn time_per_iter(iters: u32, mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed() / iters
}

fn fmt_us(d: Duration) -> String {
    format!("{:.2} µs", d.as_secs_f64() * 1e6)
}

fn e1_dispatch() {
    let mut rows = Vec::new();
    {
        let mut doc = job_doc(0);
        let t = time_per_iter(100_000, || {
            let n = doc.i64(&q("Pid")).unwrap_or(0) + 1;
            doc.set_i64(q("Pid"), n);
        });
        rows.push(vec!["bare handler (no container)".into(), fmt_us(t)]);
    }
    let backends: Vec<(&str, Arc<dyn ResourceStore>)> = vec![
        ("memory", Arc::new(MemoryStore::new())),
        ("blob", Arc::new(BlobStore::new())),
        ("structured", {
            let s = StructuredStore::new();
            s.define_schema("Bench", job_schema(0));
            Arc::new(s)
        }),
    ];
    for (name, store) in backends {
        let (svc, epr, _net) = bench_service(store);
        let env = request(&epr, "Bench", "Touch", Element::new(UVACG, "Touch"));
        let t = time_per_iter(20_000, || {
            svc.dispatch(env.clone());
        });
        rows.push(vec![
            format!("container dispatch ({name} store)"),
            fmt_us(t),
        ]);
    }
    // Ablation E1c: the observability layer on vs off (acceptance:
    // metrics cost the memory-store dispatch path < 5%). Alternating
    // best-of-N so ambient scheduler noise (which dwarfs the per-call
    // delta on a ~4 µs dispatch) hits both configurations equally.
    {
        let touch = |svc: &Arc<wsrf_core::container::Service>, epr: &EndpointReference| {
            let env = request(epr, "Bench", "Touch", Element::new(UVACG, "Touch"));
            time_per_iter(2_000, || {
                svc.dispatch(env.clone());
            })
        };
        let (svc_off, epr_off, _net_off) =
            bench_service_obs(Arc::new(MemoryStore::new()), MetricsRegistry::disabled());
        let (svc_on, epr_on, _net_on) =
            bench_service_obs(Arc::new(MemoryStore::new()), MetricsRegistry::enabled());
        touch(&svc_off, &epr_off); // warm both paths
        touch(&svc_on, &epr_on);
        let (mut t_off, mut t_on) = (Duration::MAX, Duration::MAX);
        for _ in 0..50 {
            t_off = t_off.min(touch(&svc_off, &epr_off));
            t_on = t_on.min(touch(&svc_on, &epr_on));
        }
        rows.push(vec![
            format!(
                "dispatch, memory store, metrics on (off {:+.1}%)",
                (t_on.as_secs_f64() / t_off.as_secs_f64() - 1.0) * 100.0
            ),
            fmt_us(t_on),
        ]);
    }
    // Ablation E1d: distributed tracing on vs off (acceptance: tracing
    // enabled costs the metrics-enabled dispatch path < 5%). Traces
    // begin at explicit entry points, so a headerless request — the
    // dispatch bench, and every untraced message in a simulation —
    // costs only a header scan even with tracing on. A request that
    // carries a trace header additionally records one child span; that
    // recording cost gets its own row, against a tracing-off container
    // handed the same header so both sides pay the parse.
    {
        let touch = |svc: &Arc<wsrf_core::container::Service>, env: &Envelope| {
            time_per_iter(2_000, || {
                svc.dispatch(env.clone());
            })
        };
        let (svc_off, epr_off, _net_off) =
            bench_service_obs(Arc::new(MemoryStore::new()), MetricsRegistry::enabled());
        let (svc_on, epr_on, _net_on) = bench_service_obs(
            Arc::new(MemoryStore::new()),
            MetricsRegistry::with_tracing(ObsConfig::enabled(), TraceConfig::enabled()),
        );
        let stamp = |epr: &EndpointReference| {
            let mut env = request(epr, "Bench", "Touch", Element::new(UVACG, "Touch"));
            TraceContext::new(0x7ace, 0x1, true).stamp(&mut env);
            env
        };
        let plain = (
            request(&epr_off, "Bench", "Touch", Element::new(UVACG, "Touch")),
            request(&epr_on, "Bench", "Touch", Element::new(UVACG, "Touch")),
        );
        let traced = (stamp(&epr_off), stamp(&epr_on));
        for (label, env_off, env_on) in [
            ("untraced request", &plain.0, &plain.1),
            ("traced request", &traced.0, &traced.1),
        ] {
            touch(&svc_off, env_off); // warm both paths
            touch(&svc_on, env_on);
            let (mut t_off, mut t_on) = (Duration::MAX, Duration::MAX);
            for _ in 0..50 {
                t_off = t_off.min(touch(&svc_off, env_off));
                t_on = t_on.min(touch(&svc_on, env_on));
            }
            rows.push(vec![
                format!(
                    "dispatch, tracing on, {label} (off {:+.1}%)",
                    (t_on.as_secs_f64() / t_off.as_secs_f64() - 1.0) * 100.0
                ),
                fmt_us(t_on),
            ]);
        }
    }
    {
        let (svc, epr, _net) = bench_service(Arc::new(MemoryStore::new()));
        let env = request(&epr, "Bench", "Touch", Element::new(UVACG, "Touch"));
        let t = time_per_iter(10_000, || {
            let wire = env.to_xml();
            let parsed = Envelope::parse(&wire).unwrap();
            let resp = svc.dispatch(parsed);
            let _ = Envelope::parse(&resp.to_xml()).unwrap();
        });
        rows.push(vec!["dispatch + full wire roundtrip".into(), fmt_us(t)]);
    }
    // Ablation E1b: read-only dispatch under the two save policies.
    for (label, policy) in [
        (
            "save-always (WSRF.NET)",
            wsrf_core::container::SavePolicy::Always,
        ),
        (
            "save-when-changed (ablation)",
            wsrf_core::container::SavePolicy::WhenChanged,
        ),
    ] {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = wsrf_core::container::ServiceBuilder::new(
            "Abl",
            "inproc://bench/Abl",
            Arc::new(BlobStore::new()),
        )
        .save_policy(policy)
        .operation("Peek", |ctx| {
            let doc = ctx.resource_mut()?;
            Ok(Element::new(UVACG, "PeekResponse")
                .text(doc.text_local("Status").unwrap_or_default()))
        })
        .build(clock, net);
        let epr = svc
            .core()
            .create_resource_with_key("r1", job_doc(8))
            .unwrap();
        let env = request(&epr, "Abl", "Peek", Element::new(UVACG, "Peek"));
        let t = time_per_iter(10_000, || {
            svc.dispatch(env.clone());
        });
        rows.push(vec![
            format!("read-only dispatch, blob store, {label}"),
            fmt_us(t),
        ]);
    }
    print_table(
        "E1 — container dispatch pipeline (Figure 1)",
        &["path", "time/op"],
        &rows,
    );
}

fn e2_properties() {
    let (_, epr, _net) = bench_service(Arc::new(MemoryStore::new()));
    let clock = Clock::manual();
    let net2 = InProcNetwork::new(clock.clone());
    let svc = wsrf_core::container::ServiceBuilder::new(
        "Props",
        "inproc://bench/Props",
        Arc::new(MemoryStore::new()),
    )
    .operation("CustomGetInfo", |ctx| {
        let doc = ctx.resource_mut()?;
        Ok(Element::new(UVACG, "R")
            .attr("status", doc.text(&q("Status")).unwrap_or_default())
            .attr("cpu", doc.text(&q("CpuTime")).unwrap_or_default()))
    })
    .build(clock, net2);
    let epr2 = svc
        .core()
        .create_resource_with_key("r1", job_doc(8))
        .unwrap();
    let _ = epr;

    let mk = |body: Element, action: String| {
        let mut env = Envelope::new(body);
        MessageInfo::request(epr2.clone(), action).apply(&mut env);
        env
    };
    let cases: Vec<(&str, Envelope)> = vec![
        (
            "GetResourceProperty",
            mk(
                Element::new(WSRP, "GetResourceProperty").text("Status"),
                wsrp_action("GetResourceProperty"),
            ),
        ),
        (
            "GetMultipleResourceProperties (3)",
            mk(
                Element::new(WSRP, "GetMultipleResourceProperties")
                    .child(Element::new(WSRP, "ResourceProperty").text("Status"))
                    .child(Element::new(WSRP, "ResourceProperty").text("CpuTime"))
                    .child(Element::new(WSRP, "ResourceProperty").text("JobName")),
                wsrp_action("GetMultipleResourceProperties"),
            ),
        ),
        (
            "QueryResourceProperties (XPath)",
            mk(
                Element::new(WSRP, "QueryResourceProperties").child(
                    Element::new(WSRP, "QueryExpression")
                        .attr("Dialect", XPATH_DIALECT)
                        .text("/ResourcePropertyDocument[Status='Running']/CpuTime"),
                ),
                wsrp_action("QueryResourceProperties"),
            ),
        ),
        (
            "SetResourceProperties (Update)",
            mk(
                Element::new(WSRP, "SetResourceProperties").child(
                    Element::new(WSRP, "Update")
                        .child(Element::new(UVACG, "Status").text("Running")),
                ),
                wsrp_action("SetResourceProperties"),
            ),
        ),
        (
            "custom interface (GRAM-style)",
            request(
                &epr2,
                "Props",
                "CustomGetInfo",
                Element::new(UVACG, "CustomGetInfo"),
            ),
        ),
    ];
    let mut rows = Vec::new();
    for (name, env) in cases {
        let t = time_per_iter(20_000, || {
            let resp = svc.dispatch(env.clone());
            assert!(!resp.is_fault(), "{name}: {:?}", resp.fault());
        });
        rows.push(vec![name.to_string(), fmt_us(t)]);
    }
    print_table(
        "E2 — resource property operations (Figure 2 programming model)",
        &["operation", "time/op"],
        &rows,
    );
}

fn e3_jobsets() {
    let mut rows = Vec::new();
    for (shape, n) in [
        ("independent", 4usize),
        ("independent", 16),
        ("chain", 4),
        ("chain", 8),
        ("fanout", 8),
        ("diamond", 7),
    ] {
        let (grid, client) = grid_with_client(4, 5.0);
        let (c0, o0, b0, _) = grid.net.metrics.snapshot();
        let handle = client
            .submit(&shaped_spec(shape, n), "griduser", "gridpass")
            .unwrap();
        let makespan = drive(&grid, &handle, 2000);
        let (c1, o1, b1, _) = grid.net.metrics.snapshot();
        rows.push(vec![
            format!("{shape} × {n}"),
            format!("{makespan:.1} s"),
            format!("{}", c1 - c0),
            format!("{}", o1 - o0),
            format!("{:.1} KiB", (b1 - b0) as f64 / 1024.0),
        ]);
    }
    print_table(
        "E3 — job-set execution (Figure 3), 4 machines, 5 cpu-s jobs",
        &[
            "job set",
            "virtual makespan",
            "calls",
            "one-way msgs",
            "payload",
        ],
        &rows,
    );
}

fn e4_notification() {
    let mut rows = Vec::new();
    for subscribers in [1usize, 10, 100] {
        // Direct.
        let net = InProcNetwork::new(Clock::manual());
        let producer =
            NotificationProducer::new(EndpointReference::service("inproc://p/s"), net.clone());
        for i in 0..subscribers {
            let l = NotificationListener::register(&net, &format!("inproc://c{i}/l"));
            producer
                .subscriptions
                .subscribe(l.epr(), TopicExpression::full("js//"));
        }
        let t_direct = time_per_iter(2_000, || {
            producer.notify("js/job/exit", Element::local("E"));
        });
        // Brokered.
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let broker = notification_broker(
            "Broker",
            "inproc://hub/Broker",
            Arc::new(MemoryStore::new()),
            clock,
            net.clone(),
        );
        broker.register(&net);
        let bepr = broker.core().service_epr();
        for i in 0..subscribers {
            let l = NotificationListener::register(&net, &format!("inproc://c{i}/l"));
            subscribe(&net, &bepr, &l.epr(), &TopicExpression::full("js//"), None).unwrap();
        }
        let msg = NotificationMessage::new("js/job/exit", Element::local("E"));
        let t_brokered = time_per_iter(2_000, || {
            publish(&net, &bepr, &msg).unwrap();
        });
        rows.push(vec![
            subscribers.to_string(),
            fmt_us(t_direct),
            fmt_us(t_brokered),
            format!("{:.2}x", t_brokered.as_secs_f64() / t_direct.as_secs_f64()),
        ]);
    }
    print_table(
        "E4 — notification fan-out per publish",
        &["subscribers", "direct", "brokered", "broker overhead"],
        &rows,
    );
}

fn e5_transfer() {
    // Modeled campus times per scheme and size.
    let cfg = NetConfig::campus();
    let mut rows = Vec::new();
    for size in [10_000u64, 1_000_000, 10_000_000, 100_000_000] {
        let http = cfg.transfer_time("http", "m1", size);
        let tcp = cfg.transfer_time("soap.tcp", "m1", size);
        rows.push(vec![
            format!("{:.1} MB", size as f64 / 1e6),
            format!("{:.1} ms", http.as_secs_f64() * 1e3),
            format!("{:.1} ms", tcp.as_secs_f64() * 1e3),
            format!("{:.2}x", http.as_secs_f64() / tcp.as_secs_f64()),
            "~0 (in-memory copy)".into(),
        ]);
    }
    print_table(
        "E5 — modeled campus transfer time per scheme (NetConfig::campus)",
        &[
            "file size",
            "http (base64)",
            "soap.tcp (WSE)",
            "http/tcp",
            "same-machine move",
        ],
        &rows,
    );

    // Real localhost wall times, 1 MiB payload.
    use wsrf_transport::http::{http_call, HttpSoapServer};
    use wsrf_transport::tcpframe::{FramedClient, FramedServer};
    let ack = Arc::new(wsrf_transport::FnEndpoint::new("ack", |_| {
        Some(Envelope::new(Element::local("Ok")))
    }));
    let hs = HttpSoapServer::start(ack.clone()).unwrap();
    let ts = FramedServer::start(ack).unwrap();
    let tc = FramedClient::connect(&ts.authority()).unwrap();
    let mut rows = Vec::new();
    for size in [1usize << 10, 1 << 20] {
        let env =
            Envelope::new(Element::local("Write").text(wsrf_xml::base64::encode(&vec![0u8; size])));
        let t_http = time_median(9, || {
            http_call(&hs.authority(), "fs", &env).unwrap();
        });
        let t_tcp = time_median(9, || {
            tc.call(&env).unwrap();
        });
        rows.push(vec![
            format!("{} KiB", size / 1024),
            format!("{:.2} ms", t_http.as_secs_f64() * 1e3),
            format!("{:.2} ms", t_tcp.as_secs_f64() * 1e3),
        ]);
    }
    print_table(
        "E5b — real localhost wall time per call",
        &["payload", "http (new conn/call)", "soap.tcp (persistent)"],
        &rows,
    );
}

fn e6_scheduler() {
    // Heterogeneous grid; enough parallel work to differentiate
    // policies but not saturate every machine.
    let mut rows = Vec::new();
    let policies: Vec<(&str, Arc<dyn SchedulingPolicy>)> = vec![
        ("fastest-available (paper)", Arc::new(FastestAvailable)),
        ("round-robin", Arc::new(RoundRobin::default())),
        ("random", Arc::new(Random::new(12345))),
        ("least-loaded", Arc::new(LeastLoaded)),
        ("metrics-feedback", Arc::new(MetricsFeedback::new())),
    ];
    let mut baseline = None;
    for (name, policy) in policies {
        let grid = CampusGrid::build(
            GridConfig::with_machines(8).with_policy(policy),
            Clock::manual(),
        );
        let client = grid.client("bench");
        client.put_file(
            "C:\\prog.exe",
            JobProgram::compute(30.0)
                .writing("out.dat", 1024)
                .to_manifest(),
        );
        let handle = client
            .submit(&shaped_spec("independent", 6), "griduser", "gridpass")
            .unwrap();
        let makespan = drive(&grid, &handle, 5000);
        if baseline.is_none() {
            baseline = Some(makespan);
        }
        rows.push(vec![
            name.to_string(),
            format!("{makespan:.1} s"),
            format!("{:.2}x", makespan / baseline.unwrap()),
        ]);
    }
    print_table(
        "E6 — placement policy makespan (6 × 30 cpu-s jobs, 8 heterogeneous machines)",
        &["policy", "virtual makespan", "vs paper policy"],
        &rows,
    );
}

fn e6b_degraded() {
    // The feedback scenario: machine04 advertises the best hardware in
    // the NIS but sits behind a 15-virtual-second uplink the catalog
    // knows nothing about. A 6-link chain makes the mistake compound:
    // catalog-only placement pins every link to the degraded machine,
    // feedback placement pays the uplink once and steers away.
    let mut rows = Vec::new();
    let policies: Vec<(&str, Arc<dyn SchedulingPolicy>)> = vec![
        ("fastest-available (paper)", Arc::new(FastestAvailable)),
        ("metrics-feedback", Arc::new(MetricsFeedback::new())),
    ];
    let mut baseline = None;
    for (name, policy) in policies {
        let grid = CampusGrid::build(
            GridConfig::with_machines(4)
                .with_policy(policy)
                .with_slow_authority("machine04", Duration::from_secs(15)),
            Clock::manual(),
        );
        let client = grid.client("bench");
        client.put_file(
            "C:\\prog.exe",
            JobProgram::compute(10.0)
                .writing("out.dat", 1024)
                .to_manifest(),
        );
        let handle = client
            .submit(&shaped_spec("chain", 6), "griduser", "gridpass")
            .unwrap();
        let makespan = drive(&grid, &handle, 5000);
        let set = wsrf_core::ResourceProxy::new(&grid.net, handle.jobset.clone());
        let on_degraded = set
            .document()
            .unwrap()
            .get_local("JobStatus")
            .iter()
            .filter(|js| js.attr_value("machine") == Some("machine04"))
            .count();
        if baseline.is_none() {
            baseline = Some(makespan);
        }
        rows.push(vec![
            name.to_string(),
            format!("{makespan:.1} s"),
            format!("{on_degraded}/6"),
            format!("{:.2}x", makespan / baseline.unwrap()),
        ]);
    }
    print_table(
        "E6b — degraded-uplink grid (6-link chain of 10 cpu-s jobs, machine04 behind a 15 s link)",
        &[
            "policy",
            "virtual makespan",
            "jobs on degraded",
            "vs paper policy",
        ],
        &rows,
    );
}

fn e7_store() {
    let n = 1000usize;
    let path = wsrf_xml::xpath::Path::parse("/Properties[Status='Running']").unwrap();
    let mut rows = Vec::new();
    let backends: Vec<(&str, Arc<dyn ResourceStore>)> = vec![
        ("memory", Arc::new(MemoryStore::new())),
        ("blob", Arc::new(BlobStore::new())),
        ("structured", {
            let s = StructuredStore::new();
            s.define_schema("Bench", job_schema(8));
            Arc::new(s)
        }),
    ];
    for (name, store) in backends {
        for i in 0..n {
            let mut doc = job_doc(8);
            if i % 2 == 0 {
                doc.set_text(q("Status"), "Exited");
            }
            store.create("Bench", &format!("r{i}"), &doc).unwrap();
        }
        let t_load = time_per_iter(5_000, || {
            let doc = store.load("Bench", "r1").unwrap();
            store.save("Bench", "r1", &doc).unwrap();
        });
        let t_query = time_median(15, || {
            assert_eq!(store.query("Bench", &path).len(), n / 2);
        });
        rows.push(vec![
            name.to_string(),
            fmt_us(t_load),
            format!("{:.2} ms", t_query.as_secs_f64() * 1e3),
            "—".into(),
            "—".into(),
        ]);
    }
    // Durable backend: the write-ahead log over the memory store. Two
    // extra columns only this row fills: cold recovery (replay the n
    // creates from the log into a fresh inner store) and the log bytes
    // those creates cost on disk (CRC framing + the rendered docs).
    {
        let dir = std::env::temp_dir().join(format!("wsrf-bench-e7-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DurableStore::open(&dir, Arc::new(MemoryStore::new())).unwrap();
        for i in 0..n {
            let mut doc = job_doc(8);
            if i % 2 == 0 {
                doc.set_text(q("Status"), "Exited");
            }
            store.create("Bench", &format!("r{i}"), &doc).unwrap();
        }
        let log_bytes = store.log_bytes();
        let t_recover = time_median(5, || {
            let replayed = DurableStore::open(&dir, Arc::new(MemoryStore::new())).unwrap();
            assert_eq!(replayed.list("Bench").len(), n);
        });
        let t_load = time_per_iter(5_000, || {
            let doc = store.load("Bench", "r1").unwrap();
            store.save("Bench", "r1", &doc).unwrap();
        });
        let t_query = time_median(15, || {
            assert_eq!(store.query("Bench", &path).len(), n / 2);
        });
        rows.push(vec![
            "durable (wal/memory)".into(),
            fmt_us(t_load),
            format!("{:.2} ms", t_query.as_secs_f64() * 1e3),
            format!("{:.2} ms", t_recover.as_secs_f64() * 1e3),
            format!("{:.1} KiB", log_bytes as f64 / 1024.0),
        ]);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        &format!("E7 — state backends ({n} resources, 12 properties each)"),
        &[
            "backend",
            "load+save",
            "query (match half)",
            "recovery (replay)",
            "log bytes",
        ],
        &rows,
    );
}

fn e8_polling() {
    // A 60-virtual-second job; the client either polls at interval T
    // or receives one push notification.
    let mut rows = Vec::new();
    for interval in [1u64, 5, 15, 60] {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let machine = Machine::new(MachineSpec::new("m1"), clock.clone());
        let spawner = Arc::new(ProcSpawn::new(machine.clone()));
        let manager = baseline::job_manager(
            "inproc://hub/JobManager",
            vec![("m1".into(), machine, spawner)],
            clock.clone(),
            net.clone(),
        );
        manager.register(&net);
        let src = single_file_server(
            &net,
            "soap.tcp://client/files",
            "prog.exe",
            JobProgram::compute(61.3).to_manifest(),
        );
        let id = baseline::submit(
            &net,
            "inproc://hub/JobManager",
            &src,
            "prog.exe",
            "griduser",
            "gridpass",
        )
        .unwrap();
        let (c0, _, _, _) = net.metrics.snapshot();
        let mut polls = 0u64;
        let finish_detected_at = loop {
            clock.advance(Duration::from_secs(interval));
            polls += 1;
            if baseline::poll(&net, "inproc://hub/JobManager", id)
                .unwrap()
                .is_some()
            {
                break clock.now().as_secs_f64();
            }
        };
        let (c1, _, _, _) = net.metrics.snapshot();
        rows.push(vec![
            format!("poll every {interval}s"),
            format!("{}", c1 - c0),
            format!("{polls}"),
            format!("{:.1} s", finish_detected_at - 61.3),
        ]);
    }
    rows.push(vec![
        "WS-Notification push".into(),
        "0".into(),
        "0".into(),
        "0.0 s".into(),
    ]);
    print_table(
        "E8 — completion detection for one 61.3 s job: polling vs push",
        &[
            "client strategy",
            "status calls",
            "poll rounds",
            "detection latency",
        ],
        &rows,
    );
}

fn e9_security() {
    let mut rng = StdRng::seed_from_u64(1);
    let ca = wsrf_security::pki::CertificateAuthority::new("ca", &mut rng);
    let (keys, cert) = ca.enroll("es@m1", &mut rng);
    let token = wsrf_security::wsse::UsernameToken::new("griduser", "gridpass");
    let mut rows = Vec::new();
    {
        let mut rng = StdRng::seed_from_u64(2);
        let t = time_per_iter(2_000, || {
            token.encrypt(&cert, &mut rng);
        });
        rows.push(vec!["UsernameToken encrypt".into(), fmt_us(t)]);
    }
    let header = token.encrypt(&cert, &mut rng);
    let t = time_per_iter(2_000, || {
        wsrf_security::wsse::UsernameToken::decrypt(&header, &keys).unwrap();
    });
    rows.push(vec!["UsernameToken decrypt".into(), fmt_us(t)]);
    let t = time_per_iter(20_000, || {
        assert!(ca.verify(&cert));
    });
    rows.push(vec!["certificate verify".into(), fmt_us(t)]);
    let data = vec![0u8; 65536];
    let t = time_per_iter(2_000, || {
        wsrf_security::sha256::digest(&data);
    });
    rows.push(vec![
        format!(
            "sha256 64 KiB ({:.0} MB/s)",
            65536.0 / t.as_secs_f64() / 1e6
        ),
        fmt_us(t),
    ]);
    let key = [7u8; 32];
    let nonce = [3u8; 12];
    let t = time_per_iter(2_000, || {
        wsrf_security::chacha20::encrypt(&key, &nonce, &data);
    });
    rows.push(vec![
        format!(
            "chacha20 64 KiB ({:.0} MB/s)",
            65536.0 / t.as_secs_f64() / 1e6
        ),
        fmt_us(t),
    ]);
    print_table("E9 — WS-Security costs", &["operation", "time/op"], &rows);
}

fn e10_contention() {
    // Contended same-resource dispatch, old pipeline vs new. "old" is
    // the pre-classification container: no per-resource leases, and
    // every op — reads included — takes the write path through
    // clone-for-diff and the save stage. "new" is the shipping
    // pipeline: reads are classified, share a lease stripe and skip
    // the save stage entirely; writes serialize on an exclusive
    // per-resource lease (the price of never losing an update).
    use wsrf_core::container::{SavePolicy, Service, ServiceBuilder};

    fn peek(ctx: &mut wsrf_core::container::Ctx<'_>) -> Result<Element, wsrf_soap::BaseFault> {
        let doc = ctx.resource_mut()?;
        Ok(Element::new(UVACG, "PeekResponse").text(doc.text(&q("Status")).unwrap_or_default()))
    }

    fn counter(old: bool) -> (Arc<Service>, EndpointReference) {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let b = ServiceBuilder::new("Ctr", "inproc://bench/Ctr", Arc::new(MemoryStore::new()))
            .save_policy(SavePolicy::Always)
            .operation("Bump", |ctx| {
                let doc = ctx.resource_mut()?;
                let n = doc.i64(&q("Pid")).unwrap_or(0) + 1;
                doc.set_i64(q("Pid"), n);
                Ok(Element::new(UVACG, "BumpResponse"))
            });
        let b = if old {
            b.without_leases().operation("Peek", peek)
        } else {
            b.read_operation("Peek", peek)
        };
        let svc = b.build(clock, net);
        let epr = svc
            .core()
            .create_resource_with_key("r1", job_doc(0))
            .unwrap();
        (svc, epr)
    }

    fn throughput(svc: &Arc<Service>, env: &Envelope, threads: usize) -> f64 {
        const OPS_PER_THREAD: usize = 3_000;
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..OPS_PER_THREAD {
                        svc.dispatch(env.clone());
                    }
                });
            }
        });
        (threads * OPS_PER_THREAD) as f64 / t0.elapsed().as_secs_f64() / 1e3
    }

    let mut rows = Vec::new();
    for threads in [1usize, 4, 16] {
        let cell = |old: bool, op: &str| {
            let (svc, epr) = counter(old);
            let env = request(&epr, "Ctr", op, Element::new(UVACG, op));
            throughput(&svc, &env, threads)
        };
        let (ro, rn) = (cell(true, "Peek"), cell(false, "Peek"));
        let (wo, wn) = (cell(true, "Bump"), cell(false, "Bump"));
        rows.push(vec![
            threads.to_string(),
            format!("{ro:.0}"),
            format!("{rn:.0}"),
            format!("{:.2}x", rn / ro),
            format!("{wo:.0}"),
            format!("{wn:.0}"),
        ]);
    }
    print_table(
        "E10 — contended same-resource dispatch throughput (kops/s), \
         old pipeline vs read/write classification + leases",
        &[
            "threads",
            "read old",
            "read new",
            "read speedup",
            "write old (racy)",
            "write new (leased)",
        ],
        &rows,
    );
}

fn e11_wirepath() {
    use wsrf_transport::tcpframe::{FramedClient, FramedServer};
    use wsrf_transport::FnEndpoint;

    // A representative scheduler-bound message: WS-Addressing headers,
    // a trace header and a 12-property body.
    let epr = EndpointReference::service("inproc://machine01/ExecutionService");
    let mut body = Element::new(UVACG, "CreateJob");
    for i in 0..12 {
        body.push_child(Element::new(UVACG, format!("Prop{i}")).text(format!("value-{i}")));
    }
    let mut env = Envelope::new(body);
    MessageInfo::request(epr, format!("{UVACG}/CreateJob")).apply(&mut env);
    TraceContext::new(0x7ace, 0x1, true).stamp(&mut env);
    let wire = env.to_xml();
    assert_eq!(env.wire_len(), wire.len(), "size pass must match render");

    // Serialization micro-costs.
    let mut rows = Vec::new();
    let t_clone = time_per_iter(50_000, || {
        std::hint::black_box(env.to_element().to_document());
    });
    rows.push(vec![
        "clone tree + render (pre-change to_xml)".into(),
        fmt_us(t_clone),
    ]);
    let mut buf: Vec<u8> = Vec::with_capacity(wire.len());
    let t_render = time_per_iter(50_000, || {
        buf.clear();
        env.write_into(&mut buf);
        std::hint::black_box(buf.len());
    });
    rows.push(vec![
        format!(
            "single render into reusable buffer ({:.2}x)",
            t_clone.as_secs_f64() / t_render.as_secs_f64()
        ),
        fmt_us(t_render),
    ]);
    let t_len = time_per_iter(50_000, || {
        std::hint::black_box(env.wire_len());
    });
    rows.push(vec![
        "exact size pass (wire_len, zero alloc)".into(),
        fmt_us(t_len),
    ]);
    print_table(
        &format!(
            "E11 — wire-path serialization, {}-byte envelope",
            wire.len()
        ),
        &["path", "time/op"],
        &rows,
    );

    // End-to-end exchanges. "old" re-adds per direction exactly what
    // the pre-change path paid on top of today's: inproc accounted
    // bytes with a clone + full render per direction (now a zero-alloc
    // size pass), the framed client/server cloned the tree before
    // rendering (now they render the borrowed tree straight into a
    // reusable frame buffer).
    let mut rows = Vec::new();
    {
        let net = InProcNetwork::new(Clock::manual());
        net.register(
            "inproc://machine01/ExecutionService",
            Arc::new(FnEndpoint::new("echo", Some)),
        );
        let addr = "inproc://machine01/executionservice";
        net.call(addr, env.clone()).unwrap(); // warm
        let r0 = wsrf_soap::render_count();
        let (_, _, b0, _) = net.metrics.snapshot();
        net.call(addr, env.clone()).unwrap();
        let renders = wsrf_soap::render_count() - r0;
        let (_, _, b1, _) = net.metrics.snapshot();
        assert_eq!(
            b1 - b0,
            2 * wire.len() as u64,
            "byte accounting must match the old double-render totals"
        );
        let t_new = time_per_iter(10_000, || {
            net.call(addr, env.clone()).unwrap();
        });
        let t_old = time_per_iter(10_000, || {
            std::hint::black_box(env.to_element().to_document());
            let resp = net.call(addr, env.clone()).unwrap();
            std::hint::black_box(resp.to_element().to_document());
        });
        rows.push(vec![
            "inproc call".into(),
            fmt_us(t_old),
            fmt_us(t_new),
            format!("{:.2}x", t_old.as_secs_f64() / t_new.as_secs_f64()),
            format!("{renders}"),
        ]);
    }
    {
        let server = FramedServer::start(Arc::new(FnEndpoint::new("echo", Some))).unwrap();
        let tc = FramedClient::connect(&server.authority()).unwrap();
        tc.call(&env).unwrap(); // warm
        let r0 = wsrf_soap::render_count();
        tc.call(&env).unwrap();
        let renders = wsrf_soap::render_count() - r0;
        let t_new = time_per_iter(2_000, || {
            tc.call(&env).unwrap();
        });
        let t_old = time_per_iter(2_000, || {
            std::hint::black_box(env.to_element()); // client-side clone
            tc.call(&env).unwrap();
            std::hint::black_box(env.to_element()); // server-side clone
        });
        rows.push(vec![
            "framed TCP call".into(),
            fmt_us(t_old),
            fmt_us(t_new),
            format!("{:.2}x", t_old.as_secs_f64() / t_new.as_secs_f64()),
            format!("{renders}"),
        ]);
    }
    print_table(
        "E11b — request/response exchange, pre-change (emulated) vs single-render wire path",
        &["hop", "old", "new", "speedup", "renders/exchange (new)"],
        &rows,
    );
}

/// Build the E11c fixture: a job-like service with one resource, the
/// standard WS-RP read ops, and a custom `Poll` read op that answers
/// from resource state without touching the request body.
fn e11c_service() -> (Arc<wsrf_core::container::Service>, EndpointReference) {
    use wsrf_core::container::ServiceBuilder;
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    let svc = ServiceBuilder::new(
        "Job",
        "inproc://machine01/Job",
        Arc::new(MemoryStore::new()),
    )
    .read_operation("Poll", |ctx| {
        let doc = ctx.resource_mut()?;
        Ok(Element::new(UVACG, "PollResponse").text(doc.text(&q("Status")).unwrap_or_default()))
    })
    .build(clock, net);
    let epr = svc
        .core()
        .create_resource_with_key("job-1", job_doc(0))
        .unwrap();
    (svc, epr)
}

/// The E11c inbound request pair: the canonical WS-RP single-property
/// read, and the E11 representative scheduler-bound shape (12-property
/// body + trace header) aimed at a read op that never opens the body.
fn e11c_wires(epr: &EndpointReference) -> (String, String) {
    use wsrf_core::container::action_uri;
    let mut get_env =
        Envelope::new(Element::new(WSRP, "GetResourceProperty").text(format!("{{{UVACG}}}Status")));
    MessageInfo::request(epr.clone(), wsrp_action("GetResourceProperty")).apply(&mut get_env);

    let mut body = Element::new(UVACG, "Poll");
    for i in 0..12 {
        body.push_child(Element::new(UVACG, format!("Prop{i}")).text(format!("value-{i}")));
    }
    let mut poll_env = Envelope::new(body);
    MessageInfo::request(epr.clone(), action_uri("Job", "Poll")).apply(&mut poll_env);
    TraceContext::new(0x7ace, 0x2, true).stamp(&mut poll_env);
    (get_env.to_xml(), poll_env.to_xml())
}

fn e11c_inbound() {
    use std::io::{Read as _, Write as _};
    use wsrf_transport::tcpframe::FramedServer;

    let (svc, epr) = e11c_service();
    let (get_wire, poll_wire) = e11c_wires(&epr);

    // Per-request dispatch micro-costs and the inbound budget counters.
    // "DOM-first" is exactly the pre-change server path: parse the full
    // envelope into a tree, then dispatch on it.
    let mut rows = Vec::new();
    for (label, wire) in [
        ("WS-RP GetResourceProperty", &get_wire),
        ("Job.Poll, 12-prop body", &poll_wire),
    ] {
        let warm = svc.dispatch_wire(wire);
        assert!(!warm.is_fault(), "{:?}", warm.fault());
        let d0 = wsrf_xml::dom_build_count();
        let e0 = wsrf_xml::parse_event_count();
        svc.dispatch_wire(wire);
        let doms = wsrf_xml::dom_build_count() - d0;
        let events = wsrf_xml::parse_event_count() - e0;
        let t_old = time_per_iter(20_000, || {
            let env = Envelope::parse(wire).unwrap();
            std::hint::black_box(svc.dispatch(env));
        });
        let t_new = time_per_iter(20_000, || {
            std::hint::black_box(svc.dispatch_wire(wire));
        });
        rows.push(vec![
            label.into(),
            fmt_us(t_old),
            fmt_us(t_new),
            format!("{:.2}x", t_old.as_secs_f64() / t_new.as_secs_f64()),
            format!("{doms}"),
            format!("{events}"),
        ]);
    }
    print_table(
        &format!(
            "E11c — inbound routing, DOM-first vs lazy dispatch ({}- and {}-byte requests)",
            get_wire.len(),
            poll_wire.len()
        ),
        &[
            "request",
            "DOM-first",
            "lazy",
            "speedup",
            "DOMs/req (lazy)",
            "events/req (lazy)",
        ],
        &rows,
    );

    // Real-transport inbound throughput: flood a FramedServer with a
    // pre-rendered one-way frame (the client is pure traffic generator
    // — one buffer write per message) and use a trailing CALL frame as
    // the barrier: frames on one connection are served in order, so its
    // response proves the flood drained. The DOM-first server is the
    // pre-change endpoint contract (parse, then handle); the lazy
    // server is the container routing off the borrowed receive buffer.
    const MAGIC: &[u8; 4] = b"WSE1";
    fn frame(flags: u8, payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::with_capacity(payload.len() + 9);
        f.extend_from_slice(MAGIC);
        f.push(flags);
        f.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        f.extend_from_slice(payload);
        f
    }
    fn read_response(stream: &mut std::net::TcpStream) {
        let mut head = [0u8; 9];
        stream.read_exact(&mut head).unwrap();
        let len = u32::from_be_bytes(head[5..9].try_into().unwrap()) as usize;
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
    }
    fn flood(authority: &str, oneway: &[u8], barrier: &[u8], n: usize) -> Duration {
        let mut stream = std::net::TcpStream::connect(authority).unwrap();
        stream.set_nodelay(true).ok();
        stream.write_all(barrier).unwrap(); // warm the connection thread
        read_response(&mut stream);
        let t0 = Instant::now();
        for _ in 0..n {
            stream.write_all(oneway).unwrap();
        }
        stream.write_all(barrier).unwrap();
        read_response(&mut stream);
        t0.elapsed()
    }

    let dom_first = {
        let svc = svc.clone();
        Arc::new(FnEndpoint::new("dom-first", move |env| {
            Some(svc.dispatch(env))
        }))
    };
    let server_old = FramedServer::start(dom_first).unwrap();
    let server_new = FramedServer::start(svc.clone()).unwrap();
    let oneway = frame(1, poll_wire.as_bytes());
    let barrier = frame(0, poll_wire.as_bytes());
    let n = 10_000;
    let t_old = flood(&server_old.authority(), &oneway, &barrier, n);
    let t_new = flood(&server_new.authority(), &oneway, &barrier, n);
    let rate = |t: Duration| n as f64 / t.as_secs_f64();
    print_table(
        &format!(
            "E11c — soap.tcp inbound throughput, {n} one-way polls ({}-byte frames)",
            oneway.len()
        ),
        &["server", "msgs/s", "speedup"],
        &[
            vec![
                "DOM-first (parse, then handle)".into(),
                format!("{:.0}", rate(t_old)),
                "1.00x".into(),
            ],
            vec![
                "lazy (route off receive buffer)".into(),
                format!("{:.0}", rate(t_new)),
                format!("{:.2}x", t_old.as_secs_f64() / t_new.as_secs_f64()),
            ],
        ],
    );
}

/// Splitmix-style PRNG for the Poisson arrival schedule — deterministic
/// and dependency-free.
struct SplitMix(u64);

impl SplitMix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fmt_lat(d: Duration) -> String {
    if d < Duration::from_millis(1) {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    } else if d < Duration::from_secs(1) {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

/// One E13 arm: `n_subs` subscriptions spread over `n_subs/100` topic
/// roots, driven open-loop with Poisson arrivals at `lambda`/s.
/// Latency is measured against each publish's *scheduled* arrival, so
/// a fan-out path slower than the arrival rate shows its queueing
/// backlog instead of hiding it (closed-loop timing would slow the
/// generator down to match).
fn e13_arm(
    n_subs: usize,
    sharded: bool,
    publishes: usize,
    lambda: f64,
) -> (f64, Duration, Duration, Duration) {
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    let config = if sharded {
        BrokerConfig::default()
    } else {
        BrokerConfig::rescan()
    };
    let broker = notification_broker_with(
        "Broker",
        "inproc://hub/Broker",
        Arc::new(MemoryStore::new()),
        clock,
        net.clone(),
        config,
    );
    broker.register(&net);
    let bepr = broker.core().service_epr();
    let roots = (n_subs / 100).max(1);
    // Counting listeners: O(1) memory per consumer no matter how many
    // deliveries land.
    let listeners: Vec<NotificationListener> = (0..n_subs)
        .map(|i| {
            let l = NotificationListener::register_counting(&net, &format!("inproc://c{i}/l"));
            subscribe(
                &net,
                &bepr,
                &l.epr(),
                &TopicExpression::full(&format!("r{}//", i % roots)),
                None,
            )
            .unwrap();
            l
        })
        .collect();

    let mut rng = SplitMix(0xE13 ^ n_subs as u64 ^ ((sharded as u64) << 32));
    let mut sched = 0.0f64;
    let mut lats: Vec<Duration> = Vec::with_capacity(publishes);
    let t0 = Instant::now();
    for i in 0..publishes {
        // Exponential interarrival → Poisson process.
        sched += -(1.0 - rng.next_f64()).ln() / lambda;
        let target = Duration::from_secs_f64(sched);
        loop {
            let now = t0.elapsed();
            if now >= target {
                break;
            }
            let gap = target - now;
            if gap > Duration::from_micros(200) {
                std::thread::sleep(gap - Duration::from_micros(100));
            } else {
                std::hint::spin_loop();
            }
        }
        let topic = format!("r{}/evt", i % roots);
        let msg = NotificationMessage::new(topic.as_str(), Element::local("E"));
        publish(&net, &bepr, &msg).unwrap();
        lats.push(t0.elapsed().saturating_sub(target));
    }
    let wall = t0.elapsed();
    let delivered: usize = listeners.iter().map(|l| l.total()).sum();
    lats.sort();
    let p = |q: f64| lats[((lats.len() - 1) as f64 * q) as usize];
    (
        delivered as f64 / wall.as_secs_f64(),
        p(0.5),
        p(0.99),
        p(0.999),
    )
}

/// E13 — open-loop broker load: sharded index vs legacy store rescan.
/// `smoke` runs the 1k-subscription row only (tier-1 CI).
fn e13_broker_openloop(smoke: bool) {
    const LAMBDA: f64 = 500.0; // publishes/s, 2 ms mean interarrival
    let scales: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut rows = Vec::new();
    for &n in scales {
        for sharded in [false, true] {
            // The rescan arm's per-publish cost grows with n; fewer
            // publishes keep its (deliberately pathological) backlog
            // measurable in bounded wall time.
            let publishes = match (sharded, n) {
                (true, _) => {
                    if smoke {
                        300
                    } else {
                        1_000
                    }
                }
                (false, 1_000) => {
                    if smoke {
                        300
                    } else {
                        1_000
                    }
                }
                (false, 10_000) => 200,
                (false, _) => 40,
            };
            let (thru, p50, p99, p999) = e13_arm(n, sharded, publishes, LAMBDA);
            rows.push(vec![
                n.to_string(),
                if sharded { "sharded" } else { "rescan" }.into(),
                publishes.to_string(),
                format!("{thru:.0}/s"),
                fmt_lat(p50),
                fmt_lat(p99),
                fmt_lat(p999),
            ]);
        }
    }
    print_table(
        "E13 — open-loop broker fan-out (Poisson arrivals, 500 publishes/s, ~100 subscriptions per topic root)",
        &[
            "subscriptions",
            "path",
            "publishes",
            "deliveries",
            "p50",
            "p99",
            "p999",
        ],
        &rows,
    );
}

/// E14 — the monitoring plane's own cost: the event-log ablation on
/// the container dispatch path (acceptance: events + SLO windows on
/// cost the events-off path < 5%), the per-op prices of the two new
/// write paths (event emit, SLO record), and what a scrape costs —
/// both the in-process render and the end-to-end HTTP GET against a
/// live `start_monitored` server.
fn e14_monitoring() {
    let mut rows = Vec::new();

    // Ablation: full monitoring (metrics + event log + SLO) vs the
    // `ObsConfig::without_events` arm. Alternating best-of-N, like
    // E1c, so ambient scheduler noise hits both configurations.
    let ablate =
        |label: &str,
         rows: &mut Vec<Vec<String>>,
         env_for: &dyn Fn(&Arc<wsrf_core::container::Service>) -> Envelope| {
            let touch = |svc: &Arc<wsrf_core::container::Service>, env: &Envelope| {
                time_per_iter(2_000, || {
                    svc.dispatch(env.clone());
                })
            };
            let (svc_off, _epr_off, _net_off) = bench_service_obs(
                Arc::new(MemoryStore::new()),
                MetricsRegistry::new(ObsConfig::enabled().without_events()),
            );
            let (svc_on, _epr_on, _net_on) = bench_service_obs(
                Arc::new(MemoryStore::new()),
                MetricsRegistry::new(ObsConfig::enabled()),
            );
            let (env_off, env_on) = (env_for(&svc_off), env_for(&svc_on));
            touch(&svc_off, &env_off); // warm both paths
            touch(&svc_on, &env_on);
            let (mut t_off, mut t_on) = (Duration::MAX, Duration::MAX);
            for _ in 0..50 {
                t_off = t_off.min(touch(&svc_off, &env_off));
                t_on = t_on.min(touch(&svc_on, &env_on));
            }
            rows.push(vec![
                format!(
                    "{label}, events+SLO on (events off {:+.1}%)",
                    (t_on.as_secs_f64() / t_off.as_secs_f64() - 1.0) * 100.0
                ),
                fmt_us(t_on),
            ]);
        };
    ablate("dispatch", &mut rows, &|svc| {
        request(
            &svc.core().epr_for("r1"),
            "Bench",
            "Touch",
            Element::new(UVACG, "Touch"),
        )
    });
    // The fault path is where the event log actually writes: every
    // fault formats a detail string and lands in the warn ring.
    ablate("faulting dispatch", &mut rows, &|svc| {
        request(
            &svc.core().epr_for("ghost"),
            "Bench",
            "Touch",
            Element::new(UVACG, "Touch"),
        )
    });

    // Per-op price of the two new write paths, in isolation.
    {
        let reg = MetricsRegistry::enabled();
        let log = reg.events().clone();
        let t = time_per_iter(100_000, || {
            log.emit(Severity::Info, EventKind::WalSnapshot, "bench", 0, || {
                "shard 00 compacted".to_string()
            });
        });
        rows.push(vec!["event emit (format + ring insert)".into(), fmt_us(t)]);
        let slo = reg.slo().service("bench");
        let t = time_per_iter(100_000, || {
            slo.record(true, 1_000, 0);
        });
        rows.push(vec!["SLO record (window bucket update)".into(), fmt_us(t)]);
    }

    // Scrape cost against a registry populated by a real run: render
    // in-process (what the exposition sink pays) and end-to-end over
    // HTTP (connect + render + transfer, a fresh connection per GET —
    // how a Prometheus-style scraper actually arrives).
    let (grid, client) = grid_with_client(2, 2.0);
    let handle = client
        .submit(&shaped_spec("diamond", 5), "griduser", "gridpass")
        .unwrap();
    drive(&grid, &handle, 2000);
    let n_metrics = grid.metrics_snapshot().entries.len();
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let t = time_per_iter(2_000, || {
        buf.clear();
        grid.metrics.write_prometheus_into(&mut buf);
    });
    rows.push(vec![
        format!("/metrics render ({n_metrics} metrics)"),
        fmt_us(t),
    ]);
    let t = time_per_iter(2_000, || {
        buf.clear();
        grid.metrics.write_json_into(&mut buf);
    });
    rows.push(vec![
        format!("/metrics.json render ({n_metrics} metrics)"),
        fmt_us(t),
    ]);
    let server = HttpSoapServer::start_monitored(
        Arc::new(FnEndpoint::new("bench", Some)),
        &grid.metrics,
        grid.clock.clone(),
        HttpLimits::default(),
    )
    .expect("bind exposition server");
    let authority = server.authority();
    for path in ["/metrics.json", "/healthz"] {
        let t = time_median(50, || {
            let (code, _) = http_get(&authority, path).unwrap();
            assert!(code == 200 || code == 503);
        });
        rows.push(vec![format!("{path} scrape over HTTP"), fmt_us(t)]);
    }
    // Streaming side: one event emitted and pumped onto the
    // monitor/events topic per iteration (no subscribers — the price
    // of the publish path itself).
    let t = time_per_iter(2_000, || {
        grid.metrics
            .events()
            .emit(Severity::Info, EventKind::WalSnapshot, "bench", 0, || {
                "tick".to_string()
            });
        grid.pump_events();
    });
    rows.push(vec![
        "event emit + pump flush (1-event batch)".into(),
        fmt_us(t),
    ]);

    print_table(
        "E14 — monitoring plane: ablation and scrape cost",
        &["path", "time/op"],
        &rows,
    );
}

/// `--monitor-smoke`: boot a monitored container, scrape `/metrics`
/// and `/healthz` once each, and verify both answer. Tier-1 runs this
/// to prove the exposition surface binds and serves outside the test
/// harness.
fn monitor_smoke() {
    let (grid, client) = grid_with_client(2, 1.0);
    let handle = client
        .submit(&shaped_spec("chain", 2), "griduser", "gridpass")
        .unwrap();
    drive(&grid, &handle, 2000);
    let server = HttpSoapServer::start_monitored(
        Arc::new(FnEndpoint::new("smoke", Some)),
        &grid.metrics,
        grid.clock.clone(),
        HttpLimits::default(),
    )
    .expect("bind exposition server");
    let authority = server.authority();
    let (code, prom) = http_get(&authority, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200, "/metrics status");
    assert!(
        prom.contains("scheduler_makespan_ns_count"),
        "/metrics body missing scheduler series"
    );
    let (code, hz) = http_get(&authority, "/healthz").expect("GET /healthz");
    assert_eq!(code, 200, "/healthz status: {hz}");
    assert!(hz.contains("\"status\": \"ok\""), "/healthz body: {hz}");
    println!(
        "monitor smoke: OK — {authority} served /metrics ({} bytes) and /healthz",
        prom.len()
    );
}

fn metrics_dump() {
    // Full-pipeline observability: run one job set on a metrics-enabled
    // grid (GridConfig observes by default) and dump the whole registry
    // — container dispatch stages, transport traffic, broker fan-out,
    // file staging and the scheduler's Figure 3 steps all in one table.
    // The campus network profile keeps the modeled-latency histograms
    // nonzero so the regression gate has virtual-time metrics to pin;
    // tracing is on so the gate also pins the trace.* counters. The
    // scheduler runs in durable mode (WAL-backed store) so the dump —
    // and therefore the gate — covers the persistence path too.
    let wal_dir = std::env::temp_dir().join(format!("wsrf-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let durable = Arc::new(DurableStore::open(&wal_dir, Arc::new(MemoryStore::new())).unwrap());
    let grid = CampusGrid::build(
        GridConfig::with_machines(4)
            .with_net(NetConfig::campus())
            .with_tracing(TraceConfig::enabled())
            .with_scheduler_store(durable as Arc<dyn ResourceStore>),
        Clock::manual(),
    );
    let client = grid.client("bench");
    client.put_file(
        "C:\\prog.exe",
        JobProgram::compute(5.0)
            .writing("out.dat", 1024)
            .to_manifest(),
    );
    let handle = client
        .submit(&shaped_spec("diamond", 7), "griduser", "gridpass")
        .unwrap();
    let makespan = drive(&grid, &handle, 2000);
    // Crash-recovery counters: reopen the scheduler's WAL into the
    // grid's registry. `recovery.records` is the exact number of log
    // records the run produced (one per scheduler state mutation), so
    // the gate pins persistence behaviour; the write-back + snapshot
    // pass pins the append framing (`store.wal.*`) the same way.
    let recovered =
        DurableStore::open_with(&wal_dir, Arc::new(MemoryStore::new()), Some(&grid.metrics))
            .unwrap();
    for key in recovered.list("Scheduler") {
        let doc = recovered.load("Scheduler", &key).unwrap();
        recovered.save("Scheduler", &key, &doc).unwrap();
    }
    recovered.snapshot_all().unwrap();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&wal_dir);
    // Inbound-parse budget: the grid above is pure inproc (envelopes
    // move by reference, so the wire parser never runs). Exercise the
    // lazy dispatch path with the fixed E11c request pair and mirror
    // the pull-parser counter deltas into the registry, so the gate
    // pins parse-event and DOM-materialization budgets per exchange.
    {
        let (svc, epr) = e11c_service();
        let (get_wire, poll_wire) = e11c_wires(&epr);
        let d0 = wsrf_xml::dom_build_count();
        let e0 = wsrf_xml::parse_event_count();
        assert!(!svc.dispatch_wire(&get_wire).is_fault());
        assert!(!svc.dispatch_wire(&poll_wire).is_fault());
        let lazy_doms = wsrf_xml::dom_build_count() - d0;
        let lazy_events = wsrf_xml::parse_event_count() - e0;
        let d1 = wsrf_xml::dom_build_count();
        let e1 = wsrf_xml::parse_event_count();
        svc.dispatch(Envelope::parse(&get_wire).unwrap());
        svc.dispatch(Envelope::parse(&poll_wire).unwrap());
        let dom_doms = wsrf_xml::dom_build_count() - d1;
        let dom_events = wsrf_xml::parse_event_count() - e1;
        grid.metrics.counter("parse.lazy.dom_builds").add(lazy_doms);
        grid.metrics.counter("parse.lazy.events").add(lazy_events);
        grid.metrics
            .counter("parse.domfirst.dom_builds")
            .add(dom_doms);
        grid.metrics
            .counter("parse.domfirst.events")
            .add(dom_events);
    }
    let snap = grid.metrics_snapshot();
    println!(
        "\n### Metrics — diamond × 7 job set, 4 machines ({makespan:.1} s virtual makespan)\n"
    );
    print!("{}", snap.render());
    match std::fs::write("BENCH_metrics.json", snap.to_json()) {
        Ok(()) => println!(
            "\nwrote BENCH_metrics.json ({} metrics)",
            snap.entries.len()
        ),
        Err(e) => eprintln!("warn: could not write BENCH_metrics.json: {e}"),
    }
}

fn main() {
    // `--metrics-only` regenerates BENCH_metrics.json without the full
    // E1–E10 sweep; tier-1 uses it to feed the regression gate cheaply.
    if std::env::args().any(|a| a == "--metrics-only") {
        metrics_dump();
        return;
    }
    // `--e13-smoke` runs the 1k-subscription open-loop broker row only;
    // tier-1 uses it as a fast sanity check of both fan-out paths.
    if std::env::args().any(|a| a == "--e13-smoke") {
        e13_broker_openloop(true);
        return;
    }
    // `--e13-full` runs the whole 1k/10k/100k sweep standalone.
    if std::env::args().any(|a| a == "--e13-full") {
        e13_broker_openloop(false);
        return;
    }
    // `--e14-only` regenerates the monitoring-plane table standalone.
    if std::env::args().any(|a| a == "--e14-only") {
        e14_monitoring();
        return;
    }
    // `--monitor-smoke` boots a monitored container and scrapes it
    // once; tier-1 uses it as the exposition-surface sanity check.
    if std::env::args().any(|a| a == "--monitor-smoke") {
        monitor_smoke();
        return;
    }
    println!("# UVaCG reproduction — experiment harness");
    println!("(scaled-down medians; `cargo bench` runs the full Criterion suite)");
    e1_dispatch();
    e2_properties();
    e3_jobsets();
    e4_notification();
    e5_transfer();
    e6_scheduler();
    e6b_degraded();
    e7_store();
    e8_polling();
    e9_security();
    e10_contention();
    e11_wirepath();
    e11c_inbound();
    e13_broker_openloop(false);
    e14_monitoring();
    metrics_dump();
    println!("\ndone.");
}
