//! Metrics regression gate.
//!
//! Compares a freshly generated `BENCH_metrics.json` (written by
//! `harness --metrics-only`) against the checked-in snapshot at
//! `scripts/bench_baseline.json` and fails when the model drifts:
//!
//! * **virtual-time** metrics (`*.virt_ns`, `transport.inproc.modeled*`,
//!   `scheduler.step.*`, `scheduler.makespan_ns`) and all counters are
//!   exact model outputs of a deterministic simulation — both the
//!   sample count and the mean must stay within
//!   `GATE_VIRT_TOLERANCE` (default ±10 %) of the baseline,
//! * **real-time** metrics (`*.real_ns`, `*.lock_wait_ns`,
//!   `*.serialize_ns`) are noisy wall-clock samples —
//!   the gate only catches order-of-magnitude regressions, failing
//!   when the fresh mean exceeds `GATE_REAL_TOLERANCE` × baseline
//!   (default 10×); histograms with fewer than `MIN_REAL_SAMPLES`
//!   on either side are skipped (a 1-in-16-sampled stage timer with
//!   one or two samples is just the cold first dispatch),
//! * a gated metric present in the baseline but missing from the fresh
//!   run is always a failure (instrumentation was dropped).
//!
//! ```text
//! cargo run -p bench --bin gate                  # compare
//! cargo run -p bench --bin gate -- --write-baseline   # refresh snapshot
//! cargo run -p bench --bin gate -- --bless       # regenerate + refresh
//! ```
//!
//! `--write-baseline` copies an *existing* fresh run into the
//! baseline; `--bless` first re-runs `harness --metrics-only` (the
//! sibling binary) so the baseline is regenerated in place from the
//! current tree in one step.

use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(f64),
    Gauge,
    Histogram { count: f64, mean: f64 },
}

/// Pull the numeric value following `"key":` out of a JSON object
/// fragment. The snapshot writer emits one flat object per line, so a
/// linear scan is all the parsing this needs.
fn field(body: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = body.find(&tag)? + tag.len();
    let rest = body[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the flat one-metric-per-line JSON written by
/// `MetricsSnapshot::to_json` into name → metric.
fn parse(contents: &str) -> BTreeMap<String, Metric> {
    let mut out = BTreeMap::new();
    for line in contents.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, body)) = rest.split_once("\":") else {
            continue;
        };
        let metric = if body.contains("\"counter\"") {
            match field(body, "value") {
                Some(v) => Metric::Counter(v),
                None => continue,
            }
        } else if body.contains("\"histogram\"") {
            match (field(body, "count"), field(body, "mean")) {
                (Some(count), Some(mean)) => Metric::Histogram { count, mean },
                _ => continue,
            }
        } else {
            Metric::Gauge
        };
        out.insert(name.to_string(), metric);
    }
    out
}

/// Real-time means below this many samples are dominated by the cold
/// first dispatch (stage timers sample 1-in-16, first always) and are
/// too noisy to gate.
const MIN_REAL_SAMPLES: f64 = 10.0;

/// Virtual-time metrics are deterministic model outputs.
fn is_virtual(name: &str) -> bool {
    name.ends_with(".virt_ns")
        || name.contains(".modeled")
        || name.starts_with("scheduler.step.")
        || name == "scheduler.makespan_ns"
}

/// Relative deviation of `fresh` from `base`, guarding tiny baselines.
fn rel(fresh: f64, base: f64) -> f64 {
    (fresh - base).abs() / base.abs().max(1.0)
}

fn env_tolerance(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let mut fresh_path = "BENCH_metrics.json".to_string();
    let mut base_path = "scripts/bench_baseline.json".to_string();
    let mut write_baseline = false;
    let mut bless = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => fresh_path = args.next().expect("--fresh needs a path"),
            "--baseline" => base_path = args.next().expect("--baseline needs a path"),
            "--write-baseline" => write_baseline = true,
            "--bless" => bless = true,
            other => {
                eprintln!("gate: unknown argument {other:?}");
                eprintln!(
                    "usage: gate [--fresh PATH] [--baseline PATH] [--write-baseline] [--bless]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if bless {
        // Regenerate the fresh snapshot with the sibling harness
        // binary before adopting it as the baseline.
        let harness = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("harness")))
            .filter(|p| p.exists());
        let Some(harness) = harness else {
            eprintln!(
                "gate: --bless needs the harness binary built alongside gate \
                 (cargo build -p bench --bins); or run `harness --metrics-only` \
                 then `gate --write-baseline`"
            );
            return ExitCode::FAILURE;
        };
        match std::process::Command::new(&harness)
            .arg("--metrics-only")
            .status()
        {
            Ok(status) if status.success() => write_baseline = true,
            Ok(status) => {
                eprintln!("gate: harness --metrics-only failed with {status}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("gate: cannot run {}: {e}", harness.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let fresh_raw = match std::fs::read_to_string(&fresh_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gate: cannot read {fresh_path}: {e} (run `harness --metrics-only` first)");
            return ExitCode::FAILURE;
        }
    };
    if write_baseline {
        if let Err(e) = std::fs::write(&base_path, &fresh_raw) {
            eprintln!("gate: cannot write {base_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("gate: wrote {base_path} from {fresh_path}");
        return ExitCode::SUCCESS;
    }
    let base_raw = match std::fs::read_to_string(&base_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gate: cannot read {base_path}: {e} (run with --write-baseline to create)");
            return ExitCode::FAILURE;
        }
    };

    let virt_tol = env_tolerance("GATE_VIRT_TOLERANCE", 0.10);
    let real_tol = env_tolerance("GATE_REAL_TOLERANCE", 10.0);
    let fresh = parse(&fresh_raw);
    let base = parse(&base_raw);

    let mut failures = Vec::new();
    let mut checked = 0usize;
    for (name, b) in &base {
        let Some(f) = fresh.get(name) else {
            if !matches!(b, Metric::Gauge) {
                failures.push(format!(
                    "{name}: present in baseline, missing from fresh run"
                ));
            }
            continue;
        };
        match (b, f) {
            (Metric::Counter(bv), Metric::Counter(fv)) => {
                checked += 1;
                if rel(*fv, *bv) > virt_tol {
                    failures.push(format!(
                        "{name}: counter {fv} vs baseline {bv} (> {:.0}% drift)",
                        virt_tol * 100.0
                    ));
                }
            }
            (
                Metric::Histogram {
                    count: bc,
                    mean: bm,
                },
                Metric::Histogram {
                    count: fc,
                    mean: fm,
                },
            ) if is_virtual(name) => {
                checked += 1;
                if rel(*fc, *bc) > virt_tol || rel(*fm, *bm) > virt_tol {
                    failures.push(format!(
                        "{name}: virtual histogram count {fc}/mean {fm:.0} vs baseline \
                         count {bc}/mean {bm:.0} (> {:.0}% drift)",
                        virt_tol * 100.0
                    ));
                }
            }
            (
                Metric::Histogram {
                    count: bc,
                    mean: bm,
                },
                Metric::Histogram {
                    count: fc,
                    mean: fm,
                },
            ) if name.ends_with(".real_ns")
                || name.ends_with(".lock_wait_ns")
                || name.ends_with(".serialize_ns") =>
            {
                if *bc < MIN_REAL_SAMPLES || *fc < MIN_REAL_SAMPLES {
                    continue;
                }
                checked += 1;
                if *bm > 0.0 && *fm > bm * real_tol {
                    failures.push(format!(
                        "{name}: real mean {fm:.0} ns vs baseline {bm:.0} ns (> {real_tol}x)"
                    ));
                }
            }
            _ => {} // gauges and unclassified histograms are informational
        }
    }

    if failures.is_empty() {
        println!(
            "gate: OK — {checked} metrics within tolerance (virt ±{:.0}%, real {real_tol}x) \
             against {base_path}",
            virt_tol * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("gate: {} regression(s) vs {base_path}:", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        eprintln!("(refresh intentionally changed baselines with `gate --write-baseline`)");
        ExitCode::FAILURE
    }
}
