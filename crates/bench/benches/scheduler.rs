//! E6 — scheduling: raw policy selection cost over snapshot size
//! (the decision the Scheduler makes per job after polling the NIS).
//! Makespan comparisons across policies are modeled quantities printed
//! by the harness binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uvacg::{
    FastestAvailable, LeastLoaded, MetricsFeedback, NodeSnapshot, Random, RoundRobin,
    SchedulingPolicy,
};

fn snapshot(n: usize) -> Vec<NodeSnapshot> {
    (0..n)
        .map(|i| NodeSnapshot {
            machine: format!("machine{i:03}"),
            cpu_mhz: 1000 + (i as u32 % 5) * 500,
            cores: 1 + (i as u32) % 4,
            ram_mb: 1024,
            utilization: (i as f64 * 0.37) % 1.0,
            updated_at: 0.0,
            execution: format!("inproc://machine{i:03}/Execution"),
            filesystem: format!("inproc://machine{i:03}/FileSystem"),
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6-policy-select");
    for n in [4usize, 32, 256] {
        let nodes = snapshot(n);
        let policies: Vec<(&str, Box<dyn SchedulingPolicy>)> = vec![
            ("fastest-available", Box::new(FastestAvailable)),
            ("round-robin", Box::new(RoundRobin::default())),
            ("random", Box::new(Random::new(1))),
            ("least-loaded", Box::new(LeastLoaded)),
            ("metrics-feedback", Box::new(MetricsFeedback::new())),
        ];
        for (name, policy) in policies {
            group.bench_with_input(BenchmarkId::new(name, n), &nodes, |b, nodes| {
                b.iter(|| black_box(policy.select(nodes).unwrap()))
            });
        }
    }
    group.finish();

    // The NIS snapshot round trip the scheduler pays before each
    // placement (step 2).
    let mut group = c.benchmark_group("E6-nis-snapshot");
    for machines in [2usize, 8, 32] {
        let clock = simclock::Clock::manual();
        let net = wsrf_transport::InProcNetwork::new(clock.clone());
        let nis = uvacg::nis::node_info_service(
            "inproc://hub/NodeInfo",
            std::sync::Arc::new(wsrf_core::store::MemoryStore::new()),
            clock,
            net.clone(),
        );
        nis.register(&net);
        for i in 0..machines {
            uvacg::nis::register_machine(
                &net,
                "inproc://hub/NodeInfo",
                &format!("m{i}"),
                1000,
                1,
                1024,
                &format!("inproc://m{i}/Execution"),
                &format!("inproc://m{i}/FileSystem"),
            )
            .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("poll", machines), &machines, |b, &m| {
            b.iter(|| {
                let nodes = uvacg::nis::snapshot(&net, "inproc://hub/NodeInfo").unwrap();
                assert_eq!(nodes.len(), m);
                black_box(nodes);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
