//! E7 — the §5 state-storage ablation: structured columns vs XML
//! blobs vs plain memory, for load/save and for queries over growing
//! resource populations.

use std::sync::Arc;

use bench::{job_doc, job_schema};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsrf_core::store::{BlobStore, MemoryStore, ResourceStore, StructuredStore};
use wsrf_xml::xpath::Path;

fn backends() -> Vec<(&'static str, Arc<dyn ResourceStore>)> {
    vec![
        ("memory", Arc::new(MemoryStore::new())),
        ("blob", Arc::new(BlobStore::new())),
        ("structured", {
            let s = StructuredStore::new();
            s.define_schema("Bench", job_schema(8));
            Arc::new(s)
        }),
    ]
}

fn bench_store(c: &mut Criterion) {
    // Load + save cycle (what every dispatch pays).
    let mut group = c.benchmark_group("E7-load-save");
    for (name, store) in backends() {
        store.create("Bench", "r1", &job_doc(8)).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let doc = store.load("Bench", "r1").unwrap();
                store.save("Bench", "r1", &doc).unwrap();
                black_box(());
            })
        });
    }
    group.finish();

    // Query cost as the population grows — the paper's complaint about
    // blobs ("makes it very difficult to query them in the database").
    let mut group = c.benchmark_group("E7-query");
    let path = Path::parse("/Properties[Status='Running']").unwrap();
    for n in [10usize, 100, 1000] {
        for (name, store) in backends() {
            for i in 0..n {
                let mut doc = job_doc(8);
                if i % 2 == 0 {
                    doc.set_text(bench::q("Status"), "Exited");
                }
                store.create("Bench", &format!("r{i}"), &doc).unwrap();
            }
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| {
                    let keys = store.query("Bench", &path);
                    assert_eq!(keys.len(), n / 2);
                    black_box(keys);
                })
            });
        }
    }
    group.finish();

    // Create/destroy churn.
    let mut group = c.benchmark_group("E7-create-destroy");
    for (name, store) in backends() {
        let mut i = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let key = format!("churn-{i}");
                i += 1;
                store.create("Bench", &key, &job_doc(8)).unwrap();
                store.destroy("Bench", &key).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
