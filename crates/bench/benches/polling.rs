//! E8 — push vs poll, the software-cost half: one status poll round
//! trip (GRAM-style) versus one notification delivery (WSRF-style).
//! The traffic/latency sweep across poll intervals is modeled and
//! printed by the harness binary.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use grid_node::{JobProgram, Machine, MachineSpec, ProcSpawn};
use simclock::Clock;
use std::hint::black_box;
use uvacg::baseline::{self, single_file_server};
use ws_notification::consumer::NotificationListener;
use ws_notification::message::NotificationMessage;
use wsrf_transport::InProcNetwork;
use wsrf_xml::Element;

fn bench_poll_vs_push(c: &mut Criterion) {
    // Baseline job manager with one long-running job to poll.
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    let machine = Machine::new(MachineSpec::new("m1"), clock.clone());
    let spawner = Arc::new(ProcSpawn::new(machine.clone()));
    let manager = baseline::job_manager(
        "inproc://hub/JobManager",
        vec![("m1".into(), machine, spawner)],
        clock.clone(),
        net.clone(),
    );
    manager.register(&net);
    let src = single_file_server(
        &net,
        "soap.tcp://client/files",
        "prog.exe",
        JobProgram::compute(1e9).to_manifest(),
    );
    let job_id = baseline::submit(
        &net,
        "inproc://hub/JobManager",
        &src,
        "prog.exe",
        "griduser",
        "gridpass",
    )
    .unwrap();

    let mut group = c.benchmark_group("E8-push-vs-poll");
    group.bench_function("one poll round trip (GRAM-style)", |b| {
        b.iter(|| {
            let st = baseline::poll(&net, "inproc://hub/JobManager", job_id).unwrap();
            assert!(st.is_none());
            black_box(st);
        })
    });

    // One notification delivery to a registered listener.
    let listener = NotificationListener::register(&net, "inproc://client/listener");
    let msg = NotificationMessage::new(
        "js/job/j1/exit",
        Element::local("JobExit").attr("code", "0"),
    );
    let env = msg.to_envelope(&listener.epr());
    group.bench_function("one notification delivery (WSRF-style)", |b| {
        b.iter(|| {
            net.send_oneway("inproc://client/listener", env.clone())
                .unwrap();
            black_box(());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_poll_vs_push);
criterion_main!(benches);
