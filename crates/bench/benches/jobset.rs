//! E3 — end-to-end job-set execution: the real software cost of the
//! whole Figure 3 protocol (submission, staging, notifications,
//! scheduling waves) on a zero-latency manual clock. Virtual makespans
//! are the harness binary's job.

use bench::{drive, grid_with_client, shaped_spec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_jobset(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3-jobset-protocol");
    group.sample_size(20);
    for (shape, n) in [
        ("independent", 4usize),
        ("chain", 4),
        ("fanout", 4),
        ("independent", 16),
    ] {
        group.bench_with_input(BenchmarkId::new(shape, n), &(shape, n), |b, &(shape, n)| {
            b.iter(|| {
                // Fresh grid per iteration: the measurement is the
                // full protocol including deployment.
                let (grid, client) = grid_with_client(4, 1.0);
                let spec = shaped_spec(shape, n);
                let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
                let makespan = drive(&grid, &handle, 600);
                black_box(makespan);
            })
        });
    }
    group.finish();

    // Submission alone (validation + resource creation + subscriptions
    // + first dispatch wave).
    let mut group = c.benchmark_group("E3-submission");
    group.bench_function("submit-8-independent", |b| {
        b.iter(|| {
            let (_grid, client) = grid_with_client(4, 1000.0);
            let handle = client
                .submit(&shaped_spec("independent", 8), "griduser", "gridpass")
                .unwrap();
            black_box(handle.topic);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_jobset);
criterion_main!(benches);
