//! E9 — the WS-Security substrate: primitive throughput and the cost
//! of one encrypted UsernameToken hop (encrypt at the client, decrypt
//! at the service).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use wsrf_security::pki::{CertificateAuthority, KeyPair};
use wsrf_security::wsse::{sign_body, verify_body, UsernameToken};
use wsrf_security::{chacha20, hmac, sha256};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9-primitives");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| black_box(sha256::digest(d)))
        });
        group.bench_with_input(BenchmarkId::new("hmac-sha256", size), &data, |b, d| {
            b.iter(|| black_box(hmac::hmac_sha256(b"bench-key", d)))
        });
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        group.bench_with_input(BenchmarkId::new("chacha20", size), &data, |b, d| {
            b.iter(|| black_box(chacha20::encrypt(&key, &nonce, d)))
        });
    }
    group.finish();
}

fn bench_token_flow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let ca = CertificateAuthority::new("ca", &mut rng);
    let (svc_keys, svc_cert) = ca.enroll("es@machine01", &mut rng);
    let token = UsernameToken::new("griduser", "gridpass");

    let mut group = c.benchmark_group("E9-token");
    group.bench_function("encrypt (client side)", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(token.encrypt(&svc_cert, &mut rng)))
    });
    let header = token.encrypt(&svc_cert, &mut rng);
    group.bench_function("decrypt (service side)", |b| {
        b.iter(|| black_box(UsernameToken::decrypt(&header, &svc_keys).unwrap()))
    });
    group.bench_function("cert verify", |b| {
        b.iter(|| assert!(black_box(ca.verify(&svc_cert))))
    });
    group.bench_function("dh keygen", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(KeyPair::generate(&mut rng)))
    });
    let key = [9u8; 32];
    let body = "<Run jobName=\"job1\"><Topic>jobset-1</Topic></Run>";
    group.bench_function("body sign+verify", |b| {
        b.iter(|| {
            let sig = sign_body(body, &key);
            verify_body(&sig, body, &key).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_token_flow);
criterion_main!(benches);
