//! E1 — the Figure 1 container pipeline: what does the
//! EPR-resolve → load → invoke → save cycle cost over a plain call,
//! and how does the state backend change it?

#![allow(clippy::result_large_err)]

use std::sync::Arc;

use bench::{bench_service, job_doc, job_schema, request};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsrf_core::store::{BlobStore, MemoryStore, ResourceStore, StructuredStore};
use wsrf_soap::ns::UVACG;
use wsrf_xml::Element;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1-dispatch");

    // Baseline: the handler body alone, no container.
    group.bench_function("bare-handler", |b| {
        let mut doc = job_doc(0);
        b.iter(|| {
            let n = doc.i64(&bench::q("Pid")).unwrap_or(0) + 1;
            doc.set_i64(bench::q("Pid"), n);
            black_box(n);
        })
    });

    // Full dispatch per backend (in-memory envelope, no wire).
    let backends: Vec<(&str, Arc<dyn ResourceStore>)> = vec![
        ("memory", Arc::new(MemoryStore::new())),
        ("blob", Arc::new(BlobStore::new())),
        ("structured", {
            let s = StructuredStore::new();
            s.define_schema("Bench", job_schema(0));
            Arc::new(s)
        }),
    ];
    for (name, store) in backends {
        let (svc, epr, _net) = bench_service(store);
        let env = request(&epr, "Bench", "Touch", Element::new(UVACG, "Touch"));
        group.bench_function(format!("container-{name}"), |b| {
            b.iter(|| black_box(svc.dispatch(env.clone())))
        });
    }

    // Ablation E1b: save-always (WSRF.NET) vs save-when-changed, on a
    // read-only operation where the difference is maximal.
    for (label, policy) in [
        ("save-always", wsrf_core::container::SavePolicy::Always),
        (
            "save-when-changed",
            wsrf_core::container::SavePolicy::WhenChanged,
        ),
    ] {
        let clock = simclock::Clock::manual();
        let net = wsrf_transport::InProcNetwork::new(clock.clone());
        let svc = wsrf_core::container::ServiceBuilder::new(
            "Abl",
            "inproc://bench/Abl",
            Arc::new(MemoryStore::new()),
        )
        .save_policy(policy)
        .operation("Peek", |ctx| {
            let doc = ctx.resource_mut()?;
            Ok(Element::new(UVACG, "PeekResponse")
                .text(doc.text_local("Status").unwrap_or_default()))
        })
        .build(clock, net);
        let epr = svc
            .core()
            .create_resource_with_key("r1", job_doc(8))
            .unwrap();
        let env = request(&epr, "Abl", "Peek", Element::new(UVACG, "Peek"));
        group.bench_function(format!("read-only-dispatch-{label}"), |b| {
            b.iter(|| black_box(svc.dispatch(env.clone())))
        });
    }

    // Full wire form: serialize request, parse, dispatch, serialize
    // response, parse — both ends of an HTTP hop minus the socket.
    let (svc, epr, _net) = bench_service(Arc::new(MemoryStore::new()));
    let env = request(&epr, "Bench", "Touch", Element::new(UVACG, "Touch"));
    group.bench_function("container-memory+wire", |b| {
        b.iter(|| {
            let wire = env.to_xml();
            let parsed = wsrf_soap::Envelope::parse(&wire).unwrap();
            let resp = svc.dispatch(parsed);
            let resp_wire = resp.to_xml();
            black_box(wsrf_soap::Envelope::parse(&resp_wire).unwrap());
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
