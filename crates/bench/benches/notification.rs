//! E4 — notification machinery: direct vs brokered fan-out as the
//! subscriber count grows, and raw topic-expression matching
//! throughput per dialect.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simclock::Clock;
use std::hint::black_box;
use ws_notification::broker::{notification_broker, publish, subscribe};
use ws_notification::consumer::NotificationListener;
use ws_notification::message::NotificationMessage;
use ws_notification::producer::NotificationProducer;
use ws_notification::topics::{TopicExpression, TopicPath};
use wsrf_core::store::MemoryStore;
use wsrf_soap::EndpointReference;
use wsrf_transport::InProcNetwork;
use wsrf_xml::Element;

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4-fanout");
    for subscribers in [1usize, 10, 100] {
        // Direct producer.
        {
            let net = InProcNetwork::new(Clock::manual());
            let producer = NotificationProducer::new(
                EndpointReference::service("inproc://p/svc"),
                net.clone(),
            );
            for i in 0..subscribers {
                let l = NotificationListener::register(&net, &format!("inproc://c{i}/l"));
                producer
                    .subscriptions
                    .subscribe(l.epr(), TopicExpression::full("js//"));
            }
            group.bench_with_input(
                BenchmarkId::new("direct", subscribers),
                &subscribers,
                |b, &n| {
                    b.iter(|| {
                        let (sent, errs) =
                            producer.notify("js/job/exit", Element::local("E").text("0"));
                        assert_eq!((sent, errs.len()), (n, 0));
                        black_box(sent);
                    })
                },
            );
        }
        // Brokered.
        {
            let clock = Clock::manual();
            let net = InProcNetwork::new(clock.clone());
            let broker = notification_broker(
                "Broker",
                "inproc://hub/Broker",
                Arc::new(MemoryStore::new()),
                clock,
                net.clone(),
            );
            broker.register(&net);
            let bepr = broker.core().service_epr();
            for i in 0..subscribers {
                let l = NotificationListener::register(&net, &format!("inproc://c{i}/l"));
                subscribe(&net, &bepr, &l.epr(), &TopicExpression::full("js//"), None).unwrap();
            }
            let msg = NotificationMessage::new("js/job/exit", Element::local("E").text("0"))
                .from_producer(EndpointReference::service("inproc://p/svc"));
            group.bench_with_input(
                BenchmarkId::new("brokered", subscribers),
                &subscribers,
                |b, _| {
                    b.iter(|| {
                        publish(&net, &bepr, &msg).unwrap();
                        black_box(());
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4-topic-matching");
    let topics: Vec<TopicPath> = (0..1000)
        .map(|i| TopicPath::parse(&format!("jobset-{}/job/j{}/exit", i % 20, i)))
        .collect();
    let cases = [
        ("simple", TopicExpression::simple("jobset-5")),
        (
            "concrete",
            TopicExpression::concrete("jobset-5/job/j105/exit"),
        ),
        ("full-star", TopicExpression::full("jobset-5/*/j105/exit")),
        ("full-descend", TopicExpression::full("jobset-5//exit")),
        ("full-any", TopicExpression::full("//exit")),
    ];
    for (name, expr) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let hits = topics.iter().filter(|t| expr.matches(t)).count();
                black_box(hits);
            })
        });
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    // Serialize + parse one notification envelope — the per-message
    // tax WS-Notification pays for interoperability.
    let msg = NotificationMessage::new(
        "jobset-1/job/j1/exit",
        Element::local("JobExit")
            .attr("code", "0")
            .attr("cpu", "12.5"),
    )
    .from_producer(EndpointReference::resource(
        "inproc://m1/Exec",
        "JobKey",
        "j1",
    ));
    let consumer = EndpointReference::service("inproc://client/listener");
    c.bench_function("E4-notify-envelope-roundtrip", |b| {
        b.iter(|| {
            let wire = msg.to_envelope(&consumer).to_xml();
            let env = wsrf_soap::Envelope::parse(&wire).unwrap();
            black_box(NotificationMessage::from_envelope(&env));
        })
    });
}

criterion_group!(benches, bench_fanout, bench_matching, bench_wire);
criterion_main!(benches);
