//! E2 — the Figure 2 programming model: throughput of the standard
//! WS-ResourceProperties operations versus a bespoke (GRAM-style)
//! interface returning the same data.

#![allow(clippy::result_large_err)]

use std::sync::Arc;

use bench::{job_doc, q, request};
use criterion::{criterion_group, criterion_main, Criterion};
use simclock::Clock;
use std::hint::black_box;
use wsrf_core::container::ServiceBuilder;
use wsrf_core::porttypes::{wsrl_action, wsrp_action, XPATH_DIALECT};
use wsrf_core::store::MemoryStore;
use wsrf_soap::ns::{UVACG, WSRP};
use wsrf_soap::{Envelope, MessageInfo};
use wsrf_transport::InProcNetwork;
use wsrf_xml::Element;

fn bench_properties(c: &mut Criterion) {
    let clock = Clock::manual();
    let net = InProcNetwork::new(clock.clone());
    // One service with both the standard port types and a custom op
    // that returns the same three fields in a bespoke shape.
    let svc = ServiceBuilder::new(
        "Props",
        "inproc://bench/Props",
        Arc::new(MemoryStore::new()),
    )
    .operation("CustomGetInfo", |ctx| {
        let doc = ctx.resource_mut()?;
        Ok(Element::new(UVACG, "CustomGetInfoResponse")
            .attr("status", doc.text(&q("Status")).unwrap_or_default())
            .attr("cpu", doc.text(&q("CpuTime")).unwrap_or_default())
            .attr("name", doc.text(&q("JobName")).unwrap_or_default()))
    })
    .build(clock, net.clone());
    svc.register(&net);
    let epr = svc
        .core()
        .create_resource_with_key("r1", job_doc(8))
        .unwrap();

    let mut group = c.benchmark_group("E2-properties");

    let get = {
        let mut env = Envelope::new(Element::new(WSRP, "GetResourceProperty").text("Status"));
        MessageInfo::request(epr.clone(), wsrp_action("GetResourceProperty")).apply(&mut env);
        env
    };
    group.bench_function("GetResourceProperty", |b| {
        b.iter(|| black_box(svc.dispatch(get.clone())))
    });

    let get_multi = {
        let mut env = Envelope::new(
            Element::new(WSRP, "GetMultipleResourceProperties")
                .child(Element::new(WSRP, "ResourceProperty").text("Status"))
                .child(Element::new(WSRP, "ResourceProperty").text("CpuTime"))
                .child(Element::new(WSRP, "ResourceProperty").text("JobName")),
        );
        MessageInfo::request(epr.clone(), wsrp_action("GetMultipleResourceProperties"))
            .apply(&mut env);
        env
    };
    group.bench_function("GetMultipleResourceProperties", |b| {
        b.iter(|| black_box(svc.dispatch(get_multi.clone())))
    });

    let query = {
        let mut env = Envelope::new(
            Element::new(WSRP, "QueryResourceProperties").child(
                Element::new(WSRP, "QueryExpression")
                    .attr("Dialect", XPATH_DIALECT)
                    .text("/ResourcePropertyDocument[Status='Running']/CpuTime"),
            ),
        );
        MessageInfo::request(epr.clone(), wsrp_action("QueryResourceProperties")).apply(&mut env);
        env
    };
    group.bench_function("QueryResourceProperties", |b| {
        b.iter(|| black_box(svc.dispatch(query.clone())))
    });

    let set = {
        let mut env = Envelope::new(Element::new(WSRP, "SetResourceProperties").child(
            Element::new(WSRP, "Update").child(Element::new(UVACG, "Status").text("Exited")),
        ));
        MessageInfo::request(epr.clone(), wsrp_action("SetResourceProperties")).apply(&mut env);
        env
    };
    group.bench_function("SetResourceProperties", |b| {
        b.iter(|| black_box(svc.dispatch(set.clone())))
    });

    let custom = request(
        &epr,
        "Props",
        "CustomGetInfo",
        Element::new(UVACG, "CustomGetInfo"),
    );
    group.bench_function("custom-interface (GRAM-style)", |b| {
        b.iter(|| black_box(svc.dispatch(custom.clone())))
    });

    // Lifetime op for completeness.
    let stt = {
        let mut env = Envelope::new(
            Element::new(wsrf_soap::ns::WSRL, "SetTerminationTime").child(
                Element::new(wsrf_soap::ns::WSRL, "RequestedTerminationTime").text("999999"),
            ),
        );
        MessageInfo::request(epr.clone(), wsrl_action("SetTerminationTime")).apply(&mut env);
        env
    };
    group.bench_function("SetTerminationTime", |b| {
        b.iter(|| black_box(svc.dispatch(stt.clone())))
    });

    group.finish();
}

criterion_group!(benches, bench_properties);
criterion_main!(benches);
