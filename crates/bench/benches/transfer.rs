//! E5 — file movement: real wall-clock cost of moving payloads over
//! the genuine localhost transports (`soap.tcp` framing vs HTTP POST),
//! plus the in-simulation same-machine copy path. The *modeled* campus
//! times per scheme are printed by the harness binary.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wsrf_soap::Envelope;
use wsrf_transport::http::{http_call, HttpSoapServer};
use wsrf_transport::tcpframe::{FramedClient, FramedServer};
use wsrf_transport::FnEndpoint;
use wsrf_xml::{base64, Element};

fn payload_env(size: usize) -> Envelope {
    let data = vec![0x5Au8; size];
    Envelope::new(
        Element::local("Write")
            .child(Element::local("FileName").text("f.bin"))
            .child(
                Element::local("Content")
                    .attr("encoding", "base64")
                    .text(base64::encode(&data)),
            ),
    )
}

fn bench_transports(c: &mut Criterion) {
    let ack = Arc::new(FnEndpoint::new("ack", |_| {
        Some(Envelope::new(Element::local("WriteResponse")))
    }));
    let http_server = HttpSoapServer::start(ack.clone()).unwrap();
    let tcp_server = FramedServer::start(ack).unwrap();
    let tcp_client = FramedClient::connect(&tcp_server.authority()).unwrap();

    let mut group = c.benchmark_group("E5-transfer-real");
    group.sample_size(20);
    for size in [1usize << 10, 1 << 14, 1 << 18, 1 << 20] {
        let env = payload_env(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("http", size), &env, |b, env| {
            b.iter(|| black_box(http_call(&http_server.authority(), "fs", env).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("soap.tcp", size), &env, |b, env| {
            b.iter(|| black_box(tcp_client.call(env).unwrap()))
        });
    }
    group.finish();

    // Same-machine FSS copy (the "simply moves the file" path): the
    // in-process filesystem copy, no wire at all.
    let mut group = c.benchmark_group("E5-local-copy");
    for size in [1usize << 10, 1 << 18, 1 << 20] {
        let fs = grid_node::SimFs::new();
        fs.write("src/f.bin", vec![0u8; size]).unwrap();
        fs.create_dir("dst").unwrap();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("fs-copy", size), &size, |b, _| {
            b.iter(|| {
                let content = fs.read("src/f.bin").unwrap();
                fs.write("dst/f.bin", content).unwrap();
            })
        });
    }
    group.finish();

    // base64 encode/decode — the HTTP-path inflation cost.
    let mut group = c.benchmark_group("E5-base64");
    for size in [1usize << 14, 1 << 20] {
        let data = vec![0xC3u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &data, |b, d| {
            b.iter(|| black_box(base64::encode(d)))
        });
        let enc = base64::encode(&data);
        group.bench_with_input(BenchmarkId::new("decode", size), &enc, |b, e| {
            b.iter(|| black_box(base64::decode(e).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
