//! The Execution Service (§4.2).
//!
//! "The ES's WS-Resources are jobs, meaning that clients can interact
//! with their job by calling methods on the ES. Currently, these
//! methods allow the client to kill the job or to inquire about its
//! exit code (if it has exited). Each job resource has two Resource
//! Properties that allow clients to retrieve the job's status
//! (running, exited, etc.) and the job's CPU time used so far."
//!
//! The `Run` flow reproduces the paper's step-by-step behaviour:
//! create a working directory via the FSS (its EPR becomes the job's
//! working directory and is broadcast so the Scheduler can "fill in"
//! downstream input locations), direct the FSS to upload the inputs
//! and executable (one-way), and — on the upload-complete notification
//! — start the process via ProcSpawn under the user credentials that
//! arrived in the encrypted WS-Security header. Process exit flows
//! back as a notification carrying the exit code, which the ES
//! re-broadcasts through the Notification Broker.

use std::collections::HashMap;
use std::sync::Arc;

use grid_node::{Machine, ProcSpawn};
use parking_lot::Mutex;
use simclock::Clock;
use ws_notification::message::NotificationMessage;
use ws_notification::topics::TopicPath;
use wsrf_core::container::{action_uri, Ctx, OpKind, Service, ServiceBuilder, ServiceCore};
use wsrf_core::faults;
use wsrf_core::properties::PropertyDoc;
use wsrf_core::store::ResourceStore;
use wsrf_soap::ns::{UVACG, WSSE};
use wsrf_soap::{BaseFault, EndpointReference, Envelope, MessageInfo, SoapFault, TraceContext};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{Element, QName};

use crate::fss;
use crate::security::GridSecurity;

/// The job key reference property (Clark form).
pub fn job_key_property() -> String {
    format!("{{{UVACG}}}JobKey")
}

fn q(local: &str) -> QName {
    QName::new(UVACG, local)
}

/// Job status values exposed through the `Status` resource property.
pub mod status {
    /// Inputs are being staged by the FSS.
    pub const STAGING: &str = "Staging";
    /// The process is running.
    pub const RUNNING: &str = "Running";
    /// The process exited (see `ExitCode`; kills surface as exit −9).
    pub const EXITED: &str = "Exited";
    /// Staging or spawning failed; the process never ran.
    pub const FAILED: &str = "Failed";
}

/// Deployment configuration for one machine's Execution Service.
pub struct EsConfig {
    /// The machine to execute on.
    pub machine: Arc<Machine>,
    /// Its process spawner.
    pub spawner: Arc<ProcSpawn>,
    /// The machine's File System Service address.
    pub fss_address: String,
    /// Broker to publish job events through (None disables events).
    pub broker: Option<EndpointReference>,
    /// Campus PKI + this service's enrolled subject name; None accepts
    /// plaintext `<Credentials>` elements instead (insecure mode, used
    /// by unit tests and the security-off ablation).
    pub security: Option<(Arc<GridSecurity>, String)>,
    /// Resource state backend.
    pub store: Arc<dyn ResourceStore>,
}

/// Side table of data that must NOT appear in resource properties
/// (credentials) plus the job's deferred-spawn inputs.
struct PendingJob {
    user: String,
    password: String,
    exe_name: String,
    workdir_path: String,
    topic: String,
    job_name: String,
    /// Trace context of the originating `Run`, so the deferred spawn
    /// and its broadcasts stay in the submission's span tree.
    trace: Option<TraceContext>,
}

struct EsRuntime {
    pending: Mutex<HashMap<String, PendingJob>>,
    spawner: Arc<ProcSpawn>,
    broker: Option<EndpointReference>,
}

/// Build the Execution Service for one machine.
pub fn execution_service(cfg: EsConfig, clock: Clock, net: Arc<InProcNetwork>) -> Arc<Service> {
    let machine_name = cfg.machine.spec.name.clone();
    let address = format!("inproc://{machine_name}/Execution");
    let runtime = Arc::new(EsRuntime {
        pending: Mutex::new(HashMap::new()),
        spawner: cfg.spawner.clone(),
        broker: cfg.broker.clone(),
    });

    let rt_run = runtime.clone();
    let rt_upload = runtime.clone();
    let rt_kill = runtime.clone();
    let rt_cpu = runtime.clone();
    let machine = cfg.machine.clone();
    let fss_address = cfg.fss_address.clone();
    let security = cfg.security.clone();

    ServiceBuilder::new("Execution", address, cfg.store)
        .key_property(job_key_property())
        .static_operation("Run", move |ctx| {
            run_op(ctx, &machine, &fss_address, &security, &rt_run)
        })
        .raw_operation(
            action_uri("Execution", "UploadComplete"),
            OpKind::Static,
            move |ctx| upload_complete_op(ctx, &rt_upload),
        )
        .raw_operation(
            action_uri("Execution", "Kill"),
            OpKind::Static,
            move |ctx| kill_op(ctx, &rt_kill),
        )
        .read_operation("GetExitCode", |ctx| {
            let doc = ctx.resource_mut()?;
            match doc.text(&q("ExitCode")) {
                Some(code) => Ok(Element::new(UVACG, "GetExitCodeResponse").text(code)),
                None => Err(BaseFault::new(
                    "uvacg:NotExited",
                    format!(
                        "job has not exited (status: {})",
                        doc.text(&q("Status")).unwrap_or_default()
                    ),
                )),
            }
        })
        .read_operation("QueryJob", |ctx| {
            // One-call job snapshot (name, status, exit code, CPU time)
            // for pollers that would otherwise issue several
            // GetResourceProperty round trips; runs under a shared
            // lease so concurrent pollers never serialize each other.
            let core = ctx.core.clone();
            let doc = ctx.resource_mut()?;
            let mut resp = Element::new(UVACG, "QueryJobResponse")
                .attr("name", doc.text(&q("JobName")).unwrap_or_default())
                .attr("status", doc.text(&q("Status")).unwrap_or_default());
            if let Some(code) = doc.text(&q("ExitCode")) {
                resp = resp.attr("exitCode", code);
            }
            for v in core.property_values(doc, &q("CpuTimeUsed")) {
                resp = resp.attr("cpu", v.text_content());
            }
            Ok(resp)
        })
        .computed_property(q("CpuTimeUsed"), move |doc, _now| {
            // "the job's CPU time used so far": live from the process
            // table while running, frozen at exit.
            let live = doc
                .i64(&q("Pid"))
                .and_then(|pid| rt_cpu.spawner.status(pid as u64))
                .map(|s| match s {
                    grid_node::ProcStatus::Running { cpu_used } => cpu_used,
                    grid_node::ProcStatus::Done { cpu_used, .. } => cpu_used,
                });
            let value = live.or_else(|| doc.f64(&q("CpuAtExit"))).unwrap_or(0.0);
            vec![Element::with_name(q("CpuTimeUsed")).text(format!("{value:.6}"))]
        })
        .build(clock, net)
}

/// Decode credentials from the security header (or the plaintext
/// fallback in insecure deployments).
fn credentials(
    ctx: &Ctx<'_>,
    security: &Option<(Arc<GridSecurity>, String)>,
) -> Result<(String, String), BaseFault> {
    if let Some((sec, subject)) = security {
        let header = ctx
            .header(WSSE, "Security")
            .ok_or_else(|| BaseFault::new("uvacg:MissingCredentials", "no WS-Security header"))?;
        let token = sec.decrypt_token(header, subject).map_err(|e| {
            BaseFault::new(
                "uvacg:BadCredentials",
                format!("cannot decrypt credentials: {e}"),
            )
        })?;
        return Ok((token.username, token.password));
    }
    let el = ctx
        .body
        .find(UVACG, "Credentials")
        .ok_or_else(|| BaseFault::new("uvacg:MissingCredentials", "no Credentials element"))?;
    Ok((
        el.attr_value("user").unwrap_or_default().to_string(),
        el.attr_value("password").unwrap_or_default().to_string(),
    ))
}

fn run_op(
    ctx: &mut Ctx<'_>,
    machine: &Arc<Machine>,
    fss_address: &str,
    security: &Option<(Arc<GridSecurity>, String)>,
    rt: &Arc<EsRuntime>,
) -> Result<Element, BaseFault> {
    let job_name = ctx
        .body
        .attr_value("jobName")
        .ok_or_else(|| faults::bad_request("Run requires jobName"))?
        .to_string();
    let topic = ctx
        .body
        .find(UVACG, "Topic")
        .map(|e| e.text_content())
        .unwrap_or_default();

    // Fail fast on bad credentials — ProcSpawn would reject them later
    // anyway, but a synchronous fault reaches the submitter directly.
    let (user, password) = credentials(ctx, security)?;
    if !machine.check_credentials(&user, &password) {
        return Err(BaseFault::new(
            "uvacg:BadCredentials",
            format!("user '{user}' cannot log on to '{}'", machine.spec.name),
        ));
    }

    // Idempotent Run: a scheduler retrying after failover must not
    // stage or spawn a job this machine already accepted. The
    // (Topic, JobName) pair identifies the attempt across retries.
    if !topic.is_empty() {
        let core = ctx.core.clone();
        for key in core.store.list(&core.name) {
            let Ok(doc) = core.store.load(&core.name, &key) else {
                continue;
            };
            if doc.text(&q("Topic")).as_deref() == Some(topic.as_str())
                && doc.text(&q("JobName")).as_deref() == Some(job_name.as_str())
            {
                let mut resp = Element::new(UVACG, "RunResponse")
                    .child(core.epr_for(&key).to_element_named(UVACG, "JobEpr"));
                if let Some(wd) = doc.get(&q("WorkingDirectory")).first() {
                    resp.push_child(wd.clone());
                }
                return Ok(resp);
            }
        }
    }

    // Decode executable + inputs.
    let decode_file = |fe: &Element| -> Result<(EndpointReference, String, String), BaseFault> {
        let name = fe
            .attr_value("name")
            .ok_or_else(|| faults::bad_request("file element requires name"))?
            .to_string();
        let as_name = fe
            .attr_value("as")
            .map(str::to_string)
            .unwrap_or_else(|| name.clone());
        let src = fe
            .find(UVACG, "SourceEpr")
            .ok_or_else(|| faults::bad_request("file element requires SourceEpr"))?;
        let epr = EndpointReference::from_element(src)
            .map_err(|e| faults::bad_request(&format!("bad SourceEpr: {e}")))?;
        Ok((epr, name, as_name))
    };
    let exe_el = ctx
        .body
        .find(UVACG, "Executable")
        .ok_or_else(|| faults::bad_request("Run requires Executable"))?;
    let exe = decode_file(exe_el)?;
    let mut uploads = vec![exe.clone()];
    for ie in ctx.body.find_all(UVACG, "Input") {
        uploads.push(decode_file(ie)?);
    }

    // Step 4: create the working directory on our FSS.
    let trace = ctx.trace;
    let (dir_epr, dir_path) =
        fss::create_directory_traced(&ctx.core.net, fss_address, trace.as_ref())
            .map_err(|e| faults::storage(&format!("cannot create working directory: {e}")))?;

    // Create the job resource.
    let mut doc = PropertyDoc::new();
    doc.set_text(q("JobName"), &job_name);
    doc.set_text(q("Status"), status::STAGING);
    doc.set_text(q("Topic"), &topic);
    doc.set_text(q("WorkdirPath"), &dir_path);
    doc.update(
        q("WorkingDirectory"),
        vec![dir_epr
            .to_element_named(UVACG, "WorkingDirectory")
            .attr("job", &job_name)],
    );
    let job_epr = ctx.core.create_resource(doc)?;
    let job_key = faults::require_key(&job_epr, "job")?;

    rt.pending.lock().insert(
        job_key.clone(),
        PendingJob {
            user,
            password,
            exe_name: exe.2.clone(),
            workdir_path: dir_path,
            topic: topic.clone(),
            job_name: job_name.clone(),
            trace,
        },
    );

    // Step 9 (first half): broadcast the working directory EPR so the
    // Scheduler can fill in downstream file locations and the client
    // can watch the directory.
    publish(
        ctx.core,
        &rt.broker,
        &TopicPath::parse(&topic)
            .child("job")
            .child(&job_name)
            .child("dir"),
        dir_epr
            .to_element_named(UVACG, "WorkingDirectory")
            .attr("job", &job_name),
        &job_epr,
        trace.as_ref(),
    );

    // Step 4/5/6: one-way upload request; completion will arrive as a
    // one-way UploadComplete addressed to this job resource.
    let notify_to = job_epr.clone();
    fss::upload_files(
        &ctx.core.net,
        &dir_epr,
        &uploads,
        Some(&notify_to),
        &action_uri("Execution", "UploadComplete"),
        &job_key,
        trace.as_ref(),
    )
    .map_err(|e| faults::storage(&format!("cannot request upload: {e}")))?;

    Ok(Element::new(UVACG, "RunResponse")
        .child(job_epr.to_element_named(UVACG, "JobEpr"))
        .child(dir_epr.to_element_named(UVACG, "WorkingDirectory")))
}

fn upload_complete_op(ctx: &mut Ctx<'_>, rt: &Arc<EsRuntime>) -> Result<Element, BaseFault> {
    let key = ctx.key()?.to_string();
    let trace = ctx.trace;
    let core = ctx.core.clone();
    let mut doc = core
        .store
        .load(&core.name, &key)
        .map_err(faults::from_store)?;
    let Some(pending) = rt.pending.lock().remove(&key) else {
        return Err(BaseFault::new(
            "uvacg:UnexpectedUpload",
            format!("job '{key}' has no pending upload"),
        ));
    };
    let job_epr = core.epr_for(&key);
    let topic_base = TopicPath::parse(&pending.topic)
        .child("job")
        .child(&pending.job_name);

    // Any failed file aborts the job.
    let failures: Vec<String> = ctx
        .body
        .find_all(UVACG, "Failure")
        .map(|f| {
            format!(
                "{}: {}",
                f.attr_value("file").unwrap_or("?"),
                f.text_content()
            )
        })
        .collect();
    if !failures.is_empty() {
        doc.set_text(q("Status"), status::FAILED);
        doc.set_text(q("FailureReason"), failures.join("; "));
        core.store
            .save(&core.name, &key, &doc)
            .map_err(faults::from_store)?;
        publish(
            &core,
            &rt.broker,
            &topic_base.child("failed"),
            Element::new(UVACG, "JobFailed")
                .attr("job", &pending.job_name)
                .text(failures.join("; ")),
            &job_epr,
            trace.as_ref(),
        );
        return Ok(Element::new(UVACG, "UploadCompleteAck"));
    }

    // Step 8: start the process via ProcSpawn. Persist Running and
    // broadcast "started" BEFORE spawning: a zero-work program's exit
    // callback runs inline inside spawn(), and writing Running (or
    // publishing "started") after it would clobber/reorder the exit.
    doc.set_text(q("Status"), status::RUNNING);
    core.store
        .save(&core.name, &key, &doc)
        .map_err(faults::from_store)?;
    // Step 9 (second half): broadcast the job's EPR so anyone may poll
    // its Status resource property.
    publish(
        &core,
        &rt.broker,
        &topic_base.child("started"),
        job_epr
            .to_element_named(UVACG, "JobEpr")
            .attr("job", &pending.job_name),
        &job_epr,
        trace.as_ref(),
    );

    let exe_path = format!("{}/{}", pending.workdir_path, pending.exe_name);
    let core_exit = core.clone();
    let rt_exit = rt.clone();
    let key_exit = key.clone();
    let job_epr_exit = job_epr.clone();
    let topic_exit = topic_base.clone();
    let job_name_exit = pending.job_name.clone();
    // The exit broadcast is causally part of the submission even when
    // the process outlives the UploadComplete dispatch: parent it under
    // the Run's trace, not the (already-finished) dispatch span.
    let trace_exit = pending.trace.or(trace);
    let spawned = rt.spawner.spawn(
        &exe_path,
        &pending.workdir_path,
        &pending.user,
        &pending.password,
        move |code, cpu_used| {
            on_process_exit(
                &core_exit,
                &rt_exit.broker,
                &key_exit,
                &job_epr_exit,
                &topic_exit,
                &job_name_exit,
                code,
                cpu_used,
                trace_exit.as_ref(),
            );
        },
    );
    match spawned {
        Ok(pid) => {
            // Reload: the exit callback may already have run inline
            // (zero-work programs); only record the pid.
            let mut doc = core
                .store
                .load(&core.name, &key)
                .map_err(faults::from_store)?;
            doc.set_i64(q("Pid"), pid as i64);
            core.store
                .save(&core.name, &key, &doc)
                .map_err(faults::from_store)?;
            Ok(Element::new(UVACG, "UploadCompleteAck"))
        }
        Err(e) => {
            let mut doc = core
                .store
                .load(&core.name, &key)
                .map_err(faults::from_store)?;
            doc.set_text(q("Status"), status::FAILED);
            doc.set_text(q("FailureReason"), e.to_string());
            core.store
                .save(&core.name, &key, &doc)
                .map_err(faults::from_store)?;
            publish(
                &core,
                &rt.broker,
                &topic_base.child("failed"),
                Element::new(UVACG, "JobFailed")
                    .attr("job", &pending.job_name)
                    .text(e.to_string()),
                &job_epr,
                trace.as_ref(),
            );
            Ok(Element::new(UVACG, "UploadCompleteAck"))
        }
    }
}

/// Step 10: the process exited; record and re-broadcast.
#[allow(clippy::too_many_arguments)]
fn on_process_exit(
    core: &Arc<ServiceCore>,
    broker: &Option<EndpointReference>,
    key: &str,
    job_epr: &EndpointReference,
    topic_base: &TopicPath,
    job_name: &str,
    code: i32,
    cpu_used: f64,
    trace: Option<&TraceContext>,
) {
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        doc.set_text(q("Status"), status::EXITED);
        doc.set_i64(q("ExitCode"), code as i64);
        doc.set_f64(q("CpuAtExit"), cpu_used);
        let _ = core.store.save(&core.name, key, &doc);
    }
    publish(
        core,
        broker,
        &topic_base.child("exit"),
        Element::new(UVACG, "JobExit")
            .attr("job", job_name)
            .attr("code", code.to_string())
            .attr("cpu", format!("{cpu_used:.6}"))
            .child(job_epr.to_element_named(UVACG, "JobEpr")),
        job_epr,
        trace,
    );
}

fn kill_op(ctx: &mut Ctx<'_>, rt: &Arc<EsRuntime>) -> Result<Element, BaseFault> {
    let key = ctx.key()?.to_string();
    let core = ctx.core.clone();
    let doc = core
        .store
        .load(&core.name, &key)
        .map_err(faults::from_store)?;
    let pid = doc
        .i64(&q("Pid"))
        .ok_or_else(|| BaseFault::new("uvacg:NotRunning", "job has no process"))?;
    let killed = rt.spawner.kill(pid as u64);
    // The exit callback updates the resource and broadcasts.
    Ok(Element::new(UVACG, "KillResponse").attr("killed", killed.to_string()))
}

/// Publish an event through the broker (silently skipped when no
/// broker is deployed).
fn publish(
    core: &Arc<ServiceCore>,
    broker: &Option<EndpointReference>,
    topic: &TopicPath,
    payload: Element,
    producer: &EndpointReference,
    trace: Option<&TraceContext>,
) {
    let Some(b) = broker else { return };
    let msg = NotificationMessage::new(topic.clone(), payload).from_producer(producer.clone());
    let mut env = msg.to_envelope(b);
    if let Some(tc) = trace {
        tc.stamp(&mut env);
    }
    let _ = core.net.send_oneway(&b.address, env);
}

// ---------------------------------------------------------------------
// Client-side helpers
// ---------------------------------------------------------------------

/// A decoded `Run` request (helper for the Scheduler and tests).
pub struct RunRequest {
    /// Job name within its set.
    pub job_name: String,
    /// Executable `(source, filename, staged-as)`.
    pub executable: (EndpointReference, String, String),
    /// Inputs `(source, filename, staged-as)`.
    pub inputs: Vec<(EndpointReference, String, String)>,
    /// Notification topic base for this job set.
    pub topic: String,
    /// Encrypted WS-Security header (secure deployments).
    pub security_header: Option<Element>,
    /// Plaintext credentials (insecure deployments).
    pub plain_credentials: Option<(String, String)>,
    /// Trace context to stamp on the `Run` message (step 3), parenting
    /// the ES dispatch under the caller's span tree.
    pub trace: Option<TraceContext>,
}

/// The useful parts of a `RunResponse`.
#[derive(Debug, Clone)]
pub struct RunReply {
    /// The job's EPR (poll its `Status` / `CpuTimeUsed`, or `Kill` it).
    pub job: EndpointReference,
    /// The working directory's EPR (fetch outputs from here).
    pub workdir: EndpointReference,
}

/// Invoke `Run` on an Execution Service.
pub fn run(net: &InProcNetwork, es_address: &str, req: &RunRequest) -> Result<RunReply, SoapFault> {
    let file_el = |tag: &str, (src, name, as_name): &(EndpointReference, String, String)| {
        Element::new(UVACG, tag)
            .attr("name", name)
            .attr("as", as_name)
            .child(src.to_element_named(UVACG, "SourceEpr"))
    };
    let mut body = Element::new(UVACG, "Run")
        .attr("jobName", &req.job_name)
        .child(Element::new(UVACG, "Topic").text(&req.topic))
        .child(file_el("Executable", &req.executable));
    for i in &req.inputs {
        body.push_child(file_el("Input", i));
    }
    if let Some((u, p)) = &req.plain_credentials {
        body.push_child(
            Element::new(UVACG, "Credentials")
                .attr("user", u)
                .attr("password", p),
        );
    }
    let mut env = Envelope::new(body);
    MessageInfo::request(
        EndpointReference::service(es_address),
        action_uri("Execution", "Run"),
    )
    .apply(&mut env);
    if let Some(h) = &req.security_header {
        env.headers.push(h.clone());
    }
    if let Some(tc) = &req.trace {
        tc.stamp(&mut env);
    }
    let resp = net
        .call(es_address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    let epr_in = |tag: &str| -> Result<EndpointReference, SoapFault> {
        resp.body
            .find(UVACG, tag)
            .ok_or_else(|| SoapFault::server(format!("RunResponse missing {tag}")))
            .and_then(|e| {
                EndpointReference::from_element(e).map_err(|e| SoapFault::server(e.to_string()))
            })
    };
    Ok(RunReply {
        job: epr_in("JobEpr")?,
        workdir: epr_in("WorkingDirectory")?,
    })
}

/// Kill a job by its EPR.
pub fn kill(net: &InProcNetwork, job: &EndpointReference) -> Result<bool, SoapFault> {
    let mut env = Envelope::new(Element::new(UVACG, "Kill"));
    MessageInfo::request(job.clone(), action_uri("Execution", "Kill")).apply(&mut env);
    let resp = net
        .call(&job.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    Ok(resp.body.attr_value("killed") == Some("true"))
}

/// Read a job's `Status` resource property ("allowing either to poll
/// the job for its status (with GetResourceProperty calls)").
pub fn job_status(net: &InProcNetwork, job: &EndpointReference) -> Result<String, SoapFault> {
    get_property_text(net, job, "Status")
}

/// Read a job's live `CpuTimeUsed` resource property.
pub fn job_cpu_time(net: &InProcNetwork, job: &EndpointReference) -> Result<f64, SoapFault> {
    get_property_text(net, job, "CpuTimeUsed")?
        .parse()
        .map_err(|_| SoapFault::server("CpuTimeUsed is not a number"))
}

/// One-call job snapshot returned by the read-only `QueryJob` op.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Job name within its set.
    pub name: String,
    /// Current `Status` property value.
    pub status: String,
    /// Exit code, once the process has exited.
    pub exit_code: Option<i64>,
    /// CPU seconds used so far (live while running).
    pub cpu_time: f64,
}

/// Poll a job with a single `QueryJob` call instead of one
/// `GetResourceProperty` round trip per property.
pub fn query_job(net: &InProcNetwork, job: &EndpointReference) -> Result<JobSnapshot, SoapFault> {
    let mut env = Envelope::new(Element::new(UVACG, "QueryJob"));
    MessageInfo::request(job.clone(), action_uri("Execution", "QueryJob")).apply(&mut env);
    let resp = net
        .call(&job.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    Ok(JobSnapshot {
        name: resp.body.attr_value("name").unwrap_or_default().to_string(),
        status: resp
            .body
            .attr_value("status")
            .unwrap_or_default()
            .to_string(),
        exit_code: resp
            .body
            .attr_value("exitCode")
            .and_then(|c| c.parse().ok()),
        cpu_time: resp
            .body
            .attr_value("cpu")
            .and_then(|c| c.parse().ok())
            .unwrap_or(0.0),
    })
}

fn get_property_text(
    net: &InProcNetwork,
    resource: &EndpointReference,
    property: &str,
) -> Result<String, SoapFault> {
    let mut env =
        Envelope::new(Element::new(wsrf_soap::ns::WSRP, "GetResourceProperty").text(property));
    MessageInfo::request(
        resource.clone(),
        wsrf_core::porttypes::wsrp_action("GetResourceProperty"),
    )
    .apply(&mut env);
    let resp = net
        .call(&resource.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    Ok(resp.body.text_content())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_node::{JobProgram, MachineSpec};
    use std::time::Duration;
    use ws_notification::broker::notification_broker;
    use ws_notification::consumer::NotificationListener;
    use ws_notification::topics::TopicExpression;
    use wsrf_core::store::MemoryStore;
    use wsrf_security::wsse::UsernameToken;

    struct Fixture {
        clock: Clock,
        net: Arc<InProcNetwork>,
        machine: Arc<Machine>,
        listener: NotificationListener,
        es_addr: String,
        fss_addr: String,
    }

    /// Full single-machine deployment: FSS + ES + broker + listener.
    fn fixture() -> Fixture {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let machine = Machine::new(
            MachineSpec::new("m1")
                .with_cpu_mhz(1000)
                .with_user("alice", "pw"),
            clock.clone(),
        );
        let fss = fss::file_system_service(
            "m1",
            machine.fs.clone(),
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
        );
        fss.register(&net);
        let broker = notification_broker(
            "Broker",
            "inproc://hub/Broker",
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
        );
        broker.register(&net);
        let listener = NotificationListener::register(&net, "inproc://client/listener");
        ws_notification::broker::subscribe(
            &net,
            &broker.core().service_epr(),
            &listener.epr(),
            &TopicExpression::full("js//"),
            None,
        )
        .unwrap();
        let spawner = Arc::new(ProcSpawn::new(machine.clone()));
        let es = execution_service(
            EsConfig {
                machine: machine.clone(),
                spawner,
                fss_address: "inproc://m1/FileSystem".into(),
                broker: Some(broker.core().service_epr()),
                security: None,
                store: Arc::new(MemoryStore::new()),
            },
            clock.clone(),
            net.clone(),
        );
        es.register(&net);
        Fixture {
            clock,
            net,
            machine,
            listener,
            es_addr: "inproc://m1/Execution".into(),
            fss_addr: "inproc://m1/FileSystem".into(),
        }
    }

    /// Stage an executable into a fresh grid directory; returns its
    /// directory EPR.
    fn stage_exe(f: &Fixture, prog: &JobProgram) -> EndpointReference {
        let (dir, _) = fss::create_directory(&f.net, &f.fss_addr).unwrap();
        fss::write(&f.net, &dir, "prog.exe", &prog.to_manifest()).unwrap();
        dir
    }

    fn basic_request(f: &Fixture, prog: &JobProgram) -> RunRequest {
        let dir = stage_exe(f, prog);
        RunRequest {
            job_name: "job1".into(),
            executable: (dir, "prog.exe".into(), "prog.exe".into()),
            inputs: vec![],
            topic: "js".into(),
            security_header: None,
            plain_credentials: Some(("alice".into(), "pw".into())),
            trace: None,
        }
    }

    #[test]
    fn run_stages_executes_and_reports_exit() {
        let f = fixture();
        let prog = JobProgram::compute(3.0).writing("out.dat", 64);
        let reply = run(&f.net, &f.es_addr, &basic_request(&f, &prog)).unwrap();

        // With zero network latency the upload completes inline, so the
        // job is already running.
        assert_eq!(job_status(&f.net, &reply.job).unwrap(), status::RUNNING);
        f.clock.advance(Duration::from_secs_f64(1.5));
        let cpu = job_cpu_time(&f.net, &reply.job).unwrap();
        assert!((cpu - 1.5).abs() < 1e-3, "live cpu time {cpu}");

        f.clock.advance(Duration::from_secs(2));
        assert_eq!(job_status(&f.net, &reply.job).unwrap(), status::EXITED);

        // The output landed in the broadcast working directory.
        let entries = fss::list(&f.net, &reply.workdir).unwrap();
        assert!(entries
            .iter()
            .any(|(n, s)| n == "out.dat" && *s == Some(64)));

        // Events: dir, started, exit.
        let topics: Vec<String> = f
            .listener
            .received()
            .iter()
            .map(|m| m.topic.to_string())
            .collect();
        assert_eq!(
            topics,
            ["js/job/job1/dir", "js/job/job1/started", "js/job/job1/exit"]
        );
        let exit = &f.listener.received()[2];
        assert_eq!(exit.payload.attr_value("code"), Some("0"));
    }

    #[test]
    fn inputs_are_staged_before_start() {
        let f = fixture();
        let prog = JobProgram::compute(1.0).reading("data.in");
        let exe_dir = stage_exe(&f, &prog);
        let (input_dir, _) = fss::create_directory(&f.net, &f.fss_addr).unwrap();
        fss::write(&f.net, &input_dir, "source.dat", b"input bytes").unwrap();
        let req = RunRequest {
            job_name: "j".into(),
            executable: (exe_dir, "prog.exe".into(), "prog.exe".into()),
            inputs: vec![(input_dir, "source.dat".into(), "data.in".into())],
            topic: "js".into(),
            security_header: None,
            plain_credentials: Some(("alice".into(), "pw".into())),
            trace: None,
        };
        let reply = run(&f.net, &f.es_addr, &req).unwrap();
        f.clock.advance(Duration::from_secs(2));
        assert_eq!(job_status(&f.net, &reply.job).unwrap(), status::EXITED);
        let mut env = Envelope::new(Element::new(UVACG, "GetExitCode"));
        MessageInfo::request(reply.job.clone(), action_uri("Execution", "GetExitCode"))
            .apply(&mut env);
        let resp = f.net.call(&f.es_addr, env).unwrap();
        assert_eq!(resp.body.text_content(), "0", "input was present so exit 0");
    }

    #[test]
    fn missing_input_fails_job_with_notification() {
        let f = fixture();
        let prog = JobProgram::compute(1.0);
        let exe_dir = stage_exe(&f, &prog);
        let req = RunRequest {
            job_name: "j".into(),
            executable: (exe_dir.clone(), "prog.exe".into(), "prog.exe".into()),
            inputs: vec![(exe_dir, "no-such-file.dat".into(), "in.dat".into())],
            topic: "js".into(),
            security_header: None,
            plain_credentials: Some(("alice".into(), "pw".into())),
            trace: None,
        };
        let reply = run(&f.net, &f.es_addr, &req).unwrap();
        assert_eq!(job_status(&f.net, &reply.job).unwrap(), status::FAILED);
        let failed = f.listener.on(&"js/job/j/failed".into());
        assert_eq!(failed.len(), 1);
        assert!(failed[0]
            .payload
            .text_content()
            .contains("no-such-file.dat"));
    }

    #[test]
    fn bad_credentials_fault_synchronously() {
        let f = fixture();
        let mut req = basic_request(&f, &JobProgram::compute(1.0));
        req.plain_credentials = Some(("alice".into(), "WRONG".into()));
        let err = run(&f.net, &f.es_addr, &req).unwrap_err();
        assert_eq!(err.error_code(), Some("uvacg:BadCredentials"));
        let mut req = basic_request(&f, &JobProgram::compute(1.0));
        req.plain_credentials = None;
        let err = run(&f.net, &f.es_addr, &req).unwrap_err();
        assert_eq!(err.error_code(), Some("uvacg:MissingCredentials"));
    }

    #[test]
    fn encrypted_credentials_accepted() {
        // Rebuild the fixture with security enabled.
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let machine = Machine::new(
            MachineSpec::new("m1").with_user("alice", "pw"),
            clock.clone(),
        );
        let fss_svc = fss::file_system_service(
            "m1",
            machine.fs.clone(),
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
        );
        fss_svc.register(&net);
        let sec = GridSecurity::new(11);
        sec.enroll("es@m1");
        let es = execution_service(
            EsConfig {
                machine: machine.clone(),
                spawner: Arc::new(ProcSpawn::new(machine.clone())),
                fss_address: "inproc://m1/FileSystem".into(),
                broker: None,
                security: Some((sec.clone(), "es@m1".into())),
                store: Arc::new(MemoryStore::new()),
            },
            clock.clone(),
            net.clone(),
        );
        es.register(&net);

        let (dir, _) = fss::create_directory(&net, "inproc://m1/FileSystem").unwrap();
        fss::write(
            &net,
            &dir,
            "prog.exe",
            &JobProgram::compute(1.0).to_manifest(),
        )
        .unwrap();
        let header = sec
            .encrypt_token(&UsernameToken::new("alice", "pw"), "es@m1")
            .unwrap();
        let req = RunRequest {
            job_name: "secure".into(),
            executable: (dir, "prog.exe".into(), "prog.exe".into()),
            inputs: vec![],
            topic: "t".into(),
            security_header: Some(header),
            plain_credentials: None,
            trace: None,
        };
        let reply = run(&net, "inproc://m1/Execution", &req).unwrap();
        clock.advance(Duration::from_secs(2));
        assert_eq!(job_status(&net, &reply.job).unwrap(), status::EXITED);
        // A header encrypted to someone else is rejected.
        sec.enroll("other");
        let bad = sec
            .encrypt_token(&UsernameToken::new("alice", "pw"), "other")
            .unwrap();
        let (dir2, _) = fss::create_directory(&net, "inproc://m1/FileSystem").unwrap();
        fss::write(
            &net,
            &dir2,
            "prog.exe",
            &JobProgram::compute(1.0).to_manifest(),
        )
        .unwrap();
        let req2 = RunRequest {
            job_name: "bad".into(),
            executable: (dir2, "prog.exe".into(), "prog.exe".into()),
            inputs: vec![],
            topic: "t".into(),
            security_header: Some(bad),
            plain_credentials: None,
            trace: None,
        };
        let err = run(&net, "inproc://m1/Execution", &req2).unwrap_err();
        assert_eq!(err.error_code(), Some("uvacg:BadCredentials"));
    }

    #[test]
    fn kill_terminates_and_reports_minus_nine() {
        let f = fixture();
        let reply = run(
            &f.net,
            &f.es_addr,
            &basic_request(&f, &JobProgram::compute(1000.0)),
        )
        .unwrap();
        f.clock.advance(Duration::from_secs(5));
        assert!(kill(&f.net, &reply.job).unwrap());
        assert_eq!(job_status(&f.net, &reply.job).unwrap(), status::EXITED);
        let exits = f.listener.on(&"js/job/job1/exit".into());
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].payload.attr_value("code"), Some("-9"));
        let cpu: f64 = exits[0].payload.attr_value("cpu").unwrap().parse().unwrap();
        assert!((cpu - 5.0).abs() < 1e-3);
    }

    #[test]
    fn query_job_snapshots_in_one_call() {
        let f = fixture();
        let reply = run(
            &f.net,
            &f.es_addr,
            &basic_request(&f, &JobProgram::compute(2.0)),
        )
        .unwrap();
        f.clock.advance(Duration::from_secs(1));
        let snap = query_job(&f.net, &reply.job).unwrap();
        assert_eq!(snap.name, "job1");
        assert_eq!(snap.status, status::RUNNING);
        assert!(snap.exit_code.is_none());
        assert!(
            (snap.cpu_time - 1.0).abs() < 1e-3,
            "live cpu {}",
            snap.cpu_time
        );
        f.clock.advance(Duration::from_secs(2));
        let snap = query_job(&f.net, &reply.job).unwrap();
        assert_eq!(snap.status, status::EXITED);
        assert_eq!(snap.exit_code, Some(0));
    }

    #[test]
    fn get_exit_code_faults_while_running() {
        let f = fixture();
        let reply = run(
            &f.net,
            &f.es_addr,
            &basic_request(&f, &JobProgram::compute(100.0)),
        )
        .unwrap();
        let mut env = Envelope::new(Element::new(UVACG, "GetExitCode"));
        MessageInfo::request(reply.job.clone(), action_uri("Execution", "GetExitCode"))
            .apply(&mut env);
        let resp = f.net.call(&f.es_addr, env).unwrap();
        assert_eq!(resp.fault().unwrap().error_code(), Some("uvacg:NotExited"));
    }

    #[test]
    fn nonzero_exit_code_propagates_to_notification() {
        let f = fixture();
        let reply = run(
            &f.net,
            &f.es_addr,
            &basic_request(&f, &JobProgram::compute(1.0).exiting(42)),
        )
        .unwrap();
        f.clock.advance(Duration::from_secs(2));
        let exits = f.listener.on(&"js/job/job1/exit".into());
        assert_eq!(exits[0].payload.attr_value("code"), Some("42"));
        let _ = reply;
    }

    #[test]
    fn two_jobs_share_the_machine() {
        let f = fixture();
        let r1 = run(
            &f.net,
            &f.es_addr,
            &basic_request(&f, &JobProgram::compute(2.0)),
        )
        .unwrap();
        let mut req2 = basic_request(&f, &JobProgram::compute(2.0));
        req2.job_name = "job2".into();
        let r2 = run(&f.net, &f.es_addr, &req2).unwrap();
        // Processor sharing: both take ~4 virtual seconds.
        f.clock.advance(Duration::from_secs_f64(3.5));
        assert_eq!(job_status(&f.net, &r1.job).unwrap(), status::RUNNING);
        f.clock.advance(Duration::from_secs_f64(0.7));
        assert_eq!(job_status(&f.net, &r1.job).unwrap(), status::EXITED);
        assert_eq!(job_status(&f.net, &r2.job).unwrap(), status::EXITED);
        assert_eq!(f.machine.utilization(), 0.0);
    }

    #[test]
    fn keyless_job_epr_faults_instead_of_panicking() {
        // Run() extracts the fresh job resource's key via
        // faults::require_key; a keyless (service-style) EPR must come
        // back as a BadRequest fault, never a panic.
        let keyless = EndpointReference::service("inproc://m1/ES");
        let fault = faults::require_key(&keyless, "job").unwrap_err();
        assert_eq!(fault.error_code, "wsrf:BadRequest");
        assert!(fault
            .description
            .contains("job EPR carries no resource key"));
    }
}
