//! Whole-campus assembly: deploy every service of Figure 3 in one
//! call.

use std::sync::Arc;

use grid_node::{Machine, MachineSpec, ProcSpawn};
use simclock::Clock;
use ws_notification::broker::notification_broker;
use wsrf_core::container::Service;
use wsrf_core::store::MemoryStore;
use wsrf_obs::{MetricsRegistry, MetricsSnapshot, ObsConfig, TraceConfig};
use wsrf_soap::EndpointReference;
use wsrf_transport::{InProcNetwork, NetConfig};

use crate::client::Client;
use crate::es::{execution_service, EsConfig};
use crate::fss::file_system_service;
use crate::monitor::{monitor_service, EventPump};
use crate::nis::{self, node_info_service};
use crate::policy::{FastestAvailable, SchedulingPolicy};
use crate::scheduler::{scheduler_service, standby_scheduler, Scheduler, SchedulerConfig, Standby};
use crate::security::GridSecurity;
use wsrf_core::store::ResourceStore;

/// Campus deployment configuration.
pub struct GridConfig {
    /// The machines to boot.
    pub machines: Vec<MachineSpec>,
    /// Network cost model.
    pub net: NetConfig,
    /// Scheduler placement policy.
    pub policy: Arc<dyn SchedulingPolicy>,
    /// Encrypt credentials end to end (WS-Security headers)?
    pub secure: bool,
    /// Utilization-monitor reporting threshold ("changes by more than
    /// a configurable amount").
    pub utilization_delta: f64,
    /// Seed for the PKI.
    pub seed: u64,
    /// Per-job watchdog timeout (virtual time); see
    /// [`crate::scheduler::SchedulerConfig::job_timeout`].
    pub job_timeout: Option<std::time::Duration>,
    /// Observability switch; enabled grids record dispatch, transport,
    /// broker and scheduler metrics into [`CampusGrid::metrics`].
    pub obs: ObsConfig,
    /// Distributed-tracing switch (default off, like sampling-off
    /// profilers); enabled grids stamp trace contexts onto SOAP headers
    /// and collect per-submission span trees.
    pub trace: TraceConfig,
    /// Scheduler state backend (None = a fresh in-memory store). Pass
    /// a [`wsrf_core::DurableStore`] to make job-set state survive a
    /// scheduler crash.
    pub scheduler_store: Option<Arc<dyn ResourceStore>>,
    /// Replicate scheduler job-set state over the notification fabric
    /// so a [`CampusGrid::spawn_standby`] can take over after a crash.
    pub replicate: bool,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            machines: Vec::new(),
            net: NetConfig::default(),
            policy: Arc::new(FastestAvailable),
            secure: false,
            utilization_delta: 0.1,
            seed: 0xCA11_AB1E,
            job_timeout: None,
            obs: ObsConfig::enabled(),
            trace: TraceConfig::disabled(),
            scheduler_store: None,
            replicate: false,
        }
    }
}

impl GridConfig {
    /// `n` heterogeneous lab machines: speeds cycle through 1.0, 1.5,
    /// 2.0, 3.0 GHz with 1–2 cores, all with the default grid account.
    pub fn with_machines(n: usize) -> Self {
        let speeds = [1000u32, 1500, 2000, 3000];
        let machines = (0..n)
            .map(|i| {
                MachineSpec::new(format!("machine{:02}", i + 1))
                    .with_cpu_mhz(speeds[i % speeds.len()])
                    .with_cores(1 + (i % 2) as u32)
                    .with_ram_mb(512 * (1 + (i % 4) as u32))
            })
            .collect();
        GridConfig {
            machines,
            ..GridConfig::default()
        }
    }

    /// Builder: enable WS-Security credential encryption.
    pub fn secure(mut self) -> Self {
        self.secure = true;
        self
    }

    /// Builder: set the placement policy.
    pub fn with_policy(mut self, policy: Arc<dyn SchedulingPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Builder: set the network cost model.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Builder: arm the per-job watchdog.
    pub fn with_job_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.job_timeout = Some(timeout);
        self
    }

    /// Builder: degrade the link to one machine — every message to
    /// `authority` pays `latency` regardless of size. The fault E6b
    /// injects: the NIS still advertises the machine's full speed, so
    /// only observed behaviour can reveal the slow uplink.
    pub fn with_slow_authority(mut self, authority: &str, latency: std::time::Duration) -> Self {
        self.net.per_authority.insert(
            authority.to_ascii_lowercase(),
            wsrf_transport::LinkProfile {
                latency,
                bandwidth_bps: u64::MAX,
                overhead_bytes: 0,
                inflation: 1.0,
            },
        );
        self
    }

    /// Builder: set the observability switch (E1 measures the disabled
    /// configuration against the default enabled one).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Builder: enable distributed tracing. Every SOAP message then
    /// carries a `{UVACG}TraceContext` header and each submission's
    /// span tree is queryable through the job set's `Trace` resource
    /// property.
    pub fn with_tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Builder: back the scheduler's job-set resources with `store`
    /// (e.g. a [`wsrf_core::DurableStore`] over a WAL directory).
    pub fn with_scheduler_store(mut self, store: Arc<dyn ResourceStore>) -> Self {
        self.scheduler_store = Some(store);
        self
    }

    /// Builder: turn on primary→standby replication of scheduler
    /// state (see [`CampusGrid::spawn_standby`]).
    pub fn with_replication(mut self) -> Self {
        self.replicate = true;
        self
    }
}

/// A fully deployed campus grid.
pub struct CampusGrid {
    /// The shared virtual clock.
    pub clock: Clock,
    /// The simulated campus network.
    pub net: Arc<InProcNetwork>,
    /// The booted machines (same order as the config).
    pub machines: Vec<Arc<Machine>>,
    /// The Scheduler (service + its listener).
    pub scheduler: Scheduler,
    /// The broker's EPR.
    pub broker: EndpointReference,
    /// The Node Info Service address.
    pub nis_address: String,
    /// The campus PKI when `secure` was set.
    pub security: Option<Arc<GridSecurity>>,
    /// Deployment-wide metrics registry; every service, the network
    /// and the broker record into it (disabled via
    /// [`GridConfig::with_obs`]).
    pub metrics: Arc<MetricsRegistry>,
    /// Keeps every deployed service alive.
    services: Vec<Arc<Service>>,
    /// The monitoring-plane WSRF service: `{UVACG}EventLog` and
    /// `{UVACG}Health` computed RPs on the well-known `monitor`
    /// resource (kept out of `services` so Figure 3 service counts
    /// stay what the paper describes).
    monitor: Arc<Service>,
    /// Bridges the registry's event rings onto the `monitor/events`
    /// notification topic. Not started automatically — flush with
    /// [`CampusGrid::pump_events`] or schedule via [`EventPump::start`]
    /// so message-count assertions elsewhere stay undisturbed.
    event_pump: Arc<EventPump>,
    /// What [`CampusGrid::spawn_standby`] needs to mirror the primary.
    scheduler_store: Arc<dyn ResourceStore>,
    policy: Arc<dyn SchedulingPolicy>,
    job_timeout: Option<std::time::Duration>,
    replicate: bool,
}

/// Well-known hub addresses.
pub const BROKER_ADDRESS: &str = "inproc://hub/Broker";
/// Node Info Service address.
pub const NIS_ADDRESS: &str = "inproc://hub/NodeInfo";
/// Scheduler address.
pub const SCHEDULER_ADDRESS: &str = "inproc://hub/Scheduler";
/// Scheduler subject name in the PKI.
pub const SCHEDULER_SUBJECT: &str = "scheduler";
/// The primary scheduler's listener address.
pub const SCHEDULER_LISTENER_ADDRESS: &str = "inproc://hub/SchedulerListener";
/// Monitor service address (EventLog/Health RPs).
pub const MONITOR_ADDRESS: &str = "inproc://hub/Monitor";
/// The standby scheduler's listener address.
pub const STANDBY_LISTENER_ADDRESS: &str = "inproc://hub/StandbyListener";

impl CampusGrid {
    /// Deploy the whole testbed on `clock`.
    pub fn build(config: GridConfig, clock: Clock) -> CampusGrid {
        let metrics = MetricsRegistry::with_tracing(config.obs, config.trace);
        // Services built on this network inherit the registry.
        let net = InProcNetwork::with_metrics(clock.clone(), config.net.clone(), &metrics);
        let mut services = Vec::new();

        // Campus PKI.
        let security = config.secure.then(|| {
            let sec = GridSecurity::new(config.seed);
            sec.enroll(SCHEDULER_SUBJECT);
            for m in &config.machines {
                sec.enroll(&format!("es@{}", m.name));
            }
            sec
        });

        // Notification Broker.
        let broker_svc = notification_broker(
            "Broker",
            BROKER_ADDRESS,
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
        );
        broker_svc.register(&net);
        let broker = broker_svc.core().service_epr();
        services.push(broker_svc);

        // Node Info Service.
        let nis_svc = node_info_service(
            NIS_ADDRESS,
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
        );
        nis_svc.register(&net);
        services.push(nis_svc);

        // Machines: FSS + ES + ProcSpawn + utilization monitor.
        let mut machines = Vec::new();
        for spec in &config.machines {
            let machine = Machine::new(spec.clone(), clock.clone());
            let name = &spec.name;
            let fss_address = format!("inproc://{name}/FileSystem");
            let es_address = format!("inproc://{name}/Execution");

            let fss = file_system_service(
                name,
                machine.fs.clone(),
                Arc::new(MemoryStore::new()),
                clock.clone(),
                net.clone(),
            );
            fss.register(&net);
            services.push(fss);

            let spawner = Arc::new(ProcSpawn::new(machine.clone()));
            let es = execution_service(
                EsConfig {
                    machine: machine.clone(),
                    spawner,
                    fss_address: fss_address.clone(),
                    broker: Some(broker.clone()),
                    security: security.as_ref().map(|s| (s.clone(), format!("es@{name}"))),
                    store: Arc::new(MemoryStore::new()),
                },
                clock.clone(),
                net.clone(),
            );
            es.register(&net);
            services.push(es);

            nis::register_machine(
                &net,
                NIS_ADDRESS,
                name,
                spec.cpu_mhz,
                spec.cores,
                spec.ram_mb,
                &es_address,
                &fss_address,
            )
            .expect("NIS registration cannot fail on a fresh grid");

            // The Processor Utilization "Windows service": one-way
            // reports to the NIS on threshold crossings.
            let net_for_monitor = net.clone();
            let machine_name = name.clone();
            machine.monitor_utilization(config.utilization_delta, move |u| {
                let _ = nis::report_utilization(&net_for_monitor, NIS_ADDRESS, &machine_name, u);
            });

            machines.push(machine);
        }

        // Scheduler.
        let scheduler_store = config
            .scheduler_store
            .clone()
            .unwrap_or_else(|| Arc::new(MemoryStore::new()) as Arc<dyn ResourceStore>);
        let scheduler = scheduler_service(
            SCHEDULER_ADDRESS,
            SchedulerConfig {
                nis_address: NIS_ADDRESS.to_string(),
                broker: broker.clone(),
                policy: config.policy.clone(),
                security: security
                    .as_ref()
                    .map(|s| (s.clone(), SCHEDULER_SUBJECT.to_string())),
                store: scheduler_store.clone(),
                listener_address: SCHEDULER_LISTENER_ADDRESS.to_string(),
                job_timeout: config.job_timeout,
                replicate: config.replicate,
            },
            clock.clone(),
            net.clone(),
        );
        scheduler.register(&net);

        // Monitoring plane: the EventLog/Health RP service and the
        // pump that streams events onto the `monitor/events` topic.
        let monitor = monitor_service(
            MONITOR_ADDRESS,
            &metrics,
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
        );
        monitor.register(&net);
        let event_pump = EventPump::new(net.clone(), metrics.clone(), broker.clone(), "campus");

        CampusGrid {
            clock,
            net,
            machines,
            scheduler,
            broker,
            nis_address: NIS_ADDRESS.to_string(),
            security,
            metrics,
            services,
            monitor,
            event_pump,
            scheduler_store,
            policy: config.policy,
            job_timeout: config.job_timeout,
            replicate: config.replicate,
        }
    }

    /// Deploy a warm standby scheduler that shadows the primary's
    /// replication stream (requires [`GridConfig::with_replication`]).
    /// Promote it after a crash with
    /// `standby.promote(SCHEDULER_ADDRESS)`. `store` overrides the
    /// standby's state backend (e.g. a [`wsrf_core::DurableStore`]
    /// recovered from the primary's WAL directory); None shares the
    /// primary's store.
    pub fn spawn_standby(&self, store: Option<Arc<dyn ResourceStore>>) -> Standby {
        debug_assert!(self.replicate, "spawn_standby without with_replication");
        standby_scheduler(
            SchedulerConfig {
                nis_address: self.nis_address.clone(),
                broker: self.broker.clone(),
                policy: self.policy.clone(),
                security: self
                    .security
                    .as_ref()
                    .map(|s| (s.clone(), SCHEDULER_SUBJECT.to_string())),
                store: store.unwrap_or_else(|| self.scheduler_store.clone()),
                listener_address: STANDBY_LISTENER_ADDRESS.to_string(),
                job_timeout: self.job_timeout,
                replicate: self.replicate,
            },
            self.clock.clone(),
            self.net.clone(),
        )
    }

    /// A point-in-time snapshot of every metric in the deployment.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// EPR of the monitor resource carrying the `{UVACG}EventLog` and
    /// `{UVACG}Health` computed properties.
    pub fn monitor_epr(&self) -> EndpointReference {
        self.monitor.core().epr_for(crate::monitor::MONITOR_KEY)
    }

    /// The pump bridging this grid's event log onto the
    /// `monitor/events` topic (start it, or flush manually).
    pub fn event_pump(&self) -> &Arc<EventPump> {
        &self.event_pump
    }

    /// Flush pending structured events onto the `monitor/events`
    /// topic; returns how many were published.
    pub fn pump_events(&self) -> usize {
        self.event_pump.flush()
    }

    /// A new client workstation attached to this grid.
    pub fn client(&self, id: &str) -> Client {
        Client::new(
            id,
            self.net.clone(),
            self.clock.clone(),
            self.scheduler.epr(),
            self.security
                .as_ref()
                .map(|s| (s.clone(), SCHEDULER_SUBJECT.to_string())),
        )
    }

    /// Machine lookup by name.
    pub fn machine(&self, name: &str) -> Option<&Arc<Machine>> {
        self.machines.iter().find(|m| m.spec.name == name)
    }

    /// Number of deployed services (diagnostics).
    pub fn service_count(&self) -> usize {
        self.services.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::JobSetOutcome;
    use crate::jobset::{FileRef, JobSetSpec, JobSpec};
    use grid_node::JobProgram;
    use std::time::Duration;

    fn two_machine_grid() -> CampusGrid {
        CampusGrid::build(GridConfig::with_machines(2), Clock::manual())
    }

    #[test]
    fn grid_builds_and_registers_everything() {
        let grid = two_machine_grid();
        // broker + nis + 2×(fss+es) + scheduler is registered
        // separately; services vec holds broker, nis, fss/es pairs.
        assert_eq!(grid.service_count(), 6);
        let nodes = nis::snapshot(&grid.net, &grid.nis_address).unwrap();
        assert_eq!(nodes.len(), 2);
        assert!(grid.machine("machine01").is_some());
        assert!(grid.machine("nope").is_none());
    }

    #[test]
    fn single_job_set_runs_end_to_end() {
        let grid = two_machine_grid();
        let client = grid.client("client-1");
        client.put_file(
            "C:\\prog.exe",
            JobProgram::compute(2.0)
                .writing("result.dat", 100)
                .to_manifest(),
        );
        let spec = JobSetSpec::new("solo").job(
            JobSpec::new("job1", FileRef::parse("local://C:\\prog.exe").unwrap())
                .output("result.dat"),
        );
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        assert!(handle.outcome().is_none(), "still running");
        grid.clock.advance(Duration::from_secs(10));
        assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
        assert_eq!(handle.status().unwrap(), "Completed");
        let out = handle.fetch_output("job1", "result.dat").unwrap();
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn dependent_jobs_flow_outputs_between_machines() {
        let grid = two_machine_grid();
        let client = grid.client("client-1");
        client.put_file(
            "C:\\stage1.exe",
            JobProgram::compute(1.0)
                .writing("output2", 64)
                .to_manifest(),
        );
        client.put_file(
            "C:\\stage2.exe",
            JobProgram::compute(1.0)
                .reading("input.dat")
                .writing("final.dat", 32)
                .to_manifest(),
        );
        let spec = JobSetSpec::new("pipeline")
            .job(
                JobSpec::new("job1", FileRef::parse("local://C:\\stage1.exe").unwrap())
                    .output("output2"),
            )
            .job(
                JobSpec::new("job2", FileRef::parse("local://C:\\stage2.exe").unwrap())
                    .input(FileRef::parse("job1://output2").unwrap(), "input.dat"),
            );
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        grid.clock.advance(Duration::from_secs(60));
        assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
        // job2 really consumed job1's output (exit would be 66 if the
        // input were missing) and produced its own.
        assert_eq!(handle.fetch_output("job2", "final.dat").unwrap().len(), 32);
    }

    #[test]
    fn failing_job_fails_the_set_with_fault_chain() {
        let grid = two_machine_grid();
        let client = grid.client("client-1");
        client.put_file(
            "C:\\bad.exe",
            JobProgram::compute(1.0).exiting(3).to_manifest(),
        );
        client.put_file("C:\\never.exe", JobProgram::compute(1.0).to_manifest());
        let spec = JobSetSpec::new("doomed")
            .job(JobSpec::new("bad", FileRef::parse("local://C:\\bad.exe").unwrap()).output("o"))
            .job(
                JobSpec::new("never", FileRef::parse("local://C:\\never.exe").unwrap())
                    .input(FileRef::parse("bad://o").unwrap(), "i"),
            );
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        grid.clock.advance(Duration::from_secs(60));
        match handle.outcome().unwrap() {
            JobSetOutcome::Failed(fault) => {
                assert_eq!(fault.error_code, "uvacg:JobSetFailed");
                assert!(fault.root_cause().description.contains("code 3"), "{fault}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        // The dependent job never ran.
        let states = grid
            .scheduler
            .job_states(handle.jobset.resource_key().unwrap());
        let states = states.unwrap();
        let never = states.iter().find(|(n, _, _)| n == "never").unwrap();
        assert_eq!(never.1, "Waiting");
        assert_eq!(handle.status().unwrap(), "Failed");
    }

    #[test]
    fn secure_grid_runs_with_encrypted_credentials() {
        let grid = CampusGrid::build(GridConfig::with_machines(2).secure(), Clock::manual());
        let client = grid.client("client-1");
        client.put_file("C:\\p.exe", JobProgram::compute(1.0).to_manifest());
        let spec = JobSetSpec::new("secure").job(JobSpec::new(
            "j",
            FileRef::parse("local://C:\\p.exe").unwrap(),
        ));
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        grid.clock.advance(Duration::from_secs(30));
        assert_eq!(handle.outcome(), Some(JobSetOutcome::Completed));
    }

    #[test]
    fn secure_grid_rejects_wrong_password() {
        let grid = CampusGrid::build(GridConfig::with_machines(1).secure(), Clock::manual());
        let client = grid.client("client-1");
        client.put_file("C:\\p.exe", JobProgram::compute(1.0).to_manifest());
        let spec = JobSetSpec::new("s").job(JobSpec::new(
            "j",
            FileRef::parse("local://C:\\p.exe").unwrap(),
        ));
        let handle = client.submit(&spec, "griduser", "WRONG").unwrap();
        grid.clock.advance(Duration::from_secs(30));
        match handle.outcome().unwrap() {
            JobSetOutcome::Failed(fault) => {
                assert_eq!(
                    fault.root_cause().error_code,
                    "uvacg:BadCredentials",
                    "{fault}"
                );
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn scheduler_spreads_parallel_jobs_by_utilization() {
        // Identical machines so the only signal is utilization.
        let grid = CampusGrid::build(
            GridConfig {
                machines: vec![MachineSpec::new("alpha"), MachineSpec::new("beta")],
                ..GridConfig::default()
            },
            Clock::manual(),
        );
        let client = grid.client("client-1");
        client.put_file("C:\\p.exe", JobProgram::compute(50.0).to_manifest());
        let mut spec = JobSetSpec::new("parallel");
        for i in 0..2 {
            spec = spec.job(JobSpec::new(
                format!("j{i}"),
                FileRef::parse("local://C:\\p.exe").unwrap(),
            ));
        }
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        grid.clock.advance(Duration::from_secs(1));
        // Both machines should have picked up one job each: the first
        // dispatch raised machine utilization (monitor -> NIS), so the
        // policy chose the other machine next.
        let busy: Vec<f64> = grid.machines.iter().map(|m| m.utilization()).collect();
        assert!(busy.iter().all(|&u| u > 0.0), "load spread: {busy:?}");
        let _ = handle;
    }
}
