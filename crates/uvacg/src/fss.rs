//! The File System Service (§4.1).
//!
//! "The WS-Resources used by the File System service represent
//! directories ... the invocation of any method is done in the context
//! of this directory. These WS-Resources have a single Resource
//! Property that provides the actual path to the directory they
//! represent."
//!
//! Supported methods are exactly the paper's `Read`, `Write` and
//! `List`, plus the directory factory and the asynchronous
//! `UploadFiles` protocol: the upload request is a **one-way** message
//! carrying `{EPR, filename, jobname}` tuples; when staging finishes
//! the FSS sends a one-way completion notification back so the job
//! "doesn't start executing until its input files are available".

use std::sync::Arc;

use bytes::Bytes;
use grid_node::SimFs;
use simclock::Clock;
use wsrf_core::container::{action_uri, OpKind, Service, ServiceBuilder};
use wsrf_core::faults;
use wsrf_core::properties::PropertyDoc;
use wsrf_core::store::ResourceStore;
use wsrf_soap::ns::{UVACG, WSA};
use wsrf_soap::{BaseFault, EndpointReference, Envelope, MessageInfo, SoapFault, TraceContext};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{base64, Element, QName};

/// The directory key reference property (Clark form).
pub fn dir_key_property() -> String {
    format!("{{{UVACG}}}DirectoryKey")
}

fn q(local: &str) -> QName {
    QName::new(UVACG, local)
}

/// The `Path` resource property name.
pub fn path_property() -> QName {
    q("Path")
}

/// Root of the grid-controlled portion of each machine's filesystem.
pub const GRID_ROOT: &str = "grid";

/// Build the File System Service for one machine.
pub fn file_system_service(
    machine_name: &str,
    fs: Arc<SimFs>,
    store: Arc<dyn ResourceStore>,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Arc<Service> {
    let address = format!("inproc://{machine_name}/FileSystem");
    let fs_create = fs.clone();
    let fs_read = fs.clone();
    let fs_write = fs.clone();
    let fs_list = fs.clone();
    let fs_upload = fs;
    let own_machine = machine_name.to_string();

    ServiceBuilder::new("FileSystem", address, store)
        .key_property(dir_key_property())
        .static_operation("CreateDirectory", move |ctx| {
            let path = fs_create
                .create_unique_dir(GRID_ROOT, "dir")
                .map_err(|e| faults::storage(&e.to_string()))?;
            let mut doc = PropertyDoc::new();
            doc.set_text(q("Path"), &path);
            let epr = ctx.core.create_resource(doc)?;
            Ok(Element::new(UVACG, "CreateDirectoryResponse")
                .child(epr.to_element())
                .child(Element::new(UVACG, "Path").text(path)))
        })
        .read_operation("Read", move |ctx| {
            let filename = required_filename(ctx.body.dom())?;
            let dir = dir_path(ctx.resource_mut()?)?;
            let content = fs_read
                .read(&join(&dir, &filename))
                .map_err(|e| no_such_file(&filename, &e))?;
            Ok(read_response(&content))
        })
        .operation("Write", move |ctx| {
            let filename = required_filename(ctx.body.dom())?;
            let content = decode_content(ctx.body.dom())?;
            let dir = dir_path(ctx.resource_mut()?)?;
            fs_write
                .write(&join(&dir, &filename), content)
                .map_err(|e| faults::storage(&e.to_string()))?;
            Ok(Element::new(UVACG, "WriteResponse"))
        })
        .read_operation("List", move |ctx| {
            let dir = dir_path(ctx.resource_mut()?)?;
            let entries = fs_list
                .list(&dir)
                .map_err(|e| faults::storage(&e.to_string()))?;
            let mut resp = Element::new(UVACG, "ListResponse");
            for e in entries {
                match e {
                    grid_node::fs::DirEntry::File(name, size) => resp.push_child(
                        Element::new(UVACG, "File")
                            .attr("name", name)
                            .attr("size", size.to_string()),
                    ),
                    grid_node::fs::DirEntry::Dir(name) => {
                        resp.push_child(Element::new(UVACG, "Directory").attr("name", name))
                    }
                }
            }
            Ok(resp)
        })
        // Static rather than resource-scoped: staging re-enters the
        // dispatch pipeline (remote Read fetches, and the inline
        // UploadComplete notification can chain into the next job's
        // UploadFiles on this same service), so it must not hold a
        // per-resource lease across those nested dispatches. The
        // directory document is immutable after creation (only `Path`),
        // so a plain load is race-free.
        .raw_operation(
            action_uri("FileSystem", "UploadFiles"),
            OpKind::Static,
            move |ctx| {
                // Decode the request fully before touching the resource.
                let notify_to = ctx
                    .body
                    .find(UVACG, "NotifyTo")
                    .map(EndpointReference::from_element)
                    .transpose()
                    .map_err(|e| faults::bad_request(&format!("bad NotifyTo: {e}")))?;
                let notify_action = ctx
                    .body
                    .find(UVACG, "NotifyAction")
                    .map(|e| e.text_content())
                    .unwrap_or_else(|| action_uri("Execution", "UploadComplete"));
                let context_token = ctx
                    .body
                    .find(UVACG, "Context")
                    .map(|e| e.text_content())
                    .unwrap_or_default();
                struct Item {
                    source: EndpointReference,
                    filename: String,
                    as_name: String,
                }
                let mut items = Vec::new();
                for fe in ctx.body.find_all(UVACG, "File") {
                    let filename = fe
                        .attr_value("name")
                        .ok_or_else(|| faults::bad_request("File requires name attribute"))?
                        .to_string();
                    let as_name = fe
                        .attr_value("as")
                        .map(str::to_string)
                        .unwrap_or_else(|| filename.clone());
                    let source_el = fe
                        .find(UVACG, "SourceEpr")
                        .ok_or_else(|| faults::bad_request("File requires SourceEpr"))?;
                    let source = EndpointReference::from_element(source_el)
                        .map_err(|e| faults::bad_request(&format!("bad SourceEpr: {e}")))?;
                    items.push(Item {
                        source,
                        filename,
                        as_name,
                    });
                }

                let core = ctx.core.clone();
                let dir_doc = core
                    .store
                    .load(&core.name, ctx.key()?)
                    .map_err(faults::from_store)?;
                let dir = dir_path(&dir_doc)?;
                let own = own_machine.clone();
                let trace = ctx.trace;

                // Stage each file (step 4/5/6 of Figure 3).
                let staged_bytes = core.metrics.counter("fss.staged_bytes");
                let staged_files = core.metrics.counter("fss.staged_files");
                let stage_timer = core.metrics.timer("fss.stage");
                let mut failures: Vec<(String, String)> = Vec::new();
                for item in &items {
                    let stage_span = stage_timer.start(&core.clock);
                    let result: Result<(), String> = (|| {
                        let same_machine = wsrf_soap::Uri::parse(&item.source.address)
                            .map(|u| u.authority.eq_ignore_ascii_case(&own))
                            .unwrap_or(false);
                        let content: Bytes = if same_machine {
                            // "the FSS simply moves the file within the
                            // portion of the file system it controls
                            // (rather than making an HTTP request on
                            // itself)". We copy rather than move so that
                            // diamond-shaped job sets can consume one
                            // output twice (see DESIGN.md).
                            let src_key = item
                                .source
                                .resource_key()
                                .ok_or("local SourceEpr has no directory key")?;
                            let src_doc = core
                                .store
                                .load(&core.name, src_key)
                                .map_err(|e| e.to_string())?;
                            let src_dir = src_doc
                                .text(&q("Path"))
                                .ok_or("source directory has no Path")?;
                            fs_upload
                                .read(&join(&src_dir, &item.filename))
                                .map_err(|e| e.to_string())?
                        } else {
                            // Remote fetch: Read() on the remote FSS (HTTP
                            // scheme) or the client's WSE-TCP file server
                            // (soap.tcp scheme) — the network cost model
                            // prices the schemes differently.
                            remote_read(&core.net, &item.source, &item.filename, trace.as_ref())
                                .map_err(|e| e.to_string())?
                        };
                        staged_bytes.add(content.len() as u64);
                        staged_files.inc();
                        fs_upload
                            .write(&join(&dir, &item.as_name), content)
                            .map_err(|e| e.to_string())
                    })();
                    stage_span.finish();
                    if let Err(msg) = result {
                        failures.push((item.filename.clone(), msg));
                    }
                }

                // "When the upload is complete, the FSS will send another
                // one-way message (which we call a notification) back ...
                // indicating that the job may start."
                if let Some(to) = notify_to {
                    let mut body = Element::new(UVACG, "UploadComplete")
                        .attr("uploaded", (items.len() - failures.len()).to_string())
                        .child(Element::new(UVACG, "Context").text(&context_token));
                    for (file, reason) in &failures {
                        body.push_child(
                            Element::new(UVACG, "Failure")
                                .attr("file", file)
                                .text(reason),
                        );
                    }
                    let mut env = Envelope::new(body);
                    MessageInfo::request(to.clone(), notify_action.clone()).apply(&mut env);
                    if let Some(tc) = &trace {
                        tc.stamp(&mut env);
                    }
                    let _ = core.net.send_oneway(&to.address, env);
                }
                Ok(Element::new(UVACG, "UploadFilesAck"))
            },
        )
        .build(clock, net)
}

fn join(dir: &str, file: &str) -> String {
    format!("{}/{}", dir.trim_end_matches('/'), file)
}

fn dir_path(doc: &PropertyDoc) -> Result<String, BaseFault> {
    doc.text(&q("Path"))
        .ok_or_else(|| faults::storage("directory resource has no Path property"))
}

fn required_filename(body: &Element) -> Result<String, BaseFault> {
    body.find(UVACG, "FileName")
        .map(|e| e.text_content())
        .filter(|f| !f.is_empty())
        .ok_or_else(|| faults::bad_request("missing FileName"))
}

fn decode_content(body: &Element) -> Result<Bytes, BaseFault> {
    let el = body
        .find(UVACG, "Content")
        .ok_or_else(|| faults::bad_request("missing Content"))?;
    base64::decode(&el.text_content())
        .map(Bytes::from)
        .ok_or_else(|| faults::bad_request("Content is not valid base64"))
}

/// Encode a `ReadResponse` body (shared with the client file server,
/// which answers the same `Read` action for `local://` files).
pub fn read_response(content: &Bytes) -> Element {
    Element::new(UVACG, "ReadResponse").child(
        Element::new(UVACG, "Content")
            .attr("encoding", "base64")
            .text(base64::encode(content)),
    )
}

fn no_such_file(name: &str, e: &grid_node::FsError) -> BaseFault {
    BaseFault::new("uvacg:NoSuchFile", format!("cannot read '{name}': {e}"))
}

// ---------------------------------------------------------------------
// Client-side helpers (used by the ES, the Scheduler and tests)
// ---------------------------------------------------------------------

/// Call `CreateDirectory` on an FSS; returns `(directory EPR, path)`.
pub fn create_directory(
    net: &InProcNetwork,
    fss_address: &str,
) -> Result<(EndpointReference, String), SoapFault> {
    create_directory_traced(net, fss_address, None)
}

/// [`create_directory`] carrying a trace context so the FSS's dispatch
/// span joins the caller's span tree (Figure 3 step 4).
pub fn create_directory_traced(
    net: &InProcNetwork,
    fss_address: &str,
    trace: Option<&TraceContext>,
) -> Result<(EndpointReference, String), SoapFault> {
    let mut env = Envelope::new(Element::new(UVACG, "CreateDirectory"));
    MessageInfo::request(
        EndpointReference::service(fss_address),
        action_uri("FileSystem", "CreateDirectory"),
    )
    .apply(&mut env);
    if let Some(tc) = trace {
        tc.stamp(&mut env);
    }
    let resp = net
        .call(fss_address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    let epr = resp
        .body
        .find(WSA, "EndpointReference")
        .ok_or_else(|| SoapFault::server("CreateDirectoryResponse missing EPR"))
        .and_then(|e| {
            EndpointReference::from_element(e).map_err(|e| SoapFault::server(e.to_string()))
        })?;
    let path = resp
        .body
        .find(UVACG, "Path")
        .map(|p| p.text_content())
        .unwrap_or_default();
    Ok((epr, path))
}

/// `Read` a file in the context of a directory EPR (or from a client
/// file server EPR, which answers the same action).
pub fn read(
    net: &InProcNetwork,
    source: &EndpointReference,
    filename: &str,
) -> Result<Bytes, SoapFault> {
    remote_read(net, source, filename, None)
}

/// Internal fetch shared with the upload engine, which stamps the
/// staging job's trace context so remote reads (client staging, step 5)
/// appear as transport hops in the span tree.
fn remote_read(
    net: &InProcNetwork,
    source: &EndpointReference,
    filename: &str,
    trace: Option<&TraceContext>,
) -> Result<Bytes, SoapFault> {
    let body = Element::new(UVACG, "Read").child(Element::new(UVACG, "FileName").text(filename));
    let mut env = Envelope::new(body);
    MessageInfo::request(source.clone(), action_uri("FileSystem", "Read")).apply(&mut env);
    if let Some(tc) = trace {
        tc.stamp(&mut env);
    }
    let resp = net
        .call(&source.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    let content = resp
        .body
        .find(UVACG, "Content")
        .ok_or_else(|| SoapFault::server("ReadResponse missing Content"))?;
    base64::decode(&content.text_content())
        .map(Bytes::from)
        .ok_or_else(|| SoapFault::server("bad base64 in ReadResponse"))
}

/// `Write` a file into a directory EPR.
pub fn write(
    net: &InProcNetwork,
    dir: &EndpointReference,
    filename: &str,
    content: &[u8],
) -> Result<(), SoapFault> {
    let body = Element::new(UVACG, "Write")
        .child(Element::new(UVACG, "FileName").text(filename))
        .child(
            Element::new(UVACG, "Content")
                .attr("encoding", "base64")
                .text(base64::encode(content)),
        );
    let mut env = Envelope::new(body);
    MessageInfo::request(dir.clone(), action_uri("FileSystem", "Write")).apply(&mut env);
    let resp = net
        .call(&dir.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    match resp.fault() {
        Some(f) => Err(f),
        None => Ok(()),
    }
}

/// `List` a directory EPR: `(name, Some(size))` for files, `(name,
/// None)` for subdirectories.
pub fn list(
    net: &InProcNetwork,
    dir: &EndpointReference,
) -> Result<Vec<(String, Option<u64>)>, SoapFault> {
    let mut env = Envelope::new(Element::new(UVACG, "List"));
    MessageInfo::request(dir.clone(), action_uri("FileSystem", "List")).apply(&mut env);
    let resp = net
        .call(&dir.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    Ok(resp
        .body
        .elements()
        .filter_map(|e| {
            let name = e.attr_value("name")?.to_string();
            match e.name.local.as_str() {
                "File" => Some((name, e.attr_value("size").and_then(|s| s.parse().ok()))),
                "Directory" => Some((name, None)),
                _ => None,
            }
        })
        .collect())
}

/// Build and send a one-way `UploadFiles` request.
#[allow(clippy::too_many_arguments)]
pub fn upload_files(
    net: &InProcNetwork,
    dir: &EndpointReference,
    files: &[(EndpointReference, String, String)], // (source, filename, as)
    notify_to: Option<&EndpointReference>,
    notify_action: &str,
    context: &str,
    trace: Option<&TraceContext>,
) -> Result<(), wsrf_transport::TransportError> {
    let mut body = Element::new(UVACG, "UploadFiles");
    if let Some(to) = notify_to {
        body.push_child(to.to_element_named(UVACG, "NotifyTo"));
        body.push_child(Element::new(UVACG, "NotifyAction").text(notify_action));
        body.push_child(Element::new(UVACG, "Context").text(context));
    }
    for (source, filename, as_name) in files {
        body.push_child(
            Element::new(UVACG, "File")
                .attr("name", filename)
                .attr("as", as_name)
                .child(source.to_element_named(UVACG, "SourceEpr")),
        );
    }
    let mut env = Envelope::new(body);
    MessageInfo::request(dir.clone(), action_uri("FileSystem", "UploadFiles")).apply(&mut env);
    if let Some(tc) = trace {
        tc.stamp(&mut env);
    }
    net.send_oneway(&dir.address, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrf_core::store::MemoryStore;
    use wsrf_transport::FnEndpoint;

    struct Fixture {
        net: Arc<InProcNetwork>,
        fs: Arc<SimFs>,
        #[allow(dead_code)]
        svc: Arc<Service>,
    }

    fn fixture() -> Fixture {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let fs = Arc::new(SimFs::new());
        let svc = file_system_service(
            "machine01",
            fs.clone(),
            Arc::new(MemoryStore::new()),
            clock,
            net.clone(),
        );
        svc.register(&net);
        Fixture { net, fs, svc }
    }

    const ADDR: &str = "inproc://machine01/FileSystem";

    #[test]
    fn create_directory_returns_epr_with_path_property() {
        let f = fixture();
        let (epr, path) = create_directory(&f.net, ADDR).unwrap();
        assert!(path.starts_with("grid/dir-"), "{path}");
        assert!(f.fs.exists(&path));
        assert_eq!(epr.address, ADDR);
        // The Path resource property is readable via the standard port
        // type (the ES uses it as the job working directory).
        let mut env =
            Envelope::new(Element::new(wsrf_soap::ns::WSRP, "GetResourceProperty").text("Path"));
        MessageInfo::request(
            epr,
            wsrf_core::porttypes::wsrp_action("GetResourceProperty"),
        )
        .apply(&mut env);
        let resp = f.net.call(ADDR, env).unwrap();
        assert_eq!(resp.body.text_content(), path);
    }

    #[test]
    fn write_read_list_roundtrip() {
        let f = fixture();
        let (dir, path) = create_directory(&f.net, ADDR).unwrap();
        write(&f.net, &dir, "input.dat", b"hello grid").unwrap();
        assert_eq!(&read(&f.net, &dir, "input.dat").unwrap()[..], b"hello grid");
        assert_eq!(
            f.fs.read(&format!("{path}/input.dat")).unwrap(),
            &b"hello grid"[..]
        );
        let entries = list(&f.net, &dir).unwrap();
        assert_eq!(entries, vec![("input.dat".to_string(), Some(10))]);
    }

    #[test]
    fn read_missing_file_faults() {
        let f = fixture();
        let (dir, _) = create_directory(&f.net, ADDR).unwrap();
        let err = read(&f.net, &dir, "ghost.dat").unwrap_err();
        assert_eq!(err.error_code(), Some("uvacg:NoSuchFile"));
    }

    #[test]
    fn read_on_dead_directory_resource_faults() {
        let f = fixture();
        let ghost = EndpointReference::resource(ADDR, dir_key_property(), "filesystem-999");
        let err = read(&f.net, &ghost, "x").unwrap_err();
        assert_eq!(err.error_code(), Some("wsrf:NoSuchResource"));
    }

    #[test]
    fn upload_from_same_machine_copies_locally() {
        let f = fixture();
        let (src, _src_path) = create_directory(&f.net, ADDR).unwrap();
        write(&f.net, &src, "out.dat", b"payload").unwrap();
        let (dst, dst_path) = create_directory(&f.net, ADDR).unwrap();
        let before_calls = f.net.metrics.snapshot().0;
        upload_files(
            &f.net,
            &dst,
            &[(src, "out.dat".into(), "in.dat".into())],
            None,
            "",
            "",
            None,
        )
        .unwrap();
        assert_eq!(
            &f.fs.read(&format!("{dst_path}/in.dat")).unwrap()[..],
            b"payload"
        );
        // No extra Read() call went over the network for the local copy.
        assert_eq!(f.net.metrics.snapshot().0, before_calls);
    }

    #[test]
    fn upload_from_remote_machine_uses_read_calls() {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let fs1 = Arc::new(SimFs::new());
        let fs2 = Arc::new(SimFs::new());
        let svc1 = file_system_service(
            "m1",
            fs1,
            Arc::new(MemoryStore::new()),
            clock.clone(),
            net.clone(),
        );
        let svc2 = file_system_service(
            "m2",
            fs2.clone(),
            Arc::new(MemoryStore::new()),
            clock,
            net.clone(),
        );
        svc1.register(&net);
        svc2.register(&net);

        let (src, _) = create_directory(&net, "inproc://m1/FileSystem").unwrap();
        write(&net, &src, "result.bin", &[9u8; 64]).unwrap();
        let (dst, dst_path) = create_directory(&net, "inproc://m2/FileSystem").unwrap();
        upload_files(
            &net,
            &dst,
            &[(src, "result.bin".into(), "input.bin".into())],
            None,
            "",
            "",
            None,
        )
        .unwrap();
        assert_eq!(
            fs2.read(&format!("{dst_path}/input.bin")).unwrap(),
            Bytes::from(vec![9u8; 64])
        );
    }

    #[test]
    fn upload_sends_completion_notification_with_context() {
        let f = fixture();
        let (src, _) = create_directory(&f.net, ADDR).unwrap();
        write(&f.net, &src, "a.dat", b"A").unwrap();
        let (dst, _) = create_directory(&f.net, ADDR).unwrap();

        let seen: Arc<parking_lot::Mutex<Vec<Envelope>>> = Default::default();
        let seen2 = seen.clone();
        f.net.register(
            "inproc://es/Sink",
            Arc::new(FnEndpoint::new("sink", move |env| {
                seen2.lock().push(env);
                None
            })),
        );
        let notify_to = EndpointReference::resource("inproc://es/Sink", "{urn:x}JobKey", "job-7");
        upload_files(
            &f.net,
            &dst,
            &[
                (src.clone(), "a.dat".into(), "a.dat".into()),
                (src, "missing.dat".into(), "b.dat".into()),
            ],
            Some(&notify_to),
            "urn:test/UploadComplete",
            "job-7",
            None,
        )
        .unwrap();
        let got = seen.lock().clone();
        assert_eq!(got.len(), 1);
        let body = &got[0].body;
        assert_eq!(body.attr_value("uploaded"), Some("1"));
        assert_eq!(body.find(UVACG, "Context").unwrap().text_content(), "job-7");
        let failures: Vec<&Element> = body.find_all(UVACG, "Failure").collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].attr_value("file"), Some("missing.dat"));
        // The job key rode along in the headers.
        let info = MessageInfo::extract(&got[0]).unwrap();
        assert_eq!(info.to.resource_key(), Some("job-7"));
    }

    #[test]
    fn upload_from_client_file_server() {
        let f = fixture();
        // A client file server answering the FileSystem/Read action.
        f.net.register(
            "soap.tcp://client-1/files",
            Arc::new(FnEndpoint::new("client-fs", |env| {
                let filename = env.body.find(UVACG, "FileName").unwrap().text_content();
                let mut resp = Envelope::new(if filename == "C:\\data\\file1" {
                    read_response(&Bytes::from_static(b"client bytes"))
                } else {
                    return Some(SoapFault::client("no such local file").to_envelope());
                });
                resp.headers.push(Element::new(WSA, "Action").text("resp"));
                Some(resp)
            })),
        );
        let (dst, dst_path) = create_directory(&f.net, ADDR).unwrap();
        let client_epr = EndpointReference::service("soap.tcp://client-1/files");
        upload_files(
            &f.net,
            &dst,
            &[(client_epr, "C:\\data\\file1".into(), "in.dat".into())],
            None,
            "",
            "",
            None,
        )
        .unwrap();
        assert_eq!(
            &f.fs.read(&format!("{dst_path}/in.dat")).unwrap()[..],
            b"client bytes"
        );
    }
}
