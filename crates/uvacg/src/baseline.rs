//! The pre-WSRF baseline: a GRAM/GlobusRun-style job manager.
//!
//! The paper positions WSRF against "the existing tools such as
//! GRAM/GlobusRun, MDS and Condor/Condor-G" and claims WSRF and
//! WS-Notification "facilitate far richer client-side and server-side
//! interactions than previously accomplished in the state of the art".
//! To make that comparison quantitative (experiments E2 and E8), this
//! module implements that state of the art faithfully-in-spirit:
//!
//! * one **stateless** job-manager web service with a *custom*
//!   interface (no resource properties, no EPRs, no standard port
//!   types — job state lives in an internal table keyed by an opaque
//!   job id),
//! * **no notifications** — the client discovers completion by
//!   polling `Poll` at an interval, exactly the traffic pattern
//!   WS-Notification eliminates,
//! * synchronous (blocking) input staging on submit, in contrast to
//!   the FSS's one-way overlapped upload protocol.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::Clock;
use wsrf_core::container::{action_uri, Service, ServiceBuilder};
use wsrf_core::faults;
use wsrf_core::store::MemoryStore;
use wsrf_soap::ns::UVACG;
use wsrf_soap::{BaseFault, EndpointReference, Envelope, MessageInfo, SoapFault};
use wsrf_transport::InProcNetwork;
use wsrf_xml::Element;

use grid_node::{Machine, ProcSpawn};

use crate::fss::read_response;

/// Internal job record (deliberately *not* a WS-Resource).
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Running on the named machine.
    Running(String),
    /// Exited with the code.
    Done(i32),
    /// Could not start.
    Failed(String),
}

struct ManagerState {
    jobs: Arc<Mutex<HashMap<u64, JobState>>>,
    next_id: Mutex<u64>,
    machines: Vec<(String, Arc<Machine>, Arc<ProcSpawn>)>,
}

/// Build the baseline job manager over a set of machines.
///
/// The service understands two custom actions:
/// * `Submit` — stage the executable from the given source EPR
///   (synchronously), pick the least-loaded machine, spawn, return a
///   numeric job id.
/// * `Poll` — return `Running` / `Done code` / `Failed reason` for a
///   job id.
pub fn job_manager(
    address: &str,
    machines: Vec<(String, Arc<Machine>, Arc<ProcSpawn>)>,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Arc<Service> {
    let state = Arc::new(ManagerState {
        jobs: Arc::new(Mutex::new(HashMap::new())),
        next_id: Mutex::new(1),
        machines,
    });
    let st_submit = state.clone();
    let st_poll = state.clone();

    ServiceBuilder::new("JobManager", address, Arc::new(MemoryStore::new()))
        // The whole point of the baseline: no standard port types.
        .without_standard_port_types()
        .without_lifetime()
        .static_operation("Submit", move |ctx| {
            let exe_src = ctx
                .body
                .find(UVACG, "ExecutableSource")
                .ok_or_else(|| faults::bad_request("Submit requires ExecutableSource"))?;
            let source = EndpointReference::from_element(
                exe_src
                    .find(wsrf_soap::ns::WSA, "EndpointReference")
                    .unwrap_or(exe_src),
            )
            .map_err(|e| faults::bad_request(&format!("bad source: {e}")))?;
            let filename = exe_src
                .attr_value("name")
                .ok_or_else(|| faults::bad_request("ExecutableSource requires name"))?
                .to_string();
            let creds = ctx
                .body
                .find(UVACG, "Credentials")
                .ok_or_else(|| faults::bad_request("Submit requires Credentials"))?;
            let user = creds.attr_value("user").unwrap_or_default().to_string();
            let password = creds.attr_value("password").unwrap_or_default().to_string();

            // Synchronous staging (blocking the submit call — the
            // anti-pattern the FSS one-way protocol avoids).
            let bytes = crate::fss::read(&ctx.core.net, &source, &filename)
                .map_err(|e| BaseFault::new("gram:StageFailed", e.to_string()))?;

            // Least-loaded machine.
            let (mname, machine, spawner) = st_submit
                .machines
                .iter()
                .min_by(|a, b| a.1.utilization().partial_cmp(&b.1.utilization()).unwrap())
                .ok_or_else(|| BaseFault::new("gram:NoMachines", "no machines"))?;

            let workdir = machine
                .fs
                .create_unique_dir("gram", "job")
                .map_err(|e| faults::storage(&e.to_string()))?;
            let exe_path = format!("{workdir}/job.exe");
            machine
                .fs
                .write(&exe_path, bytes)
                .map_err(|e| faults::storage(&e.to_string()))?;

            let id = {
                let mut next = st_submit.next_id.lock();
                let id = *next;
                *next += 1;
                id
            };
            st_submit
                .jobs
                .lock()
                .insert(id, JobState::Running(mname.clone()));
            let jobs = st_submit.jobs.clone();
            match spawner.spawn(&exe_path, &workdir, &user, &password, move |code, _| {
                jobs.lock().insert(id, JobState::Done(code));
            }) {
                Ok(_) => Ok(Element::new(UVACG, "SubmitResponse").attr("jobId", id.to_string())),
                Err(e) => {
                    st_submit
                        .jobs
                        .lock()
                        .insert(id, JobState::Failed(e.to_string()));
                    Err(BaseFault::new("gram:SpawnFailed", e.to_string()))
                }
            }
        })
        .static_operation("Poll", move |ctx| {
            let id: u64 = ctx
                .body
                .attr_value("jobId")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| faults::bad_request("Poll requires jobId"))?;
            let jobs = st_poll.jobs.lock();
            let state = jobs
                .get(&id)
                .ok_or_else(|| BaseFault::new("gram:NoSuchJob", format!("no job {id}")))?;
            let resp = match state {
                JobState::Running(m) => Element::new(UVACG, "PollResponse")
                    .attr("state", "Running")
                    .attr("machine", m),
                JobState::Done(code) => Element::new(UVACG, "PollResponse")
                    .attr("state", "Done")
                    .attr("exitCode", code.to_string()),
                JobState::Failed(reason) => Element::new(UVACG, "PollResponse")
                    .attr("state", "Failed")
                    .attr("reason", reason),
            };
            Ok(resp)
        })
        // A bespoke "get everything" call — the custom interface the
        // paper contrasts with the standard resource-property
        // operations (experiment E2b).
        .static_operation("GetJobInfo", move |ctx| {
            let _ = ctx;
            Ok(Element::new(UVACG, "GetJobInfoResponse"))
        })
        .build(clock, net)
}

/// Submit a job by pointing at an executable on a file server.
pub fn submit(
    net: &InProcNetwork,
    manager: &str,
    source: &EndpointReference,
    filename: &str,
    user: &str,
    password: &str,
) -> Result<u64, SoapFault> {
    let body = Element::new(UVACG, "Submit")
        .child(
            Element::new(UVACG, "ExecutableSource")
                .attr("name", filename)
                .child(source.to_element()),
        )
        .child(
            Element::new(UVACG, "Credentials")
                .attr("user", user)
                .attr("password", password),
        );
    let mut env = Envelope::new(body);
    MessageInfo::request(
        EndpointReference::service(manager),
        action_uri("JobManager", "Submit"),
    )
    .apply(&mut env);
    let resp = net
        .call(manager, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    resp.body
        .attr_value("jobId")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| SoapFault::server("SubmitResponse missing jobId"))
}

/// One poll round trip; `Ok(Some(code))` once the job is done.
pub fn poll(net: &InProcNetwork, manager: &str, job_id: u64) -> Result<Option<i32>, SoapFault> {
    let body = Element::new(UVACG, "Poll").attr("jobId", job_id.to_string());
    let mut env = Envelope::new(body);
    MessageInfo::request(
        EndpointReference::service(manager),
        action_uri("JobManager", "Poll"),
    )
    .apply(&mut env);
    let resp = net
        .call(manager, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    match resp.body.attr_value("state") {
        Some("Done") => Ok(resp
            .body
            .attr_value("exitCode")
            .and_then(|c| c.parse().ok())),
        Some("Failed") => Ok(Some(-1)),
        _ => Ok(None),
    }
}

/// A tiny in-memory file server for baseline tests/benches (serves one
/// named file over the `FileSystem/Read` action).
pub fn single_file_server(
    net: &InProcNetwork,
    address: &str,
    filename: &str,
    content: bytes::Bytes,
) -> EndpointReference {
    let filename = filename.to_string();
    net.register(
        address,
        Arc::new(wsrf_transport::FnEndpoint::new("file-server", move |env| {
            let asked = env
                .body
                .find(UVACG, "FileName")
                .map(|e| e.text_content())
                .unwrap_or_default();
            if asked == filename {
                Some(Envelope::new(read_response(&content)))
            } else {
                Some(SoapFault::client(format!("no file '{asked}'")).to_envelope())
            }
        })),
    );
    EndpointReference::service(address)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_node::{JobProgram, MachineSpec};
    use std::time::Duration;

    fn setup() -> (Clock, Arc<InProcNetwork>, Arc<Service>) {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let machines: Vec<(String, Arc<Machine>, Arc<ProcSpawn>)> = (1..=2)
            .map(|i| {
                let m = Machine::new(MachineSpec::new(format!("m{i}")), clock.clone());
                let s = Arc::new(ProcSpawn::new(m.clone()));
                (format!("m{i}"), m, s)
            })
            .collect();
        let svc = job_manager(
            "inproc://hub/JobManager",
            machines,
            clock.clone(),
            net.clone(),
        );
        svc.register(&net);
        (clock, net, svc)
    }

    #[test]
    fn submit_and_poll_lifecycle() {
        let (clock, net, _svc) = setup();
        let src = single_file_server(
            &net,
            "soap.tcp://client/files",
            "prog.exe",
            JobProgram::compute(5.0).exiting(7).to_manifest(),
        );
        let id = submit(
            &net,
            "inproc://hub/JobManager",
            &src,
            "prog.exe",
            "griduser",
            "gridpass",
        )
        .unwrap();
        assert_eq!(poll(&net, "inproc://hub/JobManager", id).unwrap(), None);
        clock.advance(Duration::from_secs(3));
        assert_eq!(poll(&net, "inproc://hub/JobManager", id).unwrap(), None);
        clock.advance(Duration::from_secs(3));
        assert_eq!(poll(&net, "inproc://hub/JobManager", id).unwrap(), Some(7));
    }

    #[test]
    fn poll_unknown_job_faults() {
        let (_clock, net, _svc) = setup();
        let err = poll(&net, "inproc://hub/JobManager", 999).unwrap_err();
        assert_eq!(err.error_code(), Some("gram:NoSuchJob"));
    }

    #[test]
    fn bad_credentials_fail_submit() {
        let (_clock, net, _svc) = setup();
        let src = single_file_server(
            &net,
            "soap.tcp://client/files",
            "prog.exe",
            JobProgram::compute(1.0).to_manifest(),
        );
        let err = submit(
            &net,
            "inproc://hub/JobManager",
            &src,
            "prog.exe",
            "nobody",
            "x",
        )
        .unwrap_err();
        assert_eq!(err.error_code(), Some("gram:SpawnFailed"));
    }

    #[test]
    fn staging_failure_faults_submit() {
        let (_clock, net, _svc) = setup();
        let src = single_file_server(
            &net,
            "soap.tcp://client/files",
            "prog.exe",
            JobProgram::compute(1.0).to_manifest(),
        );
        let err = submit(
            &net,
            "inproc://hub/JobManager",
            &src,
            "wrong-name.exe",
            "griduser",
            "gridpass",
        )
        .unwrap_err();
        assert_eq!(err.error_code(), Some("gram:StageFailed"));
    }

    #[test]
    fn no_resource_properties_on_the_baseline() {
        let (_clock, net, _svc) = setup();
        // A GetResourceProperty call must be rejected — the baseline
        // has a custom interface only.
        let mut env =
            Envelope::new(Element::new(wsrf_soap::ns::WSRP, "GetResourceProperty").text("Status"));
        MessageInfo::request(
            EndpointReference::service("inproc://hub/JobManager"),
            wsrf_core::porttypes::wsrp_action("GetResourceProperty"),
        )
        .apply(&mut env);
        let resp = net.call("inproc://hub/JobManager", env).unwrap();
        assert_eq!(
            resp.fault().unwrap().error_code(),
            Some("wsrf:NoSuchOperation")
        );
    }

    #[test]
    fn jobs_balance_across_machines() {
        let (_clock, net, _svc) = setup();
        let src = single_file_server(
            &net,
            "soap.tcp://client/files",
            "prog.exe",
            JobProgram::compute(100.0).to_manifest(),
        );
        let mut machines_seen = std::collections::HashSet::new();
        for _ in 0..2 {
            let id = submit(
                &net,
                "inproc://hub/JobManager",
                &src,
                "prog.exe",
                "griduser",
                "gridpass",
            )
            .unwrap();
            // Read the machine from a poll.
            let body = Element::new(UVACG, "Poll").attr("jobId", id.to_string());
            let mut env = Envelope::new(body);
            MessageInfo::request(
                EndpointReference::service("inproc://hub/JobManager"),
                action_uri("JobManager", "Poll"),
            )
            .apply(&mut env);
            let resp = net.call("inproc://hub/JobManager", env).unwrap();
            machines_seen.insert(resp.body.attr_value("machine").unwrap().to_string());
        }
        assert_eq!(machines_seen.len(), 2, "least-loaded spread");
    }
}
