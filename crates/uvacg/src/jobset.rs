//! Job-set descriptions: the client-side vocabulary of §4.6.
//!
//! "The scientist specifies dependencies between jobs through the
//! input file descriptions. For example, the input file
//! `local://C:\file1` is a file that should come from the local file
//! system, while the file `job1://output2` means that the job
//! designated as 'job1' will produce an output file called 'output2'
//! and that file should be retrieved as input to the current job."

use std::collections::{HashMap, HashSet};

use wsrf_soap::ns::UVACG;
use wsrf_xml::Element;

/// Where an input file (or executable) comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileRef {
    /// `local://<path>` — the client machine's file system, served by
    /// the client's WSE-TCP file server.
    Local(String),
    /// `<job>://<file>` — the named sibling job's output file.
    JobOutput {
        /// Producing job's name.
        job: String,
        /// Output file name.
        file: String,
    },
}

impl FileRef {
    /// Parse the URI form. Any scheme other than `local` is read as a
    /// job name.
    pub fn parse(s: &str) -> Option<FileRef> {
        let (scheme, rest) = s.split_once("://")?;
        if scheme.is_empty() || rest.is_empty() {
            return None;
        }
        if scheme.eq_ignore_ascii_case("local") {
            Some(FileRef::Local(rest.to_string()))
        } else {
            Some(FileRef::JobOutput {
                job: scheme.to_string(),
                file: rest.to_string(),
            })
        }
    }

    /// The URI form.
    pub fn to_uri(&self) -> String {
        match self {
            FileRef::Local(p) => format!("local://{p}"),
            FileRef::JobOutput { job, file } => format!("{job}://{file}"),
        }
    }
}

/// One job of a job set.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique (within the set) job name, e.g. `job1`.
    pub name: String,
    /// The executable to stage and run.
    pub executable: FileRef,
    /// Inputs: `(source, name the job expects in its working dir)`.
    pub inputs: Vec<(FileRef, String)>,
    /// Output file names this job declares it will produce (consumed
    /// by dependents via `jobN://name`).
    pub outputs: Vec<String>,
    /// Command-line arguments (carried for fidelity; the simulated
    /// programs ignore them).
    pub args: Vec<String>,
}

impl JobSpec {
    /// A job running `executable`.
    pub fn new(name: impl Into<String>, executable: FileRef) -> Self {
        JobSpec {
            name: name.into(),
            executable,
            inputs: Vec::new(),
            outputs: Vec::new(),
            args: Vec::new(),
        }
    }

    /// Builder: add an input.
    pub fn input(mut self, source: FileRef, as_name: impl Into<String>) -> Self {
        self.inputs.push((source, as_name.into()));
        self
    }

    /// Builder: declare an output.
    pub fn output(mut self, name: impl Into<String>) -> Self {
        self.outputs.push(name.into());
        self
    }

    /// Builder: add an argument.
    pub fn arg(mut self, a: impl Into<String>) -> Self {
        self.args.push(a.into());
        self
    }

    /// Names of jobs this job depends on.
    pub fn dependencies(&self) -> HashSet<&str> {
        let mut deps = HashSet::new();
        if let FileRef::JobOutput { job, .. } = &self.executable {
            deps.insert(job.as_str());
        }
        for (src, _) in &self.inputs {
            if let FileRef::JobOutput { job, .. } = src {
                deps.insert(job.as_str());
            }
        }
        deps
    }
}

/// A complete job set.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSetSpec {
    /// Human-readable name.
    pub name: String,
    /// The jobs, in declaration order.
    pub jobs: Vec<JobSpec>,
}

/// Validation failures for job-set descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Two jobs share a name.
    DuplicateJobName(String),
    /// An input references a job that is not in the set.
    UnknownJob {
        referencing: String,
        missing: String,
    },
    /// An input references an output the producing job does not
    /// declare.
    UndeclaredOutput { job: String, file: String },
    /// The dependency graph has a cycle through this job.
    DependencyCycle(String),
    /// The set has no jobs.
    Empty,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::DuplicateJobName(n) => write!(f, "duplicate job name '{n}'"),
            ValidationError::UnknownJob {
                referencing,
                missing,
            } => {
                write!(f, "job '{referencing}' references unknown job '{missing}'")
            }
            ValidationError::UndeclaredOutput { job, file } => {
                write!(f, "job '{job}' does not declare output '{file}'")
            }
            ValidationError::DependencyCycle(n) => {
                write!(f, "dependency cycle involving job '{n}'")
            }
            ValidationError::Empty => f.write_str("job set contains no jobs"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl JobSetSpec {
    /// A new empty job set.
    pub fn new(name: impl Into<String>) -> Self {
        JobSetSpec {
            name: name.into(),
            jobs: Vec::new(),
        }
    }

    /// Builder: add a job.
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Look up a job by name.
    pub fn get(&self, name: &str) -> Option<&JobSpec> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// Validate names, references, declared outputs and acyclicity;
    /// returns a topological order of job names.
    pub fn validate(&self) -> Result<Vec<String>, ValidationError> {
        if self.jobs.is_empty() {
            return Err(ValidationError::Empty);
        }
        let mut by_name: HashMap<&str, &JobSpec> = HashMap::new();
        for j in &self.jobs {
            if by_name.insert(&j.name, j).is_some() {
                return Err(ValidationError::DuplicateJobName(j.name.clone()));
            }
        }
        // Reference checks.
        for j in &self.jobs {
            let refs = j
                .inputs
                .iter()
                .map(|(s, _)| s)
                .chain(std::iter::once(&j.executable));
            for r in refs {
                if let FileRef::JobOutput { job, file } = r {
                    let Some(producer) = by_name.get(job.as_str()) else {
                        return Err(ValidationError::UnknownJob {
                            referencing: j.name.clone(),
                            missing: job.clone(),
                        });
                    };
                    if !producer.outputs.iter().any(|o| o == file) {
                        return Err(ValidationError::UndeclaredOutput {
                            job: job.clone(),
                            file: file.clone(),
                        });
                    }
                }
            }
        }
        // Kahn's algorithm for the topological order.
        let mut indegree: HashMap<&str, usize> = HashMap::new();
        let mut dependents: HashMap<&str, Vec<&str>> = HashMap::new();
        for j in &self.jobs {
            indegree.entry(&j.name).or_insert(0);
            for d in j.dependencies() {
                *indegree.entry(&j.name).or_insert(0) += 1;
                dependents.entry(d).or_default().push(&j.name);
            }
        }
        // Seed the queue in declaration order for determinism.
        let mut queue: Vec<&str> = self
            .jobs
            .iter()
            .filter(|j| indegree[j.name.as_str()] == 0)
            .map(|j| j.name.as_str())
            .collect();
        let mut order = Vec::with_capacity(self.jobs.len());
        while let Some(n) = queue.first().copied() {
            queue.remove(0);
            order.push(n.to_string());
            for d in dependents.get(n).cloned().unwrap_or_default() {
                let e = indegree.get_mut(d).unwrap();
                *e -= 1;
                if *e == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() != self.jobs.len() {
            let stuck = self
                .jobs
                .iter()
                .find(|j| !order.contains(&j.name))
                .map(|j| j.name.clone())
                .unwrap_or_default();
            return Err(ValidationError::DependencyCycle(stuck));
        }
        Ok(order)
    }

    /// Serialize as the `<JobSet>` description element sent to the
    /// Scheduler.
    pub fn to_element(&self) -> Element {
        let mut set = Element::new(UVACG, "JobSet").attr("name", &self.name);
        for j in &self.jobs {
            let mut je = Element::new(UVACG, "Job").attr("name", &j.name);
            je.push_child(Element::new(UVACG, "Executable").attr("source", j.executable.to_uri()));
            for (src, as_name) in &j.inputs {
                je.push_child(
                    Element::new(UVACG, "Input")
                        .attr("source", src.to_uri())
                        .attr("as", as_name),
                );
            }
            for o in &j.outputs {
                je.push_child(Element::new(UVACG, "Output").attr("name", o));
            }
            for a in &j.args {
                je.push_child(Element::new(UVACG, "Arg").text(a));
            }
            set.push_child(je);
        }
        set
    }

    /// Decode a `<JobSet>` element.
    pub fn from_element(e: &Element) -> Option<JobSetSpec> {
        let name = e.attr_value("name")?.to_string();
        let mut jobs = Vec::new();
        for je in e.find_all(UVACG, "Job") {
            let jname = je.attr_value("name")?.to_string();
            let exe = FileRef::parse(je.find(UVACG, "Executable")?.attr_value("source")?)?;
            let mut job = JobSpec::new(jname, exe);
            for ie in je.find_all(UVACG, "Input") {
                job.inputs.push((
                    FileRef::parse(ie.attr_value("source")?)?,
                    ie.attr_value("as")?.to_string(),
                ));
            }
            for oe in je.find_all(UVACG, "Output") {
                job.outputs.push(oe.attr_value("name")?.to_string());
            }
            for ae in je.find_all(UVACG, "Arg") {
                job.args.push(ae.text_content());
            }
            jobs.push(job);
        }
        Some(JobSetSpec { name, jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> JobSetSpec {
        JobSetSpec::new("pipeline")
            .job(
                JobSpec::new("job1", FileRef::parse("local://C:\\prog.exe").unwrap())
                    .input(FileRef::parse("local://C:\\file1").unwrap(), "in.dat")
                    .output("output2"),
            )
            .job(
                JobSpec::new("job2", FileRef::parse("local://C:\\prog.exe").unwrap())
                    .input(FileRef::parse("job1://output2").unwrap(), "input.dat")
                    .output("final.dat"),
            )
    }

    #[test]
    fn fileref_parsing_matches_the_paper() {
        assert_eq!(
            FileRef::parse("local://C:\\file1").unwrap(),
            FileRef::Local("C:\\file1".into())
        );
        assert_eq!(
            FileRef::parse("job1://output2").unwrap(),
            FileRef::JobOutput {
                job: "job1".into(),
                file: "output2".into()
            }
        );
        assert!(FileRef::parse("no-scheme").is_none());
        assert!(FileRef::parse("local://").is_none());
        // Roundtrip.
        for s in ["local://C:\\x", "job9://out.bin"] {
            assert_eq!(FileRef::parse(s).unwrap().to_uri(), s);
        }
    }

    #[test]
    fn validate_produces_topological_order() {
        let order = pipeline().validate().unwrap();
        assert_eq!(order, ["job1", "job2"]);
    }

    #[test]
    fn diamond_dependencies_order_correctly() {
        let exe = FileRef::Local("p.exe".into());
        let set = JobSetSpec::new("diamond")
            .job(JobSpec::new("top", exe.clone()).output("o"))
            .job(
                JobSpec::new("left", exe.clone())
                    .input(FileRef::parse("top://o").unwrap(), "i")
                    .output("lo"),
            )
            .job(
                JobSpec::new("right", exe.clone())
                    .input(FileRef::parse("top://o").unwrap(), "i")
                    .output("ro"),
            )
            .job(
                JobSpec::new("bottom", exe)
                    .input(FileRef::parse("left://lo").unwrap(), "a")
                    .input(FileRef::parse("right://ro").unwrap(), "b"),
            );
        let order = set.validate().unwrap();
        assert_eq!(order[0], "top");
        assert_eq!(order[3], "bottom");
    }

    #[test]
    fn validation_errors() {
        let exe = FileRef::Local("p".into());
        assert_eq!(JobSetSpec::new("e").validate(), Err(ValidationError::Empty));

        let dup = JobSetSpec::new("d")
            .job(JobSpec::new("a", exe.clone()))
            .job(JobSpec::new("a", exe.clone()));
        assert_eq!(
            dup.validate(),
            Err(ValidationError::DuplicateJobName("a".into()))
        );

        let unknown = JobSetSpec::new("u")
            .job(JobSpec::new("a", exe.clone()).input(FileRef::parse("ghost://x").unwrap(), "x"));
        assert!(matches!(
            unknown.validate(),
            Err(ValidationError::UnknownJob { .. })
        ));

        let undeclared = JobSetSpec::new("o")
            .job(JobSpec::new("a", exe.clone()))
            .job(JobSpec::new("b", exe.clone()).input(FileRef::parse("a://nope").unwrap(), "x"));
        assert!(matches!(
            undeclared.validate(),
            Err(ValidationError::UndeclaredOutput { .. })
        ));

        let cycle = JobSetSpec::new("c")
            .job(
                JobSpec::new("a", exe.clone())
                    .input(FileRef::parse("b://y").unwrap(), "i")
                    .output("x"),
            )
            .job(
                JobSpec::new("b", exe)
                    .input(FileRef::parse("a://x").unwrap(), "i")
                    .output("y"),
            );
        assert!(matches!(
            cycle.validate(),
            Err(ValidationError::DependencyCycle(_))
        ));
    }

    #[test]
    fn executable_from_job_output_is_a_dependency() {
        let set = JobSetSpec::new("x")
            .job(JobSpec::new("builder", FileRef::Local("cc.exe".into())).output("prog.exe"))
            .job(JobSpec::new(
                "runner",
                FileRef::parse("builder://prog.exe").unwrap(),
            ));
        assert_eq!(set.validate().unwrap(), ["builder", "runner"]);
    }

    #[test]
    fn xml_roundtrip() {
        let set = pipeline();
        let el = set.to_element();
        let parsed = wsrf_xml::parse(&el.to_xml()).unwrap();
        assert_eq!(JobSetSpec::from_element(&parsed).unwrap(), set);
    }

    #[test]
    fn dependencies_listed() {
        let set = pipeline();
        assert!(set.get("job2").unwrap().dependencies().contains("job1"));
        assert!(set.get("job1").unwrap().dependencies().is_empty());
        assert!(set.get("ghost").is_none());
    }
}
