//! # uvacg — the University of Virginia Campus Grid testbed
//!
//! The paper's primary contribution: "a remote job execution testbed
//! that runs job sets on behalf of users ... web services utilizing
//! WSRF and WS-Notification to handle scheduling, data movement,
//! security and asynchronous messaging" (§4), rebuilt in Rust on the
//! WSRF stack in this workspace.
//!
//! The system architecture matches Figure 3 of the paper:
//!
//! * every machine runs a [`fss`] **File System Service** (resources =
//!   directories) and an [`es`] **Execution Service** (resources =
//!   jobs), plus the two "Windows services" — ProcSpawn and the
//!   Processor Utilization monitor — provided by `grid-node`,
//! * a single **Notification Broker** (from `ws-notification`)
//!   multicasts job-set events,
//! * the [`nis`] **Node Info Service** is a WS-ServiceGroup whose
//!   members are processors,
//! * the [`scheduler`] **Scheduler Service** (resources = job sets)
//!   coordinates everything: dependency-ordered job placement onto the
//!   "fastest, most available machine", EPR fill-in for inter-job data
//!   flow, and per-job-set notification topics,
//! * the [`client`] assembles job-set descriptions (`local://...`,
//!   `job1://output2`), runs a WSE-TCP-style local file server and a
//!   lightweight notification listener.
//!
//! [`grid::CampusGrid`] wires a whole campus together in one call; the
//! [`baseline`] module provides the GRAM-like submit-and-poll
//! comparator used by experiments E2 and E8; [`proxies`] offers typed
//! job/directory views built purely on the standard port types (the
//! §5 "higher-level interfaces" idea).

// WS-BaseFaults carries timestamps, originator EPRs and cause chains
// by design, so fault values are large; handlers are not hot paths and
// faults are exceptional, so we keep them by value rather than boxing
// every error site.
#![allow(clippy::result_large_err)]

pub mod baseline;
pub mod client;
pub mod es;
pub mod fss;
pub mod grid;
pub mod jobset;
pub mod monitor;
pub mod nis;
pub mod policy;
pub mod proxies;
pub mod scheduler;
pub mod security;

pub use client::{Client, JobSetHandle, JobSetOutcome};
pub use grid::{CampusGrid, GridConfig};
pub use jobset::{FileRef, JobSetSpec, JobSpec};
pub use monitor::{
    AuthorityStatus, EventPump, GridCatalog, MetricsSource, MonitorService, RemoteEvent,
};
pub use policy::{
    FastestAvailable, LeastLoaded, MachineOutcome, MetricsFeedback, NodeSnapshot, OutcomeKind,
    PenaltyRow, Random, RoundRobin, SchedulingPolicy,
};
pub use proxies::{DirectoryProxy, JobProxy};
pub use scheduler::{Scheduler, Standby};

/// The testbed's XML namespace (re-exported for tests and benches).
pub use wsrf_soap::ns::UVACG;
