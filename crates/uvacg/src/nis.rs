//! The Node Info Service (§4.4).
//!
//! "The Node Info service (NIS) is a service group (as defined by
//! WS-ServiceGroups) whose members represent the processors available
//! for scheduling. Each machine in the system runs the Processor
//! Utilization Windows service. This service asynchronously notifies
//! the NIS whenever the utilization of the machine's processors
//! changes by more than a configurable amount. The NIS catalogs this
//! information and delivers it to the Scheduler service upon request."

use std::sync::Arc;

use simclock::Clock;
use wsrf_core::container::{action_uri, OpKind, Service};
use wsrf_core::faults;
use wsrf_core::servicegroup::{
    group_action, init_group_resource, service_group_builder, MembershipContentRule,
};
use wsrf_core::store::ResourceStore;
use wsrf_soap::ns::{UVACG, WSSG};
use wsrf_soap::{EndpointReference, Envelope, MessageInfo, SoapFault};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{Element, QName};

use crate::policy::NodeSnapshot;

/// Service name used for actions.
pub const NIS_NAME: &str = "NodeInfo";

fn q(local: &str) -> QName {
    QName::new(UVACG, local)
}

/// Build the Node Info Service: a WS-ServiceGroup whose member content
/// carries machine name, hardware characteristics, utilization and
/// service addresses, extended with the utilization-update sink and a
/// snapshot query for the Scheduler.
pub fn node_info_service(
    address: &str,
    store: Arc<dyn ResourceStore>,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Arc<Service> {
    let rule = MembershipContentRule::requiring(&[
        "Machine",
        "CpuMhz",
        "Cores",
        "RamMb",
        "Utilization",
        "Execution",
        "FileSystem",
    ]);
    let svc = service_group_builder(NIS_NAME, address, store, rule)
        // The Processor Utilization service's one-way updates land
        // here: find the member entry for the machine and update its
        // Utilization content property.
        .raw_operation(
            action_uri(NIS_NAME, "UpdateUtilization"),
            OpKind::Static,
            |ctx| {
                let machine = ctx
                    .body
                    .attr_value("machine")
                    .ok_or_else(|| faults::bad_request("UpdateUtilization requires machine"))?
                    .to_string();
                let utilization = ctx
                    .body
                    .attr_value("utilization")
                    .and_then(|v| v.parse::<f64>().ok())
                    .ok_or_else(|| faults::bad_request("UpdateUtilization requires utilization"))?;
                let core = ctx.core.clone();
                for key in core.store.list(&core.name) {
                    let Ok(mut doc) = core.store.load(&core.name, &key) else {
                        continue;
                    };
                    if doc.text(&q("Machine")).as_deref() == Some(machine.as_str()) {
                        doc.set_f64(q("Utilization"), utilization);
                        // Staleness marker: virtual time of this
                        // report, so snapshot consumers can tell a
                        // fresh 0.3 from one frozen since deployment.
                        doc.set_f64(q("LastUpdated"), core.clock.now().as_secs_f64());
                        core.store
                            .save(&core.name, &key, &doc)
                            .map_err(faults::from_store)?;
                        return Ok(Element::new(UVACG, "UpdateUtilizationAck"));
                    }
                }
                Err(faults::bad_request(&format!(
                    "no member for machine '{machine}'"
                )))
            },
        )
        // Step 2 of Figure 3: "the Scheduler polls the NIS to get the
        // latest processor utilization ... as well as their hardware
        // characteristics, such as CPU speed and total RAM".
        .raw_operation(action_uri(NIS_NAME, "Snapshot"), OpKind::Static, |ctx| {
            let core = ctx.core.clone();
            let mut resp = Element::new(UVACG, "SnapshotResponse");
            for key in core.store.list(&core.name) {
                if key == wsrf_core::servicegroup::GROUP_KEY {
                    continue;
                }
                let Ok(doc) = core.store.load(&core.name, &key) else {
                    continue;
                };
                let text = |n: &str| doc.text(&q(n)).unwrap_or_default();
                resp.push_child(
                    Element::new(UVACG, "Node")
                        .attr("machine", text("Machine"))
                        .attr("cpuMhz", text("CpuMhz"))
                        .attr("cores", text("Cores"))
                        .attr("ramMb", text("RamMb"))
                        .attr("utilization", text("Utilization"))
                        .attr("updatedAt", text("LastUpdated"))
                        .attr("execution", text("Execution"))
                        .attr("filesystem", text("FileSystem")),
                );
            }
            Ok(resp)
        })
        .build(clock, net);
    init_group_resource(&svc);
    svc
}

/// Register a machine with the NIS (called at deployment; the member
/// EPR is the machine's Execution Service).
#[allow(clippy::too_many_arguments)]
pub fn register_machine(
    net: &InProcNetwork,
    nis_address: &str,
    machine: &str,
    cpu_mhz: u32,
    cores: u32,
    ram_mb: u32,
    execution: &str,
    filesystem: &str,
) -> Result<EndpointReference, SoapFault> {
    let member = EndpointReference::service(execution);
    let content = Element::new(WSSG, "Content")
        .child(Element::with_name(q("Machine")).text(machine))
        .child(Element::with_name(q("CpuMhz")).text(cpu_mhz.to_string()))
        .child(Element::with_name(q("Cores")).text(cores.to_string()))
        .child(Element::with_name(q("RamMb")).text(ram_mb.to_string()))
        .child(Element::with_name(q("Utilization")).text("0"))
        .child(Element::with_name(q("Execution")).text(execution))
        .child(Element::with_name(q("FileSystem")).text(filesystem));
    let body = Element::new(WSSG, "Add")
        .child(member.to_element_named(WSSG, "MemberEPR"))
        .child(content);
    let mut env = Envelope::new(body);
    MessageInfo::request(
        EndpointReference::service(nis_address),
        group_action(NIS_NAME, "Add"),
    )
    .apply(&mut env);
    let resp = net
        .call(nis_address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    resp.body
        .find(wsrf_soap::ns::WSA, "EndpointReference")
        .ok_or_else(|| SoapFault::server("AddResponse missing entry EPR"))
        .and_then(|e| {
            EndpointReference::from_element(e).map_err(|e| SoapFault::server(e.to_string()))
        })
}

/// One-way utilization report (what each machine's monitor sends).
pub fn report_utilization(
    net: &InProcNetwork,
    nis_address: &str,
    machine: &str,
    utilization: f64,
) -> Result<(), wsrf_transport::TransportError> {
    let body = Element::new(UVACG, "UpdateUtilization")
        .attr("machine", machine)
        .attr("utilization", format!("{utilization}"));
    let mut env = Envelope::new(body);
    MessageInfo::request(
        EndpointReference::service(nis_address),
        action_uri(NIS_NAME, "UpdateUtilization"),
    )
    .apply(&mut env);
    net.send_oneway(nis_address, env)
}

/// Poll the NIS snapshot (what the Scheduler does before each
/// placement).
pub fn snapshot(net: &InProcNetwork, nis_address: &str) -> Result<Vec<NodeSnapshot>, SoapFault> {
    let mut env = Envelope::new(Element::new(UVACG, "Snapshot"));
    MessageInfo::request(
        EndpointReference::service(nis_address),
        action_uri(NIS_NAME, "Snapshot"),
    )
    .apply(&mut env);
    let resp = net
        .call(nis_address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    let mut nodes: Vec<NodeSnapshot> = resp
        .body
        .find_all(UVACG, "Node")
        .filter_map(|n| {
            Some(NodeSnapshot {
                machine: n.attr_value("machine")?.to_string(),
                cpu_mhz: n.attr_value("cpuMhz")?.parse().ok()?,
                cores: n.attr_value("cores")?.parse().ok()?,
                ram_mb: n.attr_value("ramMb")?.parse().ok()?,
                utilization: n.attr_value("utilization")?.parse().ok()?,
                updated_at: n
                    .attr_value("updatedAt")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                execution: n.attr_value("execution")?.to_string(),
                filesystem: n.attr_value("filesystem")?.to_string(),
            })
        })
        .collect();
    nodes.sort_by(|a, b| a.machine.cmp(&b.machine));
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrf_core::store::MemoryStore;

    const ADDR: &str = "inproc://hub/NodeInfo";

    fn setup() -> (Arc<InProcNetwork>, Arc<Service>) {
        let clock = Clock::manual();
        let net = InProcNetwork::new(clock.clone());
        let svc = node_info_service(ADDR, Arc::new(MemoryStore::new()), clock, net.clone());
        svc.register(&net);
        (net, svc)
    }

    fn add(net: &InProcNetwork, name: &str, mhz: u32) {
        register_machine(
            net,
            ADDR,
            name,
            mhz,
            1,
            1024,
            &format!("inproc://{name}/Execution"),
            &format!("inproc://{name}/FileSystem"),
        )
        .unwrap();
    }

    #[test]
    fn register_and_snapshot() {
        let (net, _svc) = setup();
        add(&net, "m1", 1000);
        add(&net, "m2", 3000);
        let nodes = snapshot(&net, ADDR).unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].machine, "m1");
        assert_eq!(nodes[1].cpu_mhz, 3000);
        assert_eq!(nodes[0].utilization, 0.0);
        assert_eq!(nodes[1].execution, "inproc://m2/Execution");
    }

    #[test]
    fn utilization_updates_flow_into_snapshot() {
        let (net, _svc) = setup();
        add(&net, "m1", 1000);
        add(&net, "m2", 1000);
        net.clock().advance(std::time::Duration::from_secs(10));
        report_utilization(&net, ADDR, "m2", 0.75).unwrap();
        let nodes = snapshot(&net, ADDR).unwrap();
        assert_eq!(nodes[0].utilization, 0.0);
        assert_eq!(nodes[1].utilization, 0.75);
        // The update stamps the report's virtual time; machines that
        // never reported stay at 0.
        assert_eq!(nodes[0].updated_at, 0.0);
        assert_eq!(nodes[1].updated_at, 10.0);
        report_utilization(&net, ADDR, "m2", 0.25).unwrap();
        assert_eq!(snapshot(&net, ADDR).unwrap()[1].utilization, 0.25);
    }

    #[test]
    fn update_for_unknown_machine_is_ignored_gracefully() {
        let (net, _svc) = setup();
        add(&net, "m1", 1000);
        // One-way message; the fault is dropped on the floor but must
        // not corrupt anything.
        report_utilization(&net, ADDR, "ghost", 0.5).unwrap();
        assert_eq!(snapshot(&net, ADDR).unwrap().len(), 1);
    }

    #[test]
    fn members_are_entries_of_the_group() {
        let (net, svc) = setup();
        add(&net, "m1", 1000);
        let mut env = Envelope::new(Element::new(WSSG, "Entries"));
        MessageInfo::request(svc.core().service_epr(), group_action(NIS_NAME, "Entries"))
            .apply(&mut env);
        let resp = net.call(ADDR, env).unwrap();
        assert_eq!(resp.body.element_count(), 1);
    }

    #[test]
    fn incomplete_registration_rejected_by_content_rule() {
        let (net, _svc) = setup();
        let member = EndpointReference::service("inproc://m1/Execution");
        let content =
            Element::new(WSSG, "Content").child(Element::with_name(q("Machine")).text("m1"));
        let body = Element::new(WSSG, "Add")
            .child(member.to_element_named(WSSG, "MemberEPR"))
            .child(content);
        let mut env = Envelope::new(body);
        MessageInfo::request(
            EndpointReference::service(ADDR),
            group_action(NIS_NAME, "Add"),
        )
        .apply(&mut env);
        let resp = net.call(ADDR, env).unwrap();
        assert_eq!(
            resp.fault().unwrap().error_code(),
            Some("wssg:ContentCreationFailed")
        );
    }
}
