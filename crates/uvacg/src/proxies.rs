//! Typed client proxies for the testbed's resource kinds, built
//! entirely on the generic [`wsrf_core::ResourceProxy`] — i.e. on the
//! standard port types, with zero service-specific protocol. This is
//! the concrete realization of §5's "higher-level interfaces to
//! standard Resource Properties".

use bytes::Bytes;
use wsrf_core::ResourceProxy;
use wsrf_soap::{EndpointReference, SoapFault};
use wsrf_transport::InProcNetwork;

use crate::es;
use crate::fss;

/// Typed view of a job WS-Resource.
pub struct JobProxy<'a> {
    net: &'a InProcNetwork,
    inner: ResourceProxy<'a>,
    epr: EndpointReference,
}

impl<'a> JobProxy<'a> {
    /// Wrap a job EPR.
    pub fn new(net: &'a InProcNetwork, epr: EndpointReference) -> Self {
        JobProxy {
            net,
            inner: ResourceProxy::new(net, epr.clone()),
            epr,
        }
    }

    /// The job's `Status` property (`Staging` / `Running` / `Exited` /
    /// `Failed`).
    pub fn status(&self) -> Result<String, SoapFault> {
        self.inner.get_text("Status")
    }

    /// "the job's CPU time used so far" — live while running.
    pub fn cpu_time_used(&self) -> Result<f64, SoapFault> {
        self.inner.get_f64("CpuTimeUsed")
    }

    /// Exit code, if the job has exited.
    pub fn exit_code(&self) -> Result<Option<i32>, SoapFault> {
        match self.inner.get_i64("ExitCode") {
            Ok(code) => Ok(Some(code as i32)),
            Err(f) if f.error_code() == Some("wsrp:InvalidResourcePropertyQName") => Ok(None),
            Err(f) => Err(f),
        }
    }

    /// Kill the job (the paper's other job method).
    pub fn kill(&self) -> Result<bool, SoapFault> {
        es::kill(self.net, &self.epr)
    }

    /// The job's working directory, as a typed proxy.
    pub fn working_directory(&self) -> Result<DirectoryProxy<'a>, SoapFault> {
        let doc = self.inner.document()?;
        let el = doc
            .get_local("WorkingDirectory")
            .first()
            .cloned()
            .ok_or_else(|| SoapFault::server("job has no WorkingDirectory property"))?;
        let epr =
            EndpointReference::from_element(&el).map_err(|e| SoapFault::server(e.to_string()))?;
        Ok(DirectoryProxy::new(self.net, epr))
    }

    /// Generic access for anything not covered above.
    pub fn resource(&self) -> &ResourceProxy<'a> {
        &self.inner
    }
}

/// Typed view of a directory WS-Resource.
pub struct DirectoryProxy<'a> {
    net: &'a InProcNetwork,
    inner: ResourceProxy<'a>,
    epr: EndpointReference,
}

impl<'a> DirectoryProxy<'a> {
    /// Wrap a directory EPR.
    pub fn new(net: &'a InProcNetwork, epr: EndpointReference) -> Self {
        DirectoryProxy {
            net,
            inner: ResourceProxy::new(net, epr.clone()),
            epr,
        }
    }

    /// The directory's single resource property: its path.
    pub fn path(&self) -> Result<String, SoapFault> {
        self.inner.get_text("Path")
    }

    /// Read a file from the directory.
    pub fn read(&self, filename: &str) -> Result<Bytes, SoapFault> {
        fss::read(self.net, &self.epr, filename)
    }

    /// Write a file into the directory.
    pub fn write(&self, filename: &str, content: &[u8]) -> Result<(), SoapFault> {
        fss::write(self.net, &self.epr, filename, content)
    }

    /// List the directory.
    pub fn list(&self) -> Result<Vec<(String, Option<u64>)>, SoapFault> {
        fss::list(self.net, &self.epr)
    }

    /// Destroy the directory resource (the files remain on the
    /// machine's filesystem; only the WS-Resource is retired).
    pub fn destroy(&self) -> Result<(), SoapFault> {
        self.inner.destroy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{CampusGrid, GridConfig};
    use crate::jobset::{FileRef, JobSetSpec, JobSpec};
    use grid_node::JobProgram;
    use simclock::Clock;
    use std::time::Duration;

    fn running_job(grid: &CampusGrid) -> (crate::client::JobSetHandle, EndpointReference) {
        let client = grid.client("c");
        client.put_file(
            "C:\\p.exe",
            JobProgram::compute(10.0)
                .writing("out.dat", 32)
                .exiting(4)
                .to_manifest(),
        );
        let spec = JobSetSpec::new("p")
            .job(JobSpec::new("j", FileRef::parse("local://C:\\p.exe").unwrap()).output("out.dat"));
        let handle = client.submit(&spec, "griduser", "gridpass").unwrap();
        let epr = handle.job_epr("j").unwrap();
        (handle, epr)
    }

    #[test]
    fn job_proxy_lifecycle() {
        let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
        let (_handle, epr) = running_job(&grid);
        let job = JobProxy::new(&grid.net, epr);
        assert_eq!(job.status().unwrap(), "Running");
        assert_eq!(job.exit_code().unwrap(), None);
        grid.clock.advance(Duration::from_secs(4));
        assert!((job.cpu_time_used().unwrap() - 4.0).abs() < 1e-3);
        grid.clock.advance(Duration::from_secs(10));
        assert_eq!(job.status().unwrap(), "Exited");
        assert_eq!(job.exit_code().unwrap(), Some(4));
        assert!(
            (job.cpu_time_used().unwrap() - 10.0).abs() < 1e-3,
            "frozen at exit"
        );
    }

    #[test]
    fn directory_proxy_via_job() {
        let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
        let (_handle, epr) = running_job(&grid);
        let job = JobProxy::new(&grid.net, epr);
        let dir = job.working_directory().unwrap();
        assert!(dir.path().unwrap().starts_with("grid/"));
        grid.clock.advance(Duration::from_secs(15));
        let names: Vec<String> = dir.list().unwrap().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"out.dat".to_string()), "{names:?}");
        assert_eq!(dir.read("out.dat").unwrap().len(), 32);
        dir.write("extra.txt", b"note").unwrap();
        assert_eq!(&dir.read("extra.txt").unwrap()[..], b"note");
    }

    #[test]
    fn job_proxy_kill() {
        let grid = CampusGrid::build(GridConfig::with_machines(1), Clock::manual());
        let (_handle, epr) = running_job(&grid);
        let job = JobProxy::new(&grid.net, epr);
        assert!(job.kill().unwrap());
        assert_eq!(job.status().unwrap(), "Exited");
        assert_eq!(job.exit_code().unwrap(), Some(-9));
    }
}
