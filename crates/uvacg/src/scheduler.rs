//! The Scheduler Service (§4.5) — "the heart of the remote job
//! execution testbed because it coordinates the activities of the
//! other grid components".
//!
//! Its WS-Resources are **job sets**. On submission it generates a
//! unique notification topic for the set, subscribes both itself and
//! the client's listener at the broker, and then drives the run: for
//! every job whose dependencies are satisfied it polls the Node Info
//! Service, picks a machine with the configured policy ("a
//! straightforward algorithm chooses the fastest, most available
//! machine"), and invokes `Run` on that machine's Execution Service.
//! As working-directory EPRs come back it "fills in" the locations of
//! files produced by earlier jobs into the upload requests of later
//! ones; job-exit notifications trigger the next wave of dispatches.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::{Clock, SimTime};
use ws_notification::broker;
use ws_notification::consumer::NotificationListener;
use ws_notification::message::NotificationMessage;
use ws_notification::topics::{TopicExpression, TopicPath};
use wsrf_core::container::{action_uri, Service, ServiceBuilder, ServiceCore};
use wsrf_core::faults;
use wsrf_core::properties::PropertyDoc;
use wsrf_core::store::ResourceStore;
use wsrf_obs::{SpanContext, TraceSnapshot};
use wsrf_security::wsse::UsernameToken;
use wsrf_soap::ns::{UVACG, WSSE};
use wsrf_soap::{BaseFault, EndpointReference, Envelope, MessageInfo, SoapFault, TraceContext};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{Element, QName};

use crate::es::{self, RunRequest};
use crate::jobset::{FileRef, JobSetSpec};
use crate::policy::{MachineOutcome, OutcomeKind, SchedulingPolicy};
use crate::security::GridSecurity;

/// The job-set key reference property (Clark form).
pub fn jobset_key_property() -> String {
    format!("{{{UVACG}}}JobSetKey")
}

/// Well-known resource key of the scheduler's feedback table. The
/// resource carries one `{UVACG}MachinePenalty` property per machine
/// the policy has observed (attributes `machine`, `penalty`, `ewmaNs`,
/// `observations`, `failures`), refreshed after every reported
/// outcome. Empty for feedback-less policies.
pub const FEEDBACK_KEY: &str = "feedback";

fn q(local: &str) -> QName {
    QName::new(UVACG, local)
}

/// Job-set status values exposed through the `Status` property.
pub mod set_status {
    /// Jobs are being dispatched / running.
    pub const RUNNING: &str = "Running";
    /// Every job exited successfully.
    pub const COMPLETED: &str = "Completed";
    /// A job failed; dependents were not dispatched.
    pub const FAILED: &str = "Failed";
}

/// Scheduler deployment configuration.
pub struct SchedulerConfig {
    /// Node Info Service address.
    pub nis_address: String,
    /// The broker all job events flow through.
    pub broker: EndpointReference,
    /// Placement policy.
    pub policy: Arc<dyn SchedulingPolicy>,
    /// Campus PKI + the scheduler's subject; when set, submissions must
    /// carry a UsernameToken encrypted to the scheduler, which is
    /// re-encrypted per chosen Execution Service (subject `es@<machine>`).
    pub security: Option<(Arc<GridSecurity>, String)>,
    /// Resource state backend.
    pub store: Arc<dyn ResourceStore>,
    /// Address for the scheduler's own notification listener.
    pub listener_address: String,
    /// Watchdog: fail a job set if a dispatched job has not finished
    /// within this much virtual time (None = wait forever, like the
    /// paper, which has no fault-tolerance story). An extension for
    /// crashed machines, which never send their exit notification.
    pub job_timeout: Option<std::time::Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Waiting,
    Dispatched,
    Completed,
    Failed,
}

struct JobRun {
    state: JobState,
    machine: Option<String>,
    dir_epr: Option<EndpointReference>,
    job_epr: Option<EndpointReference>,
    exit_code: Option<i32>,
    cpu_used: Option<f64>,
    dispatched_at: Option<SimTime>,
}

struct RunState {
    spec: JobSetSpec,
    topic: String,
    credentials: (String, String),
    client_fileserver: Option<String>,
    jobs: HashMap<String, JobRun>,
    finished: bool,
    submitted_at: SimTime,
    /// Trace context of the submission dispatch: every downstream
    /// message and Figure 3 step mark for this set parents under it.
    trace: Option<TraceContext>,
}

struct SchedInner {
    runs: Mutex<HashMap<String, RunState>>,
    nis_address: String,
    broker: EndpointReference,
    policy: Arc<dyn SchedulingPolicy>,
    security: Option<(Arc<GridSecurity>, String)>,
    job_timeout: Option<std::time::Duration>,
}

/// The deployed Scheduler: its WSRF service plus its notification
/// listener.
pub struct Scheduler {
    /// The WSRF service (resources = job sets).
    pub service: Arc<Service>,
    /// The scheduler's own notification listener.
    pub listener: NotificationListener,
    inner: Arc<SchedInner>,
}

impl Scheduler {
    /// Register the scheduler service on the network (the listener is
    /// registered at construction).
    pub fn register(&self, net: &InProcNetwork) {
        self.service.register(net);
    }

    /// The scheduler service's EPR.
    pub fn epr(&self) -> EndpointReference {
        self.service.core().service_epr()
    }

    /// EPR of the feedback-table resource (its `MachinePenalty`
    /// properties mirror the policy's [`crate::policy::PenaltyRow`]s).
    pub fn feedback_epr(&self) -> EndpointReference {
        self.service.core().epr_for(FEEDBACK_KEY)
    }

    /// Diagnostic: per-job states of a run (None for unknown sets).
    pub fn job_states(&self, jobset_key: &str) -> Option<Vec<(String, String, Option<i32>)>> {
        let runs = self.inner.runs.lock();
        let run = runs.get(jobset_key)?;
        let mut v: Vec<(String, String, Option<i32>)> = run
            .jobs
            .iter()
            .map(|(name, jr)| (name.clone(), format!("{:?}", jr.state), jr.exit_code))
            .collect();
        v.sort();
        Some(v)
    }
}

/// Build and wire the Scheduler Service.
pub fn scheduler_service(
    address: &str,
    cfg: SchedulerConfig,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Scheduler {
    // Feedback policies read observed transport latencies from the
    // deployment's registry.
    cfg.policy.bind_metrics(net.metrics_registry());
    let inner = Arc::new(SchedInner {
        runs: Mutex::new(HashMap::new()),
        nis_address: cfg.nis_address,
        broker: cfg.broker,
        policy: cfg.policy,
        security: cfg.security,
        job_timeout: cfg.job_timeout,
    });
    let listener = NotificationListener::register(&net, &cfg.listener_address);

    let submit_inner = inner.clone();
    let submit_listener = listener.clone();
    let trace_registry = net.metrics_registry().clone();
    let service = ServiceBuilder::new("Scheduler", address, cfg.store)
        .key_property(jobset_key_property())
        .static_operation("SubmitJobSet", move |ctx| {
            submit_op(ctx, &submit_inner, &submit_listener)
        })
        // The submission's span tree, queryable like any other resource
        // property: the `TraceId` text property (stamped at submit)
        // selects this set's spans out of the tracer's ring at query
        // time, so the tree keeps growing until the ring rotates.
        .computed_property(q("Trace"), move |doc, _now| {
            let Some(id) = doc
                .text(&q("TraceId"))
                .and_then(|t| u64::from_str_radix(&t, 16).ok())
            else {
                return vec![];
            };
            let snap = trace_registry.tracer().trace(id);
            if snap.is_empty() {
                return vec![];
            }
            vec![trace_to_element(&snap)]
        })
        // The §5 rediscovery path: "how a client might possibly
        // rediscover their resources should their EPRs be lost".
        .static_operation("FindJobSets", |ctx| {
            let name_filter = ctx.body.attr_value("name").map(str::to_string);
            let core = ctx.core.clone();
            let mut keys = core.store.list(&core.name);
            keys.sort_by_key(|k| (k.len(), k.clone()));
            let mut resp = Element::new(UVACG, "FindJobSetsResponse");
            for key in keys {
                if key == FEEDBACK_KEY {
                    continue; // not a job set
                }
                let Ok(doc) = core.store.load(&core.name, &key) else {
                    continue;
                };
                let name = doc.text(&q("Name")).unwrap_or_default();
                if let Some(f) = &name_filter {
                    if &name != f {
                        continue;
                    }
                }
                resp.push_child(
                    Element::new(UVACG, "JobSet")
                        .attr("name", name)
                        .attr("status", doc.text(&q("Status")).unwrap_or_default())
                        .attr("topic", doc.text(&q("Topic")).unwrap_or_default())
                        .child(core.epr_for(&key).to_element_named(UVACG, "JobSetEpr")),
                );
            }
            Ok(resp)
        })
        .build(clock, net);

    // The queryable feedback table: clients introspect placement the
    // same way they introspect job sets — as resource properties.
    let mut doc = PropertyDoc::new();
    doc.set_text(q("Policy"), inner.policy.name());
    let _ = service.core().create_resource_with_key(FEEDBACK_KEY, doc);

    Scheduler {
        service,
        listener,
        inner,
    }
}

/// Report one placement outcome into the policy's feedback channel and
/// refresh the queryable penalty table. Must not be called while
/// `inner.runs` is locked (the policy takes its own locks, and some
/// policies consult the metrics registry).
fn report_outcome(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    machine: &str,
    kind: OutcomeKind,
) {
    inner.policy.observe(&MachineOutcome {
        machine: machine.to_string(),
        kind,
    });
    let rows = inner.policy.penalties();
    if let Ok(mut doc) = core.store.load(&core.name, FEEDBACK_KEY) {
        let els = rows
            .iter()
            .map(|r| {
                Element::with_name(q("MachinePenalty"))
                    .attr("machine", &r.machine)
                    .attr("penalty", format!("{:.4}", r.penalty))
                    .attr("ewmaNs", r.ewma_ns.to_string())
                    .attr("observations", r.observations.to_string())
                    .attr("failures", format!("{:.4}", r.failures))
            })
            .collect();
        doc.update(q("MachinePenalty"), els);
        let _ = core.store.save(&core.name, FEEDBACK_KEY, &doc);
    }
}

fn submit_op(
    ctx: &mut wsrf_core::container::Ctx<'_>,
    inner: &Arc<SchedInner>,
    listener: &NotificationListener,
) -> Result<Element, BaseFault> {
    let trace = ctx.trace;
    // Step 1: decode and validate the description.
    let set_el = ctx
        .body
        .find(UVACG, "JobSet")
        .ok_or_else(|| faults::bad_request("SubmitJobSet requires JobSet"))?;
    let spec = JobSetSpec::from_element(set_el)
        .ok_or_else(|| faults::bad_request("malformed JobSet description"))?;
    spec.validate()
        .map_err(|e| BaseFault::new("uvacg:InvalidJobSet", e.to_string()))?;

    // Credentials travel encrypted to the scheduler (or plaintext in
    // insecure deployments).
    let credentials = match &inner.security {
        Some((sec, subject)) => {
            let header = ctx.header(WSSE, "Security").ok_or_else(|| {
                BaseFault::new("uvacg:MissingCredentials", "no WS-Security header")
            })?;
            let tok = sec.decrypt_token(header, subject).map_err(|e| {
                BaseFault::new("uvacg:BadCredentials", format!("cannot decrypt: {e}"))
            })?;
            (tok.username, tok.password)
        }
        None => {
            let el = ctx.body.find(UVACG, "Credentials").ok_or_else(|| {
                BaseFault::new("uvacg:MissingCredentials", "no Credentials element")
            })?;
            (
                el.attr_value("user").unwrap_or_default().to_string(),
                el.attr_value("password").unwrap_or_default().to_string(),
            )
        }
    };

    let client_listener = ctx
        .body
        .find(UVACG, "ClientListener")
        .map(EndpointReference::from_element)
        .transpose()
        .map_err(|e| faults::bad_request(&format!("bad ClientListener: {e}")))?;
    let client_fileserver = ctx
        .body
        .find(UVACG, "ClientFileServer")
        .map(|e| e.text_content());

    // Create the job-set resource and its topic.
    let mut doc = PropertyDoc::new();
    doc.set_text(q("Name"), &spec.name);
    doc.set_text(q("Status"), set_status::RUNNING);
    let set_epr = ctx.core.create_resource(doc)?;
    let key = set_epr.resource_key().unwrap().to_string();
    let topic = format!("jobset-{key}");
    {
        let core = ctx.core.clone();
        let mut doc = core
            .store
            .load(&core.name, &key)
            .map_err(faults::from_store)?;
        doc.set_text(q("Topic"), &topic);
        if let Some(tc) = &trace {
            doc.set_text(q("TraceId"), format!("{:016x}", tc.trace_id));
        }
        for j in &spec.jobs {
            doc.insert(
                q("JobStatus"),
                Element::with_name(q("JobStatus"))
                    .attr("job", &j.name)
                    .text("Waiting"),
            );
        }
        core.store
            .save(&core.name, &key, &doc)
            .map_err(faults::from_store)?;
    }

    // "The SS then invokes the Subscribe() method on the Notification
    // Broker to subscribe both itself and the client's notification
    // listener."
    let expr = TopicExpression::full(&format!("{topic}//"));
    // Client first: the broker delivers in subscription order, and the
    // scheduler's own handling of an exit event dispatches follow-on
    // jobs (and thus further events) inline on the test network.
    if let Some(cl) = &client_listener {
        broker::subscribe(&ctx.core.net, &inner.broker, cl, &expr, None)
            .map_err(|e| faults::storage(&format!("client subscribe failed: {e}")))?;
    }
    broker::subscribe(&ctx.core.net, &inner.broker, &listener.epr(), &expr, None)
        .map_err(|e| faults::storage(&format!("broker subscribe failed: {e}")))?;

    // Record the run.
    {
        let mut runs = inner.runs.lock();
        runs.insert(
            key.clone(),
            RunState {
                jobs: spec
                    .jobs
                    .iter()
                    .map(|j| {
                        (
                            j.name.clone(),
                            JobRun {
                                state: JobState::Waiting,
                                machine: None,
                                dir_epr: None,
                                job_epr: None,
                                exit_code: None,
                                cpu_used: None,
                                dispatched_at: None,
                            },
                        )
                    })
                    .collect(),
                spec,
                topic: topic.clone(),
                credentials,
                client_fileserver,
                finished: false,
                submitted_at: ctx.core.clock.now(),
                trace,
            },
        );
    }

    // Figure 3 step 1: the submission itself.
    record_steps(
        ctx.core,
        inner,
        &key,
        "*",
        &[(1, "submit")],
        ctx.core.clock.now(),
    );

    // Hook this job set's events.
    let core = ctx.core.clone();
    let inner2 = inner.clone();
    let key2 = key.clone();
    listener.on_topic(expr, move |msg| {
        on_event(&core, &inner2, &key2, msg);
    });

    // Dispatch the first wave.
    dispatch_ready(ctx.core, inner, &key);

    Ok(Element::new(UVACG, "SubmitJobSetResponse")
        .child(set_epr.to_element_named(UVACG, "JobSetEpr"))
        .child(Element::new(UVACG, "Topic").text(topic)))
}

/// Record Figure 3 steps for job set `key` at virtual time `at`: each
/// becomes a `StepMetric` resource property on the job-set resource
/// (`step`, `name`, `job`, `t` = virtual ns) and a
/// `scheduler.step.<NN>_<name>_ns` histogram sample of the elapsed
/// virtual time since submission. `job` is `"*"` for set-level steps.
///
/// Must not be called while `inner.runs` is locked.
fn record_steps(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    key: &str,
    job: &str,
    steps: &[(u8, &str)],
    at: SimTime,
) {
    let (submitted, trace) = {
        let runs = inner.runs.lock();
        match runs.get(key) {
            Some(r) => (r.submitted_at, r.trace),
            None => return,
        }
    };
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        for (step, name) in steps {
            doc.insert(
                q("StepMetric"),
                Element::with_name(q("StepMetric"))
                    .attr("step", step.to_string())
                    .attr("name", *name)
                    .attr("job", job)
                    .attr("t", at.as_nanos().to_string()),
            );
        }
        let _ = core.store.save(&core.name, key, &doc);
    }
    if core.metrics.is_enabled() {
        let elapsed = at.since(submitted).as_nanos() as u64;
        for (step, name) in steps {
            core.metrics
                .histogram(&format!("scheduler.step.{step:02}_{name}_ns"))
                .record(elapsed);
        }
    }
    // Each step also lands in the span tree as an instant span under
    // the submission's dispatch span.
    if let Some(tc) = trace {
        let tracer = core.metrics.tracer();
        if tracer.is_enabled() {
            let parent = SpanContext {
                trace_id: tc.trace_id,
                span_id: tc.span_id,
                sampled: tc.sampled,
            };
            for (step, name) in steps {
                tracer.point(
                    parent,
                    format!("step.{step:02}_{name}"),
                    "Scheduler",
                    at.as_nanos(),
                    &[("job", job)],
                );
            }
        }
    }
}

/// Handle a notification for job set `key`.
fn on_event(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    key: &str,
    msg: &NotificationMessage,
) {
    // Topics look like `jobset-K/job/<name>/<event>`.
    let segs = &msg.topic.0;
    if segs.len() != 4 || segs[1] != "job" {
        return;
    }
    let job_name = segs[2].clone();
    let event = segs[3].as_str();
    match event {
        "dir" => {
            if let Ok(epr) = EndpointReference::from_element(&msg.payload) {
                {
                    let mut runs = inner.runs.lock();
                    if let Some(run) = runs.get_mut(key) {
                        if let Some(jr) = run.jobs.get_mut(&job_name) {
                            jr.dir_epr = Some(epr.clone());
                        }
                    }
                }
                // Persist into the job-set resource so clients that
                // lost their event history (the §5 durability concern)
                // can rediscover output locations.
                if let Ok(mut doc) = core.store.load(&core.name, key) {
                    doc.remove_value(&q("JobDirectory"), |e| {
                        e.attr_value("job") == Some(&job_name)
                    });
                    doc.insert(
                        q("JobDirectory"),
                        epr.to_element_named(UVACG, "JobDirectory")
                            .attr("job", &job_name),
                    );
                    let _ = core.store.save(&core.name, key, &doc);
                }
                // Figure 3 step 4: the working directory exists on the
                // chosen machine's FSS.
                record_steps(
                    core,
                    inner,
                    key,
                    &job_name,
                    &[(4, "workdir")],
                    core.clock.now(),
                );
            }
        }
        "started" => {
            // By the time the ES broadcasts "started", staging has
            // finished (client files over WSE-TCP, grid files via FSS
            // Read), the FSS sent its one-way upload-complete, the
            // process was spawned, and the job EPR is on the wire —
            // Figure 3 steps 5-9, observed here as one instant.
            record_steps(
                core,
                inner,
                key,
                &job_name,
                &[
                    (5, "client_stage"),
                    (6, "grid_stage"),
                    (7, "upload_complete"),
                    (8, "spawn"),
                    (9, "epr_broadcast"),
                ],
                core.clock.now(),
            );
        }
        "exit" => {
            let code: i32 = msg
                .payload
                .attr_value("code")
                .and_then(|c| c.parse().ok())
                .unwrap_or(-1);
            let cpu_used: Option<f64> = msg.payload.attr_value("cpu").and_then(|c| c.parse().ok());
            // Figure 3 step 10: the exit event reached us through the
            // broker re-broadcast.
            record_steps(
                core,
                inner,
                key,
                &job_name,
                &[(10, "exit_broadcast")],
                core.clock.now(),
            );
            let (all_done, outcome) = {
                let mut runs = inner.runs.lock();
                let Some(run) = runs.get_mut(key) else { return };
                let Some(jr) = run.jobs.get_mut(&job_name) else {
                    return;
                };
                jr.exit_code = Some(code);
                jr.cpu_used = cpu_used;
                jr.state = if code == 0 {
                    JobState::Completed
                } else {
                    JobState::Failed
                };
                update_job_status_property(core, key, &job_name, jr);
                // Feedback: a clean exit reports the observed per-job
                // makespan on that machine; a nonzero exit is a
                // failure mark against it.
                let outcome = jr.machine.clone().map(|machine| {
                    let kind = if code == 0 {
                        OutcomeKind::Makespan {
                            virt_ns: jr
                                .dispatched_at
                                .map_or(0, |t| core.clock.now().since(t).as_nanos() as u64),
                        }
                    } else {
                        OutcomeKind::Failure
                    };
                    (machine, kind)
                });
                let all_done = if code != 0 {
                    None // handled below as failure
                } else {
                    Some(run.jobs.values().all(|j| j.state == JobState::Completed))
                };
                (all_done, outcome)
            };
            if let Some((machine, kind)) = outcome {
                report_outcome(core, inner, &machine, kind);
            }
            match all_done {
                None => {
                    fail_job_set(
                        core,
                        inner,
                        key,
                        &job_name,
                        BaseFault::new(
                            "uvacg:JobFailed",
                            format!("job '{job_name}' exited with code {code}"),
                        ),
                    );
                }
                Some(true) => complete_job_set(core, inner, key),
                Some(false) => dispatch_ready(core, inner, key),
            }
        }
        "failed" => {
            let machine = {
                let mut runs = inner.runs.lock();
                let mut machine = None;
                if let Some(run) = runs.get_mut(key) {
                    if let Some(jr) = run.jobs.get_mut(&job_name) {
                        jr.state = JobState::Failed;
                        machine = jr.machine.clone();
                        update_job_status_property(core, key, &job_name, jr);
                    }
                }
                machine
            };
            if let Some(machine) = machine {
                report_outcome(core, inner, &machine, OutcomeKind::Failure);
            }
            fail_job_set(
                core,
                inner,
                key,
                &job_name,
                BaseFault::new(
                    "uvacg:JobFailed",
                    format!("job '{job_name}' failed: {}", msg.payload.text_content()),
                ),
            );
        }
        _ => {}
    }
}

/// Dispatch every job whose dependencies are all complete.
fn dispatch_ready(core: &Arc<ServiceCore>, inner: &Arc<SchedInner>, key: &str) {
    loop {
        // Pick one ready job under the lock; dispatch outside it (the
        // Run call triggers notifications that re-enter this module).
        let next: Option<(String, RunRequest, String, String, SimTime)> = {
            let mut runs = inner.runs.lock();
            let Some(run) = runs.get_mut(key) else { return };
            if run.finished {
                return;
            }
            let ready = run.spec.jobs.iter().find(|j| {
                run.jobs[&j.name].state == JobState::Waiting
                    && j.dependencies()
                        .iter()
                        .all(|d| run.jobs[*d].state == JobState::Completed)
            });
            let Some(job) = ready else { return };
            let job_name = job.name.clone();

            // Step 2: poll the NIS. (Inside the lock: a consistent
            // pick beats a stale one, and the NIS call does not
            // re-enter the scheduler.)
            let t_nis = core.clock.now();
            let nodes = match crate::nis::snapshot(&core.net, &inner.nis_address) {
                Ok(n) if !n.is_empty() => n,
                _ => {
                    drop(runs);
                    fail_job_set(
                        core,
                        inner,
                        key,
                        &job_name,
                        BaseFault::new("uvacg:NoNodes", "no machines available for scheduling"),
                    );
                    return;
                }
            };
            let Some(pick) = inner.policy.select(&nodes) else {
                drop(runs);
                fail_job_set(
                    core,
                    inner,
                    key,
                    &job_name,
                    BaseFault::new("uvacg:NoNodes", "policy rejected all machines"),
                );
                return;
            };
            let node = nodes.into_iter().nth(pick).expect("policy picked in range");

            // Build the Run request, resolving file references — the
            // "filling in" of EPRs the paper describes.
            let built: Result<RunRequest, BaseFault> = (|| {
                let resolve = |r: &FileRef| -> Result<(EndpointReference, String), BaseFault> {
                    match r {
                        FileRef::Local(path) => {
                            let fs = run.client_fileserver.as_ref().ok_or_else(|| {
                                BaseFault::new(
                                    "uvacg:NoFileServer",
                                    "job set uses local:// but no client file server was given",
                                )
                            })?;
                            Ok((EndpointReference::service(fs), path.clone()))
                        }
                        FileRef::JobOutput { job, file } => {
                            let dep = &run.jobs[job];
                            let dir = dep.dir_epr.clone().ok_or_else(|| {
                                BaseFault::new(
                                    "uvacg:MissingWorkdir",
                                    format!("no working directory recorded for job '{job}'"),
                                )
                            })?;
                            Ok((dir, file.clone()))
                        }
                    }
                };
                let (exe_src, exe_name) = resolve(&job.executable)?;
                let exe_as = basename(&exe_name);
                let mut inputs = Vec::new();
                for (src, as_name) in &job.inputs {
                    let (epr, name) = resolve(src)?;
                    inputs.push((epr, name, as_name.clone()));
                }
                // Credentials for the chosen machine.
                let (security_header, plain_credentials) = match &inner.security {
                    Some((sec, _)) => {
                        let subject = format!("es@{}", node.machine);
                        let tok = UsernameToken::new(&run.credentials.0, &run.credentials.1);
                        let header = sec.encrypt_token(&tok, &subject).ok_or_else(|| {
                            BaseFault::new(
                                "uvacg:NoCertificate",
                                format!("no certificate enrolled for '{subject}'"),
                            )
                        })?;
                        (Some(header), None)
                    }
                    None => (None, Some(run.credentials.clone())),
                };
                Ok(RunRequest {
                    job_name: job.name.clone(),
                    executable: (exe_src, exe_name, exe_as),
                    inputs,
                    topic: run.topic.clone(),
                    security_header,
                    plain_credentials,
                    trace: run.trace,
                })
            })();
            match built {
                Ok(req) => {
                    let jr = run.jobs.get_mut(&job_name).unwrap();
                    jr.state = JobState::Dispatched;
                    jr.machine = Some(node.machine.clone());
                    jr.dispatched_at = Some(core.clock.now());
                    update_job_status_property(core, key, &job_name, jr);
                    Some((job_name, req, node.execution, node.machine, t_nis))
                }
                Err(fault) => {
                    drop(runs);
                    fail_job_set(core, inner, key, &job_name, fault);
                    return;
                }
            }
        };

        let Some((job_name, req, es_address, machine, t_nis)) = next else {
            return;
        };

        // Figure 3 step 2: the NIS was polled for this job's placement.
        record_steps(core, inner, key, &job_name, &[(2, "nis_poll")], t_nis);

        // Step 3: "the ES on that machine is sent a request to run a
        // job". Notifications triggered inline during this call may
        // already complete the job (zero-work programs) or even the
        // whole set; state transitions happened in on_event.
        let es_run_span = core.metrics.timer("scheduler.es_run").start(&core.clock);
        let t_run = core.clock.now();
        match es::run(&core.net, &es_address, &req) {
            Ok(reply) => {
                es_run_span.finish();
                // Feedback: the observed virtual dispatch latency for
                // this machine (zero on a manual clock, which the
                // policy discards as signal-free).
                report_outcome(
                    core,
                    inner,
                    &machine,
                    OutcomeKind::Dispatch {
                        virt_ns: core.clock.now().since(t_run).as_nanos() as u64,
                    },
                );
                record_steps(
                    core,
                    inner,
                    key,
                    &job_name,
                    &[(3, "es_run")],
                    core.clock.now(),
                );
                {
                    let mut runs = inner.runs.lock();
                    if let Some(run) = runs.get_mut(key) {
                        if let Some(jr) = run.jobs.get_mut(&job_name) {
                            jr.job_epr = Some(reply.job);
                            if jr.dir_epr.is_none() {
                                jr.dir_epr = Some(reply.workdir);
                            }
                        }
                    }
                }
                // Watchdog: a machine that dies mid-run never sends its
                // exit notification; without a timeout the set would
                // wait forever.
                if let Some(timeout) = inner.job_timeout {
                    let core2 = core.clone();
                    let inner2 = inner.clone();
                    let key2 = key.to_string();
                    let name2 = job_name.clone();
                    let machine2 = machine.clone();
                    core.clock.schedule(timeout, move |_| {
                        let timed_out = {
                            let runs = inner2.runs.lock();
                            runs.get(&key2)
                                .and_then(|r| r.jobs.get(&name2))
                                .is_some_and(|jr| jr.state == JobState::Dispatched)
                        };
                        if timed_out {
                            report_outcome(&core2, &inner2, &machine2, OutcomeKind::Timeout);
                            fail_job_set(
                                &core2,
                                &inner2,
                                &key2,
                                &name2,
                                BaseFault::new(
                                    "uvacg:JobTimeout",
                                    format!(
                                        "job '{name2}' did not finish within {} virtual seconds",
                                        timeout.as_secs_f64()
                                    ),
                                ),
                            );
                        }
                    });
                }
            }
            Err(fault) => {
                let wrapped = BaseFault::new(
                    "uvacg:DispatchFailed",
                    format!("cannot run job '{job_name}' on {es_address}"),
                )
                .caused_by(fault.detail.unwrap_or_else(|| {
                    BaseFault::new("uvacg:TransportFault", fault.reason.clone())
                }));
                fail_job_set(core, inner, key, &job_name, wrapped);
                return;
            }
        }
    }
}

fn basename(path: &str) -> String {
    path.rsplit(['/', '\\']).next().unwrap_or(path).to_string()
}

/// Mirror a job's state into the job-set resource properties.
fn update_job_status_property(core: &Arc<ServiceCore>, key: &str, job: &str, jr: &JobRun) {
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        let mut el = Element::with_name(q("JobStatus"))
            .attr("job", job)
            .text(format!("{:?}", jr.state));
        if let Some(m) = &jr.machine {
            el = el.attr("machine", m);
        }
        if let Some(c) = jr.exit_code {
            el = el.attr("exitCode", c.to_string());
        }
        if let Some(cpu) = jr.cpu_used {
            el = el.attr("cpu", format!("{cpu:.6}"));
        }
        doc.remove_value(&q("JobStatus"), |e| e.attr_value("job") == Some(job));
        doc.insert(q("JobStatus"), el);
        let _ = core.store.save(&core.name, key, &doc);
    }
}

fn complete_job_set(core: &Arc<ServiceCore>, inner: &Arc<SchedInner>, key: &str) {
    let (topic, submitted_at, trace) = {
        let mut runs = inner.runs.lock();
        let Some(run) = runs.get_mut(key) else { return };
        if run.finished {
            return;
        }
        run.finished = true;
        (run.topic.clone(), run.submitted_at, run.trace)
    };
    let makespan = core.clock.now().since(submitted_at);
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        doc.set_text(q("Status"), set_status::COMPLETED);
        doc.set_f64(q("Makespan"), makespan.as_secs_f64());
        let _ = core.store.save(&core.name, key, &doc);
    }
    core.metrics
        .histogram("scheduler.makespan_ns")
        .record(makespan.as_nanos() as u64);
    publish(
        core,
        &inner.broker,
        &TopicPath::parse(&topic).child("completed"),
        Element::new(UVACG, "JobSetCompleted"),
        trace.as_ref(),
    );
}

fn fail_job_set(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    key: &str,
    job: &str,
    cause: BaseFault,
) {
    let (topic, submitted_at, trace) = {
        let mut runs = inner.runs.lock();
        let Some(run) = runs.get_mut(key) else { return };
        if run.finished {
            return;
        }
        run.finished = true;
        (run.topic.clone(), run.submitted_at, run.trace)
    };
    let makespan = core.clock.now().since(submitted_at);
    let fault = BaseFault::new(
        "uvacg:JobSetFailed",
        format!("job set failed at job '{job}'"),
    )
    .at(core.clock.now().as_secs_f64())
    .from_originator(core.service_epr())
    .caused_by(cause);
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        doc.set_text(q("Status"), set_status::FAILED);
        doc.set_f64(q("Makespan"), makespan.as_secs_f64());
        doc.update(
            q("Fault"),
            vec![Element::with_name(q("Fault")).child(fault.to_element())],
        );
        let _ = core.store.save(&core.name, key, &doc);
    }
    core.metrics
        .histogram("scheduler.makespan_ns")
        .record(makespan.as_nanos() as u64);
    publish(
        core,
        &inner.broker,
        &TopicPath::parse(&topic).child("failed"),
        Element::new(UVACG, "JobSetFailed")
            .attr("job", job)
            .child(fault.to_element()),
        trace.as_ref(),
    );
}

fn publish(
    core: &Arc<ServiceCore>,
    broker_epr: &EndpointReference,
    topic: &TopicPath,
    payload: Element,
    trace: Option<&TraceContext>,
) {
    let msg = NotificationMessage::new(topic.clone(), payload).from_producer(core.service_epr());
    let mut env = msg.to_envelope(broker_epr);
    if let Some(tc) = trace {
        tc.stamp(&mut env);
    }
    let _ = core.net.send_oneway(&broker_epr.address, env);
}

/// Serialize a span tree as a `{UVACG}Trace` resource-property element:
/// one `<Span>` child per retained span, parent links by id.
fn trace_to_element(snap: &TraceSnapshot) -> Element {
    let mut el = Element::with_name(q("Trace")).attr("spans", snap.len().to_string());
    for s in &snap.spans {
        el.push_child(
            Element::with_name(q("Span"))
                .attr("traceId", format!("{:016x}", s.trace_id))
                .attr("spanId", format!("{:016x}", s.span_id))
                .attr("parentId", format!("{:016x}", s.parent_id))
                .attr("name", &*s.name)
                .attr("service", &*s.service)
                .attr("start", s.virt_start_ns.to_string())
                .attr("end", s.virt_end_ns.to_string()),
        );
    }
    el
}

// ---------------------------------------------------------------------
// Client-side helper
// ---------------------------------------------------------------------

/// A submission's useful outputs.
#[derive(Debug, Clone)]
pub struct SubmitReply {
    /// The job-set resource EPR (query `Status`, `JobStatus`, ...).
    pub jobset: EndpointReference,
    /// The notification topic base for this set.
    pub topic: String,
}

/// Submit a job set to the Scheduler.
pub fn submit(
    net: &InProcNetwork,
    scheduler: &EndpointReference,
    spec: &JobSetSpec,
    client_listener: Option<&EndpointReference>,
    client_fileserver: Option<&str>,
    security_header: Option<Element>,
    plain_credentials: Option<(&str, &str)>,
) -> Result<SubmitReply, SoapFault> {
    let mut body = Element::new(UVACG, "SubmitJobSet").child(spec.to_element());
    if let Some(cl) = client_listener {
        body.push_child(cl.to_element_named(UVACG, "ClientListener"));
    }
    if let Some(fs) = client_fileserver {
        body.push_child(Element::new(UVACG, "ClientFileServer").text(fs));
    }
    if let Some((u, p)) = plain_credentials {
        body.push_child(
            Element::new(UVACG, "Credentials")
                .attr("user", u)
                .attr("password", p),
        );
    }
    let mut env = Envelope::new(body);
    MessageInfo::request(scheduler.clone(), action_uri("Scheduler", "SubmitJobSet"))
        .apply(&mut env);
    if let Some(h) = security_header {
        env.headers.push(h);
    }
    // Root span of the whole submission: every dispatch, transport hop,
    // staging call and broadcast triggered by this call (including the
    // inline ones on the test network) becomes a descendant.
    let tracer = net.metrics_registry().tracer().clone();
    let mut root = tracer
        .is_enabled()
        .then(|| tracer.start_root("client.submit", "Client", net.clock()));
    if let Some(span) = root.as_mut() {
        span.annotate("jobset", spec.name.as_str());
        let c = span.context();
        if c.is_active() {
            TraceContext::new(c.trace_id, c.span_id, c.sampled).stamp(&mut env);
        }
    }
    let resp = net
        .call(&scheduler.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    let jobset = resp
        .body
        .find(UVACG, "JobSetEpr")
        .ok_or_else(|| SoapFault::server("SubmitJobSetResponse missing JobSetEpr"))
        .and_then(|e| {
            EndpointReference::from_element(e).map_err(|e| SoapFault::server(e.to_string()))
        })?;
    let topic = resp
        .body
        .find(UVACG, "Topic")
        .map(|t| t.text_content())
        .unwrap_or_default();
    Ok(SubmitReply { jobset, topic })
}
