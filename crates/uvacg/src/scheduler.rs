//! The Scheduler Service (§4.5) — "the heart of the remote job
//! execution testbed because it coordinates the activities of the
//! other grid components".
//!
//! Its WS-Resources are **job sets**. On submission it generates a
//! unique notification topic for the set, subscribes both itself and
//! the client's listener at the broker, and then drives the run: for
//! every job whose dependencies are satisfied it polls the Node Info
//! Service, picks a machine with the configured policy ("a
//! straightforward algorithm chooses the fastest, most available
//! machine"), and invokes `Run` on that machine's Execution Service.
//! As working-directory EPRs come back it "fills in" the locations of
//! files produced by earlier jobs into the upload requests of later
//! ones; job-exit notifications trigger the next wave of dispatches.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simclock::{Clock, SimTime};
use ws_notification::broker;
use ws_notification::consumer::NotificationListener;
use ws_notification::message::NotificationMessage;
use ws_notification::topics::{TopicExpression, TopicPath};
use wsrf_core::container::{action_uri, Service, ServiceBuilder, ServiceCore};
use wsrf_core::faults;
use wsrf_core::properties::PropertyDoc;
use wsrf_core::store::ResourceStore;
use wsrf_obs::{SpanContext, TraceSnapshot};
use wsrf_security::wsse::UsernameToken;
use wsrf_soap::ns::{UVACG, WSSE};
use wsrf_soap::{BaseFault, EndpointReference, Envelope, MessageInfo, SoapFault, TraceContext};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{Element, QName};

use crate::es::{self, RunRequest};
use crate::jobset::{FileRef, JobSetSpec, JobSpec};
use crate::policy::{MachineOutcome, OutcomeKind, SchedulingPolicy};
use crate::security::GridSecurity;

/// The job-set key reference property (Clark form).
pub fn jobset_key_property() -> String {
    format!("{{{UVACG}}}JobSetKey")
}

/// Well-known resource key of the scheduler's feedback table. The
/// resource carries one `{UVACG}MachinePenalty` property per machine
/// the policy has observed (attributes `machine`, `penalty`, `ewmaNs`,
/// `observations`, `failures`), refreshed after every reported
/// outcome. Empty for feedback-less policies.
pub const FEEDBACK_KEY: &str = "feedback";

fn q(local: &str) -> QName {
    QName::new(UVACG, local)
}

/// Job-set status values exposed through the `Status` property.
pub mod set_status {
    /// Jobs are being dispatched / running.
    pub const RUNNING: &str = "Running";
    /// Every job exited successfully.
    pub const COMPLETED: &str = "Completed";
    /// A job failed; dependents were not dispatched.
    pub const FAILED: &str = "Failed";
}

/// Scheduler deployment configuration.
pub struct SchedulerConfig {
    /// Node Info Service address.
    pub nis_address: String,
    /// The broker all job events flow through.
    pub broker: EndpointReference,
    /// Placement policy.
    pub policy: Arc<dyn SchedulingPolicy>,
    /// Campus PKI + the scheduler's subject; when set, submissions must
    /// carry a UsernameToken encrypted to the scheduler, which is
    /// re-encrypted per chosen Execution Service (subject `es@<machine>`).
    pub security: Option<(Arc<GridSecurity>, String)>,
    /// Resource state backend.
    pub store: Arc<dyn ResourceStore>,
    /// Address for the scheduler's own notification listener.
    pub listener_address: String,
    /// Watchdog: fail a job set if a dispatched job has not finished
    /// within this much virtual time (None = wait forever, like the
    /// paper, which has no fault-tolerance story). An extension for
    /// crashed machines, which never send their exit notification.
    pub job_timeout: Option<std::time::Duration>,
    /// Replicate job-set state to a standby over the notification
    /// fabric (`schedrepl/<key>/...` topics, see [`standby_scheduler`]).
    /// Off by default: the extra one-ways change message counts that
    /// deployments may assert on.
    pub replicate: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Waiting,
    Dispatched,
    Completed,
    Failed,
}

struct JobRun {
    state: JobState,
    machine: Option<String>,
    dir_epr: Option<EndpointReference>,
    job_epr: Option<EndpointReference>,
    exit_code: Option<i32>,
    cpu_used: Option<f64>,
    dispatched_at: Option<SimTime>,
}

struct RunState {
    spec: JobSetSpec,
    topic: String,
    credentials: (String, String),
    client_fileserver: Option<String>,
    jobs: HashMap<String, JobRun>,
    finished: bool,
    submitted_at: SimTime,
    /// Trace context of the submission dispatch: every downstream
    /// message and Figure 3 step mark for this set parents under it.
    trace: Option<TraceContext>,
}

struct SchedInner {
    runs: Mutex<HashMap<String, RunState>>,
    nis_address: String,
    broker: EndpointReference,
    policy: Arc<dyn SchedulingPolicy>,
    security: Option<(Arc<GridSecurity>, String)>,
    job_timeout: Option<std::time::Duration>,
    replicate: bool,
    /// Set by [`Scheduler::crash`]: a crashed scheduler ignores every
    /// event, timer and dispatch opportunity from then on.
    crashed: AtomicBool,
    /// Invoked after every recorded Figure 3 step; the chaos harness
    /// uses it to crash the primary at an exact protocol point.
    step_hook: RwLock<Option<Arc<dyn Fn(u8, &str) + Send + Sync>>>,
}

impl SchedInner {
    fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }
}

/// The deployed Scheduler: its WSRF service plus its notification
/// listener. Cheap to clone (shared handles).
#[derive(Clone)]
pub struct Scheduler {
    /// The WSRF service (resources = job sets).
    pub service: Arc<Service>,
    /// The scheduler's own notification listener.
    pub listener: NotificationListener,
    inner: Arc<SchedInner>,
}

impl Scheduler {
    /// Register the scheduler service on the network (the listener is
    /// registered at construction).
    pub fn register(&self, net: &InProcNetwork) {
        self.service.register(net);
    }

    /// The scheduler service's EPR.
    pub fn epr(&self) -> EndpointReference {
        self.service.core().service_epr()
    }

    /// EPR of the feedback-table resource (its `MachinePenalty`
    /// properties mirror the policy's [`crate::policy::PenaltyRow`]s).
    pub fn feedback_epr(&self) -> EndpointReference {
        self.service.core().epr_for(FEEDBACK_KEY)
    }

    /// Install a hook invoked after every recorded Figure 3 step with
    /// `(step, job)`. The chaos harness uses it to crash the primary at
    /// an exact point in the submission protocol.
    pub fn set_step_hook(&self, f: impl Fn(u8, &str) + Send + Sync + 'static) {
        *self.inner.step_hook.write() = Some(Arc::new(f));
    }

    /// Simulate a process crash: the scheduler stops reacting to
    /// events, timers and dispatch opportunities, and its endpoints
    /// drop off the network (in-flight messages addressed to them
    /// become undeliverable, like a real dead host).
    pub fn crash(&self, net: &InProcNetwork) {
        self.inner.crashed.store(true, Ordering::SeqCst);
        net.unregister(&self.service.core().service_epr().address);
        net.unregister(&self.listener.epr().address);
    }

    /// Has [`Scheduler::crash`] been called?
    pub fn crashed(&self) -> bool {
        self.inner.is_crashed()
    }

    /// Diagnostic: per-job states of a run (None for unknown sets).
    pub fn job_states(&self, jobset_key: &str) -> Option<Vec<(String, String, Option<i32>)>> {
        let runs = self.inner.runs.lock();
        let run = runs.get(jobset_key)?;
        let mut v: Vec<(String, String, Option<i32>)> = run
            .jobs
            .iter()
            .map(|(name, jr)| (name.clone(), format!("{:?}", jr.state), jr.exit_code))
            .collect();
        v.sort();
        Some(v)
    }
}

/// Build and wire the Scheduler Service.
pub fn scheduler_service(
    address: &str,
    cfg: SchedulerConfig,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Scheduler {
    // Feedback policies read observed transport latencies from the
    // deployment's registry.
    cfg.policy.bind_metrics(net.metrics_registry());
    let inner = Arc::new(SchedInner {
        runs: Mutex::new(HashMap::new()),
        nis_address: cfg.nis_address,
        broker: cfg.broker,
        policy: cfg.policy,
        security: cfg.security,
        job_timeout: cfg.job_timeout,
        replicate: cfg.replicate,
        crashed: AtomicBool::new(false),
        step_hook: RwLock::new(None),
    });
    let listener = NotificationListener::register(&net, &cfg.listener_address);

    let submit_inner = inner.clone();
    let submit_listener = listener.clone();
    let trace_registry = net.metrics_registry().clone();
    let service = ServiceBuilder::new("Scheduler", address, cfg.store)
        .key_property(jobset_key_property())
        .static_operation("SubmitJobSet", move |ctx| {
            submit_op(ctx, &submit_inner, &submit_listener)
        })
        // The submission's span tree, queryable like any other resource
        // property: the `TraceId` text property (stamped at submit)
        // selects this set's spans out of the tracer's ring at query
        // time, so the tree keeps growing until the ring rotates.
        .computed_property(q("Trace"), move |doc, _now| {
            let Some(id) = doc
                .text(&q("TraceId"))
                .and_then(|t| u64::from_str_radix(&t, 16).ok())
            else {
                return vec![];
            };
            let snap = trace_registry.tracer().trace(id);
            if snap.is_empty() {
                return vec![];
            }
            vec![trace_to_element(&snap)]
        })
        // The §5 rediscovery path: "how a client might possibly
        // rediscover their resources should their EPRs be lost".
        .static_operation("FindJobSets", |ctx| {
            let name_filter = ctx.body.attr_value("name").map(str::to_string);
            let core = ctx.core.clone();
            let mut keys = core.store.list(&core.name);
            keys.sort_by_key(|k| (k.len(), k.clone()));
            let mut resp = Element::new(UVACG, "FindJobSetsResponse");
            for key in keys {
                if key == FEEDBACK_KEY {
                    continue; // not a job set
                }
                let Ok(doc) = core.store.load(&core.name, &key) else {
                    continue;
                };
                let name = doc.text(&q("Name")).unwrap_or_default();
                if let Some(f) = &name_filter {
                    if &name != f {
                        continue;
                    }
                }
                resp.push_child(
                    Element::new(UVACG, "JobSet")
                        .attr("name", name)
                        .attr("status", doc.text(&q("Status")).unwrap_or_default())
                        .attr("topic", doc.text(&q("Topic")).unwrap_or_default())
                        .child(core.epr_for(&key).to_element_named(UVACG, "JobSetEpr")),
                );
            }
            Ok(resp)
        })
        .build(clock, net);

    // The queryable feedback table: clients introspect placement the
    // same way they introspect job sets — as resource properties.
    let mut doc = PropertyDoc::new();
    doc.set_text(q("Policy"), inner.policy.name());
    let _ = service.core().create_resource_with_key(FEEDBACK_KEY, doc);

    Scheduler {
        service,
        listener,
        inner,
    }
}

/// Report one placement outcome into the policy's feedback channel and
/// refresh the queryable penalty table. Must not be called while
/// `inner.runs` is locked (the policy takes its own locks, and some
/// policies consult the metrics registry).
fn report_outcome(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    machine: &str,
    kind: OutcomeKind,
) {
    // Feed the monitoring plane: job terminations become structured
    // events and per-machine SLO samples (service = machine name,
    // latency = virtual makespan). Dispatch latencies are placement
    // signal only, not completions, so they stay out of the SLO window.
    let now_ns = core.clock.now().as_nanos();
    match kind {
        OutcomeKind::Makespan { virt_ns } => {
            core.metrics
                .slo()
                .service(machine)
                .record(true, virt_ns, now_ns);
            core.metrics.events().emit(
                wsrf_obs::Severity::Info,
                wsrf_obs::EventKind::JobCompleted,
                machine,
                now_ns,
                || format!("job completed in {virt_ns} virtual ns"),
            );
        }
        OutcomeKind::Failure | OutcomeKind::Timeout => {
            core.metrics.slo().service(machine).record(false, 0, now_ns);
            core.metrics.events().emit(
                wsrf_obs::Severity::Warn,
                wsrf_obs::EventKind::JobFailed,
                machine,
                now_ns,
                || {
                    if matches!(kind, OutcomeKind::Timeout) {
                        "job timed out on machine".to_string()
                    } else {
                        "job failed on machine".to_string()
                    }
                },
            );
        }
        OutcomeKind::Dispatch { .. } => {}
    }
    inner.policy.observe(&MachineOutcome {
        machine: machine.to_string(),
        kind,
    });
    let rows = inner.policy.penalties();
    if let Ok(mut doc) = core.store.load(&core.name, FEEDBACK_KEY) {
        let els = rows
            .iter()
            .map(|r| {
                Element::with_name(q("MachinePenalty"))
                    .attr("machine", &r.machine)
                    .attr("penalty", format!("{:.4}", r.penalty))
                    .attr("ewmaNs", r.ewma_ns.to_string())
                    .attr("observations", r.observations.to_string())
                    .attr("failures", format!("{:.4}", r.failures))
            })
            .collect();
        doc.update(q("MachinePenalty"), els);
        let _ = core.store.save(&core.name, FEEDBACK_KEY, &doc);
    }
}

fn submit_op(
    ctx: &mut wsrf_core::container::Ctx<'_>,
    inner: &Arc<SchedInner>,
    listener: &NotificationListener,
) -> Result<Element, BaseFault> {
    let trace = ctx.trace;
    // Step 1: decode and validate the description.
    let set_el = ctx
        .body
        .find(UVACG, "JobSet")
        .ok_or_else(|| faults::bad_request("SubmitJobSet requires JobSet"))?;
    let spec = JobSetSpec::from_element(set_el)
        .ok_or_else(|| faults::bad_request("malformed JobSet description"))?;
    spec.validate()
        .map_err(|e| BaseFault::new("uvacg:InvalidJobSet", e.to_string()))?;

    // Credentials travel encrypted to the scheduler (or plaintext in
    // insecure deployments).
    let credentials = match &inner.security {
        Some((sec, subject)) => {
            let header = ctx.header(WSSE, "Security").ok_or_else(|| {
                BaseFault::new("uvacg:MissingCredentials", "no WS-Security header")
            })?;
            let tok = sec.decrypt_token(header, subject).map_err(|e| {
                BaseFault::new("uvacg:BadCredentials", format!("cannot decrypt: {e}"))
            })?;
            (tok.username, tok.password)
        }
        None => {
            let el = ctx.body.find(UVACG, "Credentials").ok_or_else(|| {
                BaseFault::new("uvacg:MissingCredentials", "no Credentials element")
            })?;
            (
                el.attr_value("user").unwrap_or_default().to_string(),
                el.attr_value("password").unwrap_or_default().to_string(),
            )
        }
    };

    let client_listener = ctx
        .body
        .find(UVACG, "ClientListener")
        .map(EndpointReference::from_element)
        .transpose()
        .map_err(|e| faults::bad_request(&format!("bad ClientListener: {e}")))?;
    let client_fileserver = ctx
        .body
        .find(UVACG, "ClientFileServer")
        .map(|e| e.text_content());

    // Create the job-set resource and its topic.
    let mut doc = PropertyDoc::new();
    doc.set_text(q("Name"), &spec.name);
    doc.set_text(q("Status"), set_status::RUNNING);
    let set_epr = ctx.core.create_resource(doc)?;
    let key = faults::require_key(&set_epr, "job-set")?;
    let topic = format!("jobset-{key}");
    {
        let core = ctx.core.clone();
        let mut doc = core
            .store
            .load(&core.name, &key)
            .map_err(faults::from_store)?;
        doc.set_text(q("Topic"), &topic);
        if let Some(tc) = &trace {
            doc.set_text(q("TraceId"), format!("{:016x}", tc.trace_id));
        }
        for j in &spec.jobs {
            doc.insert(
                q("JobStatus"),
                Element::with_name(q("JobStatus"))
                    .attr("job", &j.name)
                    .text("Waiting"),
            );
        }
        core.store
            .save(&core.name, &key, &doc)
            .map_err(faults::from_store)?;
    }

    // "The SS then invokes the Subscribe() method on the Notification
    // Broker to subscribe both itself and the client's notification
    // listener."
    let expr = TopicExpression::full(&format!("{topic}//"));
    // Client first: the broker delivers in subscription order, and the
    // scheduler's own handling of an exit event dispatches follow-on
    // jobs (and thus further events) inline on the test network.
    if let Some(cl) = &client_listener {
        broker::subscribe(&ctx.core.net, &inner.broker, cl, &expr, None)
            .map_err(|e| faults::storage(&format!("client subscribe failed: {e}")))?;
    }
    broker::subscribe(&ctx.core.net, &inner.broker, &listener.epr(), &expr, None)
        .map_err(|e| faults::storage(&format!("broker subscribe failed: {e}")))?;

    // Record the run.
    let submitted_at = ctx.core.clock.now();
    // Built before the spec moves into the run state; published after,
    // so the standby's view is never ahead of the primary's.
    let repl = inner.replicate.then(|| {
        let mut el = Element::new(UVACG, "ReplSubmit")
            .attr("user", &credentials.0)
            .attr("password", &credentials.1)
            .attr("topic", &topic)
            .attr("t", submitted_at.as_nanos().to_string())
            .child(spec.to_element());
        if let Some(fs) = &client_fileserver {
            el = el.attr("fileserver", fs);
        }
        el
    });
    {
        let mut runs = inner.runs.lock();
        runs.insert(
            key.clone(),
            RunState {
                jobs: spec
                    .jobs
                    .iter()
                    .map(|j| {
                        (
                            j.name.clone(),
                            JobRun {
                                state: JobState::Waiting,
                                machine: None,
                                dir_epr: None,
                                job_epr: None,
                                exit_code: None,
                                cpu_used: None,
                                dispatched_at: None,
                            },
                        )
                    })
                    .collect(),
                spec,
                topic: topic.clone(),
                credentials,
                client_fileserver,
                finished: false,
                submitted_at,
                trace,
            },
        );
    }
    if let Some(el) = repl {
        publish(
            ctx.core,
            &inner.broker,
            &repl_topic(&key, "submit"),
            el,
            None,
        );
    }

    // Figure 3 step 1: the submission itself.
    record_steps(
        ctx.core,
        inner,
        &key,
        "*",
        &[(1, "submit")],
        ctx.core.clock.now(),
    );

    // Hook this job set's events.
    let core = ctx.core.clone();
    let inner2 = inner.clone();
    let key2 = key.clone();
    listener.on_topic(expr, move |msg| {
        on_event(&core, &inner2, &key2, msg);
    });

    // Dispatch the first wave.
    dispatch_ready(ctx.core, inner, &key);

    Ok(Element::new(UVACG, "SubmitJobSetResponse")
        .child(set_epr.to_element_named(UVACG, "JobSetEpr"))
        .child(Element::new(UVACG, "Topic").text(topic)))
}

/// Record Figure 3 steps for job set `key` at virtual time `at`: each
/// becomes a `StepMetric` resource property on the job-set resource
/// (`step`, `name`, `job`, `t` = virtual ns) and a
/// `scheduler.step.<NN>_<name>_ns` histogram sample of the elapsed
/// virtual time since submission. `job` is `"*"` for set-level steps.
///
/// Must not be called while `inner.runs` is locked.
fn record_steps(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    key: &str,
    job: &str,
    steps: &[(u8, &str)],
    at: SimTime,
) {
    let (submitted, trace) = {
        let runs = inner.runs.lock();
        match runs.get(key) {
            Some(r) => (r.submitted_at, r.trace),
            None => return,
        }
    };
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        for (step, name) in steps {
            doc.insert(
                q("StepMetric"),
                Element::with_name(q("StepMetric"))
                    .attr("step", step.to_string())
                    .attr("name", *name)
                    .attr("job", job)
                    .attr("t", at.as_nanos().to_string()),
            );
        }
        let _ = core.store.save(&core.name, key, &doc);
    }
    if core.metrics.is_enabled() {
        let elapsed = at.since(submitted).as_nanos() as u64;
        for (step, name) in steps {
            core.metrics
                .histogram(&format!("scheduler.step.{step:02}_{name}_ns"))
                .record(elapsed);
        }
    }
    // Each step also lands in the span tree as an instant span under
    // the submission's dispatch span.
    if let Some(tc) = trace {
        let tracer = core.metrics.tracer();
        if tracer.is_enabled() {
            let parent = SpanContext {
                trace_id: tc.trace_id,
                span_id: tc.span_id,
                sampled: tc.sampled,
            };
            for (step, name) in steps {
                tracer.point(
                    parent,
                    format!("step.{step:02}_{name}"),
                    "Scheduler",
                    at.as_nanos(),
                    &[("job", job)],
                );
            }
        }
    }
    // Chaos hook last: a hook that crashes the scheduler still leaves
    // this step durably recorded, which is exactly the kill-point
    // semantics the failover tests need ("crashed right after step N").
    let hook = inner.step_hook.read().clone();
    if let Some(hook) = hook {
        for (step, _) in steps {
            hook(*step, job);
        }
    }
}

/// Replication topic for job set `key`: `schedrepl/<key>/<kind>`.
fn repl_topic(key: &str, kind: &str) -> TopicPath {
    TopicPath::parse("schedrepl").child(key).child(kind)
}

/// Handle a notification for job set `key`.
fn on_event(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    key: &str,
    msg: &NotificationMessage,
) {
    if inner.is_crashed() {
        return;
    }
    // Topics look like `jobset-K/job/<name>/<event>`.
    let segs = &msg.topic.0;
    if segs.len() != 4 || segs[1] != "job" {
        return;
    }
    let job_name = segs[2].clone();
    let event = segs[3].as_str();
    match event {
        "dir" => {
            if let Ok(epr) = EndpointReference::from_element(&msg.payload) {
                {
                    let mut runs = inner.runs.lock();
                    if let Some(run) = runs.get_mut(key) {
                        if let Some(jr) = run.jobs.get_mut(&job_name) {
                            jr.dir_epr = Some(epr.clone());
                        }
                    }
                }
                // Persist into the job-set resource so clients that
                // lost their event history (the §5 durability concern)
                // can rediscover output locations.
                if let Ok(mut doc) = core.store.load(&core.name, key) {
                    doc.remove_value(&q("JobDirectory"), |e| {
                        e.attr_value("job") == Some(&job_name)
                    });
                    doc.insert(
                        q("JobDirectory"),
                        epr.to_element_named(UVACG, "JobDirectory")
                            .attr("job", &job_name),
                    );
                    let _ = core.store.save(&core.name, key, &doc);
                }
                // Figure 3 step 4: the working directory exists on the
                // chosen machine's FSS.
                record_steps(
                    core,
                    inner,
                    key,
                    &job_name,
                    &[(4, "workdir")],
                    core.clock.now(),
                );
            }
        }
        "started" => {
            // By the time the ES broadcasts "started", staging has
            // finished (client files over WSE-TCP, grid files via FSS
            // Read), the FSS sent its one-way upload-complete, the
            // process was spawned, and the job EPR is on the wire —
            // Figure 3 steps 5-9, observed here as one instant.
            record_steps(
                core,
                inner,
                key,
                &job_name,
                &[
                    (5, "client_stage"),
                    (6, "grid_stage"),
                    (7, "upload_complete"),
                    (8, "spawn"),
                    (9, "epr_broadcast"),
                ],
                core.clock.now(),
            );
        }
        "exit" => {
            let code: i32 = msg
                .payload
                .attr_value("code")
                .and_then(|c| c.parse().ok())
                .unwrap_or(-1);
            let cpu_used: Option<f64> = msg.payload.attr_value("cpu").and_then(|c| c.parse().ok());
            // Figure 3 step 10: the exit event reached us through the
            // broker re-broadcast.
            record_steps(
                core,
                inner,
                key,
                &job_name,
                &[(10, "exit_broadcast")],
                core.clock.now(),
            );
            if inner.is_crashed() {
                return; // killed right after step 10: the exit is lost here
            }
            apply_exit(core, inner, key, &job_name, code, cpu_used);
        }
        "failed" => {
            let machine = {
                let mut runs = inner.runs.lock();
                let mut machine = None;
                if let Some(run) = runs.get_mut(key) {
                    if let Some(jr) = run.jobs.get_mut(&job_name) {
                        jr.state = JobState::Failed;
                        machine = jr.machine.clone();
                        update_job_status_property(core, key, &job_name, jr);
                    }
                }
                machine
            };
            if let Some(machine) = machine {
                report_outcome(core, inner, &machine, OutcomeKind::Failure);
            }
            fail_job_set(
                core,
                inner,
                key,
                &job_name,
                BaseFault::new(
                    "uvacg:JobFailed",
                    format!("job '{job_name}' failed: {}", msg.payload.text_content()),
                ),
            );
        }
        _ => {}
    }
}

/// Apply a job's exit, observed either through the broker broadcast or
/// by polling the job resource during failover reconciliation.
/// Idempotent: a job already in a terminal state is left untouched, so
/// a re-observed exit can never double-count or re-trigger dispatches.
///
/// Must not be called while `inner.runs` is locked.
fn apply_exit(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    key: &str,
    job_name: &str,
    code: i32,
    cpu_used: Option<f64>,
) {
    let (all_done, outcome) = {
        let mut runs = inner.runs.lock();
        let Some(run) = runs.get_mut(key) else { return };
        let Some(jr) = run.jobs.get_mut(job_name) else {
            return;
        };
        if matches!(jr.state, JobState::Completed | JobState::Failed) {
            return; // already accounted for
        }
        jr.exit_code = Some(code);
        jr.cpu_used = cpu_used;
        jr.state = if code == 0 {
            JobState::Completed
        } else {
            JobState::Failed
        };
        update_job_status_property(core, key, job_name, jr);
        // Feedback: a clean exit reports the observed per-job
        // makespan on that machine; a nonzero exit is a
        // failure mark against it.
        let outcome = jr.machine.clone().map(|machine| {
            let kind = if code == 0 {
                OutcomeKind::Makespan {
                    virt_ns: jr
                        .dispatched_at
                        .map_or(0, |t| core.clock.now().since(t).as_nanos() as u64),
                }
            } else {
                OutcomeKind::Failure
            };
            (machine, kind)
        });
        let all_done = if code != 0 {
            None // handled below as failure
        } else {
            Some(run.jobs.values().all(|j| j.state == JobState::Completed))
        };
        (all_done, outcome)
    };
    if let Some((machine, kind)) = outcome {
        report_outcome(core, inner, &machine, kind);
    }
    match all_done {
        None => {
            fail_job_set(
                core,
                inner,
                key,
                job_name,
                BaseFault::new(
                    "uvacg:JobFailed",
                    format!("job '{job_name}' exited with code {code}"),
                ),
            );
        }
        Some(true) => complete_job_set(core, inner, key),
        Some(false) => dispatch_ready(core, inner, key),
    }
}

/// Dispatch every job whose dependencies are all complete.
fn dispatch_ready(core: &Arc<ServiceCore>, inner: &Arc<SchedInner>, key: &str) {
    loop {
        if inner.is_crashed() {
            return;
        }
        // Pick one ready job under the lock; dispatch outside it (the
        // Run call triggers notifications that re-enter this module).
        let next: Option<(String, RunRequest, String, String, SimTime)> = {
            let mut runs = inner.runs.lock();
            let Some(run) = runs.get_mut(key) else { return };
            if run.finished {
                return;
            }
            let ready = run.spec.jobs.iter().find(|j| {
                run.jobs[&j.name].state == JobState::Waiting
                    && j.dependencies()
                        .iter()
                        .all(|d| run.jobs[*d].state == JobState::Completed)
            });
            let Some(job) = ready else { return };
            let job_name = job.name.clone();

            // Step 2: poll the NIS. (Inside the lock: a consistent
            // pick beats a stale one, and the NIS call does not
            // re-enter the scheduler.)
            let t_nis = core.clock.now();
            let nodes = match crate::nis::snapshot(&core.net, &inner.nis_address) {
                Ok(n) if !n.is_empty() => n,
                _ => {
                    drop(runs);
                    fail_job_set(
                        core,
                        inner,
                        key,
                        &job_name,
                        BaseFault::new("uvacg:NoNodes", "no machines available for scheduling"),
                    );
                    return;
                }
            };
            let Some(pick) = inner.policy.select(&nodes) else {
                drop(runs);
                fail_job_set(
                    core,
                    inner,
                    key,
                    &job_name,
                    BaseFault::new("uvacg:NoNodes", "policy rejected all machines"),
                );
                return;
            };
            let node = nodes.into_iter().nth(pick).expect("policy picked in range");

            let built = build_run_request(run, job, &node.machine, &inner.security);
            match built {
                Ok(req) => {
                    let jr = run.jobs.get_mut(&job_name).unwrap();
                    jr.state = JobState::Dispatched;
                    jr.machine = Some(node.machine.clone());
                    jr.dispatched_at = Some(core.clock.now());
                    update_job_status_property(core, key, &job_name, jr);
                    Some((job_name, req, node.execution, node.machine, t_nis))
                }
                Err(fault) => {
                    drop(runs);
                    fail_job_set(core, inner, key, &job_name, fault);
                    return;
                }
            }
        };

        let Some((job_name, req, es_address, machine, t_nis)) = next else {
            return;
        };

        // A standby learns the placement intent before the Run leaves:
        // if we die between here and the dispatch, it re-issues the Run
        // to the same machine, where the ES deduplicates it.
        if inner.replicate {
            publish(
                core,
                &inner.broker,
                &repl_topic(key, "intent"),
                Element::new(UVACG, "ReplIntent")
                    .attr("job", &job_name)
                    .attr("machine", &machine),
                None,
            );
        }

        // Figure 3 step 2: the NIS was polled for this job's placement.
        record_steps(core, inner, key, &job_name, &[(2, "nis_poll")], t_nis);
        if inner.is_crashed() {
            return; // killed after step 2: the Run is never issued
        }

        // Step 3: "the ES on that machine is sent a request to run a
        // job". Notifications triggered inline during this call may
        // already complete the job (zero-work programs) or even the
        // whole set; state transitions happened in on_event.
        let es_run_span = core.metrics.timer("scheduler.es_run").start(&core.clock);
        let t_run = core.clock.now();
        match es::run(&core.net, &es_address, &req) {
            Ok(reply) => {
                es_run_span.finish();
                if inner.replicate {
                    publish(
                        core,
                        &inner.broker,
                        &repl_topic(key, "dispatched"),
                        Element::new(UVACG, "ReplDispatched")
                            .attr("job", &job_name)
                            .child(reply.job.to_element_named(UVACG, "JobEpr"))
                            .child(reply.workdir.to_element_named(UVACG, "DirEpr")),
                        None,
                    );
                }
                // Feedback: the observed virtual dispatch latency for
                // this machine (zero on a manual clock, which the
                // policy discards as signal-free).
                report_outcome(
                    core,
                    inner,
                    &machine,
                    OutcomeKind::Dispatch {
                        virt_ns: core.clock.now().since(t_run).as_nanos() as u64,
                    },
                );
                record_steps(
                    core,
                    inner,
                    key,
                    &job_name,
                    &[(3, "es_run")],
                    core.clock.now(),
                );
                if inner.is_crashed() {
                    return; // killed after step 3: the reply is lost here
                }
                {
                    let mut runs = inner.runs.lock();
                    if let Some(run) = runs.get_mut(key) {
                        if let Some(jr) = run.jobs.get_mut(&job_name) {
                            jr.job_epr = Some(reply.job);
                            if jr.dir_epr.is_none() {
                                jr.dir_epr = Some(reply.workdir);
                            }
                        }
                    }
                }
                arm_watchdog(core, inner, key, &job_name, &machine);
            }
            Err(fault) => {
                let wrapped = BaseFault::new(
                    "uvacg:DispatchFailed",
                    format!("cannot run job '{job_name}' on {es_address}"),
                )
                .caused_by(fault.detail.unwrap_or_else(|| {
                    BaseFault::new("uvacg:TransportFault", fault.reason.clone())
                }));
                fail_job_set(core, inner, key, &job_name, wrapped);
                return;
            }
        }
    }
}

/// Build the Run request for `job` on `machine`, resolving file
/// references — the "filling in" of EPRs the paper describes. Shared
/// by the normal dispatch path and failover reconciliation (which
/// re-issues uncertain dispatches to their recorded machine).
fn build_run_request(
    run: &RunState,
    job: &JobSpec,
    machine: &str,
    security: &Option<(Arc<GridSecurity>, String)>,
) -> Result<RunRequest, BaseFault> {
    let resolve = |r: &FileRef| -> Result<(EndpointReference, String), BaseFault> {
        match r {
            FileRef::Local(path) => {
                let fs = run.client_fileserver.as_ref().ok_or_else(|| {
                    BaseFault::new(
                        "uvacg:NoFileServer",
                        "job set uses local:// but no client file server was given",
                    )
                })?;
                Ok((EndpointReference::service(fs), path.clone()))
            }
            FileRef::JobOutput { job, file } => {
                let dep = &run.jobs[job];
                let dir = dep.dir_epr.clone().ok_or_else(|| {
                    BaseFault::new(
                        "uvacg:MissingWorkdir",
                        format!("no working directory recorded for job '{job}'"),
                    )
                })?;
                Ok((dir, file.clone()))
            }
        }
    };
    let (exe_src, exe_name) = resolve(&job.executable)?;
    let exe_as = basename(&exe_name);
    let mut inputs = Vec::new();
    for (src, as_name) in &job.inputs {
        let (epr, name) = resolve(src)?;
        inputs.push((epr, name, as_name.clone()));
    }
    // Credentials for the chosen machine.
    let (security_header, plain_credentials) = match security {
        Some((sec, _)) => {
            let subject = format!("es@{machine}");
            let tok = UsernameToken::new(&run.credentials.0, &run.credentials.1);
            let header = sec.encrypt_token(&tok, &subject).ok_or_else(|| {
                BaseFault::new(
                    "uvacg:NoCertificate",
                    format!("no certificate enrolled for '{subject}'"),
                )
            })?;
            (Some(header), None)
        }
        None => (None, Some(run.credentials.clone())),
    };
    Ok(RunRequest {
        job_name: job.name.clone(),
        executable: (exe_src, exe_name, exe_as),
        inputs,
        topic: run.topic.clone(),
        security_header,
        plain_credentials,
        trace: run.trace,
    })
}

/// Watchdog: a machine that dies mid-run never sends its exit
/// notification; without a timeout the set would wait forever.
fn arm_watchdog(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    key: &str,
    job_name: &str,
    machine: &str,
) {
    let Some(timeout) = inner.job_timeout else {
        return;
    };
    let core2 = core.clone();
    let inner2 = inner.clone();
    let key2 = key.to_string();
    let name2 = job_name.to_string();
    let machine2 = machine.to_string();
    core.clock.schedule(timeout, move |_| {
        if inner2.is_crashed() {
            return; // a dead scheduler's timers die with it
        }
        let timed_out = {
            let runs = inner2.runs.lock();
            runs.get(&key2)
                .and_then(|r| r.jobs.get(&name2))
                .is_some_and(|jr| jr.state == JobState::Dispatched)
        };
        if timed_out {
            report_outcome(&core2, &inner2, &machine2, OutcomeKind::Timeout);
            fail_job_set(
                &core2,
                &inner2,
                &key2,
                &name2,
                BaseFault::new(
                    "uvacg:JobTimeout",
                    format!(
                        "job '{name2}' did not finish within {} virtual seconds",
                        timeout.as_secs_f64()
                    ),
                ),
            );
        }
    });
}

fn basename(path: &str) -> String {
    path.rsplit(['/', '\\']).next().unwrap_or(path).to_string()
}

/// Mirror a job's state into the job-set resource properties.
fn update_job_status_property(core: &Arc<ServiceCore>, key: &str, job: &str, jr: &JobRun) {
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        let mut el = Element::with_name(q("JobStatus"))
            .attr("job", job)
            .text(format!("{:?}", jr.state));
        if let Some(m) = &jr.machine {
            el = el.attr("machine", m);
        }
        if let Some(c) = jr.exit_code {
            el = el.attr("exitCode", c.to_string());
        }
        if let Some(cpu) = jr.cpu_used {
            el = el.attr("cpu", format!("{cpu:.6}"));
        }
        doc.remove_value(&q("JobStatus"), |e| e.attr_value("job") == Some(job));
        doc.insert(q("JobStatus"), el);
        let _ = core.store.save(&core.name, key, &doc);
    }
}

fn complete_job_set(core: &Arc<ServiceCore>, inner: &Arc<SchedInner>, key: &str) {
    if inner.is_crashed() {
        return;
    }
    let (topic, submitted_at, trace) = {
        let mut runs = inner.runs.lock();
        let Some(run) = runs.get_mut(key) else { return };
        if run.finished {
            return;
        }
        run.finished = true;
        (run.topic.clone(), run.submitted_at, run.trace)
    };
    let makespan = core.clock.now().since(submitted_at);
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        doc.set_text(q("Status"), set_status::COMPLETED);
        doc.set_f64(q("Makespan"), makespan.as_secs_f64());
        let _ = core.store.save(&core.name, key, &doc);
    }
    core.metrics
        .histogram("scheduler.makespan_ns")
        .record(makespan.as_nanos() as u64);
    publish(
        core,
        &inner.broker,
        &TopicPath::parse(&topic).child("completed"),
        Element::new(UVACG, "JobSetCompleted"),
        trace.as_ref(),
    );
}

fn fail_job_set(
    core: &Arc<ServiceCore>,
    inner: &Arc<SchedInner>,
    key: &str,
    job: &str,
    cause: BaseFault,
) {
    if inner.is_crashed() {
        return;
    }
    let (topic, submitted_at, trace) = {
        let mut runs = inner.runs.lock();
        let Some(run) = runs.get_mut(key) else { return };
        if run.finished {
            return;
        }
        run.finished = true;
        (run.topic.clone(), run.submitted_at, run.trace)
    };
    let makespan = core.clock.now().since(submitted_at);
    let fault = BaseFault::new(
        "uvacg:JobSetFailed",
        format!("job set failed at job '{job}'"),
    )
    .at(core.clock.now().as_secs_f64())
    .from_originator(core.service_epr())
    .caused_by(cause);
    if let Ok(mut doc) = core.store.load(&core.name, key) {
        doc.set_text(q("Status"), set_status::FAILED);
        doc.set_f64(q("Makespan"), makespan.as_secs_f64());
        doc.update(
            q("Fault"),
            vec![Element::with_name(q("Fault")).child(fault.to_element())],
        );
        let _ = core.store.save(&core.name, key, &doc);
    }
    core.metrics
        .histogram("scheduler.makespan_ns")
        .record(makespan.as_nanos() as u64);
    publish(
        core,
        &inner.broker,
        &TopicPath::parse(&topic).child("failed"),
        Element::new(UVACG, "JobSetFailed")
            .attr("job", job)
            .child(fault.to_element()),
        trace.as_ref(),
    );
}

fn publish(
    core: &Arc<ServiceCore>,
    broker_epr: &EndpointReference,
    topic: &TopicPath,
    payload: Element,
    trace: Option<&TraceContext>,
) {
    let msg = NotificationMessage::new(topic.clone(), payload).from_producer(core.service_epr());
    let mut env = msg.to_envelope(broker_epr);
    if let Some(tc) = trace {
        tc.stamp(&mut env);
    }
    let _ = core.net.send_oneway(&broker_epr.address, env);
}

/// Serialize a span tree as a `{UVACG}Trace` resource-property element:
/// one `<Span>` child per retained span, parent links by id.
fn trace_to_element(snap: &TraceSnapshot) -> Element {
    let mut el = Element::with_name(q("Trace")).attr("spans", snap.len().to_string());
    for s in &snap.spans {
        el.push_child(
            Element::with_name(q("Span"))
                .attr("traceId", format!("{:016x}", s.trace_id))
                .attr("spanId", format!("{:016x}", s.span_id))
                .attr("parentId", format!("{:016x}", s.parent_id))
                .attr("name", &*s.name)
                .attr("service", &*s.service)
                .attr("start", s.virt_start_ns.to_string())
                .attr("end", s.virt_end_ns.to_string()),
        );
    }
    el
}

// ---------------------------------------------------------------------
// Standby + failover
// ---------------------------------------------------------------------

/// A standby's view of one job, reconstructed purely from the
/// primary's replication stream plus the job set's own event topics.
struct ShadowJob {
    state: JobState,
    /// An `intent` was replicated but no `dispatched` followed: the
    /// primary may or may not have issued the Run before dying. Safe
    /// either way — re-issuing is deduplicated at the ES.
    uncertain: bool,
    machine: Option<String>,
    dir_epr: Option<EndpointReference>,
    job_epr: Option<EndpointReference>,
    exit_code: Option<i32>,
    cpu_used: Option<f64>,
}

struct ShadowRun {
    spec: JobSetSpec,
    topic: String,
    credentials: (String, String),
    client_fileserver: Option<String>,
    jobs: HashMap<String, ShadowJob>,
    finished: bool,
    submitted_at: SimTime,
}

/// A warm standby scheduler. It follows a replicating primary's
/// `schedrepl/<key>/...` stream (and each shadowed set's own event
/// topic, so exits it witnesses first-hand never depend on the primary
/// surviving long enough to relay them) and can be promoted into a
/// full [`Scheduler`] once the primary crashes.
pub struct Standby {
    /// The standby's notification listener. Promotion re-registers a
    /// scheduler listener at this same address, so every broker
    /// subscription the standby accumulated transfers to the promoted
    /// scheduler without a single re-subscribe — and therefore without
    /// duplicate deliveries.
    pub listener: NotificationListener,
    shadows: Arc<Mutex<HashMap<String, ShadowRun>>>,
    cfg: SchedulerConfig,
    clock: Clock,
    net: Arc<InProcNetwork>,
}

/// Deploy a standby that shadows a replicating primary.
///
/// `cfg.listener_address` is the standby's own listener address; the
/// remaining fields describe the deployment it will take over and
/// should match the primary's — except `store`, which may be the
/// primary's shared store or a [`wsrf_core::DurableStore`] recovered
/// from its write-ahead log.
pub fn standby_scheduler(cfg: SchedulerConfig, clock: Clock, net: Arc<InProcNetwork>) -> Standby {
    let listener = NotificationListener::register(&net, &cfg.listener_address);
    broker::subscribe(
        &net,
        &cfg.broker,
        &listener.epr(),
        &TopicExpression::full("schedrepl//"),
        None,
    )
    .expect("standby subscription cannot fail on a live broker");
    let shadows: Arc<Mutex<HashMap<String, ShadowRun>>> = Arc::new(Mutex::new(HashMap::new()));

    let sh = shadows.clone();
    let net2 = net.clone();
    let broker_epr = cfg.broker.clone();
    let listener2 = listener.clone();
    listener.on_topic(TopicExpression::full("schedrepl//"), move |msg| {
        shadow_event(&sh, &net2, &broker_epr, &listener2, msg);
    });

    Standby {
        listener,
        shadows,
        cfg,
        clock,
        net,
    }
}

/// Apply one replication event to the shadow table.
fn shadow_event(
    shadows: &Arc<Mutex<HashMap<String, ShadowRun>>>,
    net: &Arc<InProcNetwork>,
    broker_epr: &EndpointReference,
    listener: &NotificationListener,
    msg: &NotificationMessage,
) {
    let segs = &msg.topic.0;
    if segs.len() != 3 || segs[0] != "schedrepl" {
        return;
    }
    let key = segs[1].clone();
    match segs[2].as_str() {
        "submit" => {
            let Some(spec_el) = msg.payload.find(UVACG, "JobSet") else {
                return;
            };
            let Some(spec) = JobSetSpec::from_element(spec_el) else {
                return;
            };
            let topic = msg
                .payload
                .attr_value("topic")
                .unwrap_or_default()
                .to_string();
            let submitted_at = SimTime(
                msg.payload
                    .attr_value("t")
                    .and_then(|t| t.parse().ok())
                    .unwrap_or(0),
            );
            let jobs = spec
                .jobs
                .iter()
                .map(|j| {
                    (
                        j.name.clone(),
                        ShadowJob {
                            state: JobState::Waiting,
                            uncertain: false,
                            machine: None,
                            dir_epr: None,
                            job_epr: None,
                            exit_code: None,
                            cpu_used: None,
                        },
                    )
                })
                .collect();
            let run = ShadowRun {
                topic: topic.clone(),
                credentials: (
                    msg.payload
                        .attr_value("user")
                        .unwrap_or_default()
                        .to_string(),
                    msg.payload
                        .attr_value("password")
                        .unwrap_or_default()
                        .to_string(),
                ),
                client_fileserver: msg.payload.attr_value("fileserver").map(str::to_string),
                jobs,
                finished: false,
                submitted_at,
                spec,
            };
            shadows.lock().insert(key.clone(), run);
            // Follow the set's own event stream too: a dir or exit the
            // standby saw with its own eyes survives any primary crash.
            let expr = TopicExpression::full(&format!("{topic}//"));
            let _ = broker::subscribe(net, broker_epr, &listener.epr(), &expr, None);
            let sh = shadows.clone();
            listener.on_topic(expr, move |m| shadow_jobset_event(&sh, &key, m));
        }
        "intent" => {
            let mut shadows = shadows.lock();
            let Some(run) = shadows.get_mut(&key) else {
                return;
            };
            let Some(job) = msg.payload.attr_value("job") else {
                return;
            };
            if let Some(jr) = run.jobs.get_mut(job) {
                if jr.state == JobState::Waiting {
                    jr.uncertain = true;
                    jr.machine = msg.payload.attr_value("machine").map(str::to_string);
                }
            }
        }
        "dispatched" => {
            let mut shadows = shadows.lock();
            let Some(run) = shadows.get_mut(&key) else {
                return;
            };
            let Some(job) = msg.payload.attr_value("job") else {
                return;
            };
            if let Some(jr) = run.jobs.get_mut(job) {
                jr.uncertain = false;
                if jr.state == JobState::Waiting {
                    jr.state = JobState::Dispatched;
                }
                if let Some(e) = msg.payload.find(UVACG, "JobEpr") {
                    if let Ok(epr) = EndpointReference::from_element(e) {
                        jr.job_epr = Some(epr);
                    }
                }
                if jr.dir_epr.is_none() {
                    if let Some(e) = msg.payload.find(UVACG, "DirEpr") {
                        if let Ok(epr) = EndpointReference::from_element(e) {
                            jr.dir_epr = Some(epr);
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

/// Maintain a shadow from the job set's own notification topic.
fn shadow_jobset_event(
    shadows: &Arc<Mutex<HashMap<String, ShadowRun>>>,
    key: &str,
    msg: &NotificationMessage,
) {
    let segs = &msg.topic.0;
    let mut shadows = shadows.lock();
    let Some(run) = shadows.get_mut(key) else {
        return;
    };
    if segs.len() == 2 && (segs[1] == "completed" || segs[1] == "failed") {
        // The primary finished the set before dying: nothing to adopt.
        run.finished = true;
        return;
    }
    if segs.len() != 4 || segs[1] != "job" {
        return;
    }
    let Some(jr) = run.jobs.get_mut(segs[2].as_str()) else {
        return;
    };
    match segs[3].as_str() {
        "dir" => {
            if let Ok(epr) = EndpointReference::from_element(&msg.payload) {
                jr.dir_epr = Some(epr);
            }
        }
        "started" => {
            // Staging finished and the process spawned: the Run
            // definitely reached the machine.
            jr.uncertain = false;
            if jr.state == JobState::Waiting {
                jr.state = JobState::Dispatched;
            }
        }
        "exit" => {
            if matches!(jr.state, JobState::Completed | JobState::Failed) {
                return;
            }
            let code: i32 = msg
                .payload
                .attr_value("code")
                .and_then(|c| c.parse().ok())
                .unwrap_or(-1);
            jr.exit_code = Some(code);
            jr.cpu_used = msg.payload.attr_value("cpu").and_then(|c| c.parse().ok());
            jr.uncertain = false;
            jr.state = if code == 0 {
                JobState::Completed
            } else {
                JobState::Failed
            };
            if let Some(e) = msg.payload.find(UVACG, "JobEpr") {
                if let Ok(epr) = EndpointReference::from_element(e) {
                    jr.job_epr = Some(epr);
                }
            }
        }
        "failed" => {
            jr.state = JobState::Failed;
        }
        _ => {}
    }
}

impl Standby {
    /// Number of job sets currently shadowed (diagnostics).
    pub fn shadow_count(&self) -> usize {
        self.shadows.lock().len()
    }

    /// Promote this standby into the active Scheduler at `address`
    /// (normally the crashed primary's address, so lost-EPR clients
    /// rediscover their sets through the same `FindJobSets` endpoint).
    ///
    /// Adoption then reconciliation: uncertain dispatches are re-issued
    /// to their recorded machine (idempotent at the ES), in-flight jobs
    /// are polled for exits that raced the crash, watchdogs are
    /// re-armed, and anything ready — or everything, if the set
    /// already finished — is driven to its conclusion exactly once.
    pub fn promote(self, address: &str) -> Scheduler {
        let Standby {
            listener: _standby_listener,
            shadows,
            cfg,
            clock,
            net,
        } = self;
        let scheduler = scheduler_service(address, cfg, clock, net.clone());
        scheduler.register(&net);
        let core = scheduler.service.core().clone();
        let inner = scheduler.inner.clone();

        // Adopt every unfinished shadow and collect reconcile work.
        let mut reissues: Vec<(String, String, String, RunRequest)> = Vec::new();
        let mut polls: Vec<(String, String, EndpointReference)> = Vec::new();
        let mut adopted: Vec<(String, String)> = Vec::new();
        {
            let mut runs = inner.runs.lock();
            for (key, sh) in shadows.lock().drain() {
                if sh.finished {
                    continue;
                }
                let uncertain: Vec<String> = sh
                    .jobs
                    .iter()
                    .filter(|(_, j)| j.uncertain && j.state == JobState::Waiting)
                    .map(|(n, _)| n.clone())
                    .collect();
                let now = core.clock.now();
                let run = RunState {
                    jobs: sh
                        .jobs
                        .into_iter()
                        .map(|(n, j)| {
                            let state = if j.uncertain && j.state == JobState::Waiting {
                                JobState::Dispatched
                            } else {
                                j.state
                            };
                            (
                                n,
                                JobRun {
                                    state,
                                    machine: j.machine,
                                    dir_epr: j.dir_epr,
                                    job_epr: j.job_epr,
                                    exit_code: j.exit_code,
                                    cpu_used: j.cpu_used,
                                    dispatched_at: (state == JobState::Dispatched).then_some(now),
                                },
                            )
                        })
                        .collect(),
                    spec: sh.spec,
                    topic: sh.topic.clone(),
                    credentials: sh.credentials,
                    client_fileserver: sh.client_fileserver,
                    finished: false,
                    submitted_at: sh.submitted_at,
                    trace: None,
                };
                for name in &uncertain {
                    let Some(job) = run.spec.jobs.iter().find(|j| j.name == *name) else {
                        continue;
                    };
                    let machine = run.jobs[name].machine.clone().unwrap_or_default();
                    if let Ok(req) = build_run_request(&run, job, &machine, &inner.security) {
                        reissues.push((key.clone(), name.clone(), machine, req));
                    }
                }
                for (n, j) in &run.jobs {
                    if j.state == JobState::Dispatched && !uncertain.contains(n) {
                        if let Some(epr) = &j.job_epr {
                            polls.push((key.clone(), n.clone(), epr.clone()));
                        }
                    }
                }
                adopted.push((key.clone(), sh.topic));
                runs.insert(key, run);
            }
        }

        // Wire the adopted sets' events to the promoted scheduler
        // before reconciling, so nothing in flight is missed.
        for (key, topic) in &adopted {
            let core2 = core.clone();
            let inner2 = inner.clone();
            let key2 = key.clone();
            scheduler
                .listener
                .on_topic(TopicExpression::full(&format!("{topic}//")), move |msg| {
                    on_event(&core2, &inner2, &key2, msg);
                });
        }

        // Re-issue uncertain dispatches to their recorded machine: if
        // the primary's Run made it there, the ES returns the existing
        // job instead of staging and spawning a duplicate.
        let nodes = crate::nis::snapshot(&net, &inner.nis_address).unwrap_or_default();
        for (key, job_name, machine, req) in reissues {
            let Some(node) = nodes.iter().find(|n| n.machine == machine) else {
                fail_job_set(
                    &core,
                    &inner,
                    &key,
                    &job_name,
                    BaseFault::new(
                        "uvacg:NoNodes",
                        format!("machine '{machine}' vanished during failover"),
                    ),
                );
                continue;
            };
            match es::run(&net, &node.execution, &req) {
                Ok(reply) => {
                    let mut runs = inner.runs.lock();
                    if let Some(run) = runs.get_mut(&key) {
                        if let Some(jr) = run.jobs.get_mut(&job_name) {
                            jr.job_epr = Some(reply.job);
                            if jr.dir_epr.is_none() {
                                jr.dir_epr = Some(reply.workdir);
                            }
                        }
                    }
                }
                Err(fault) => {
                    let wrapped = BaseFault::new(
                        "uvacg:DispatchFailed",
                        format!("cannot re-issue job '{job_name}' on {}", node.execution),
                    )
                    .caused_by(fault.detail.unwrap_or_else(|| {
                        BaseFault::new("uvacg:TransportFault", fault.reason.clone())
                    }));
                    fail_job_set(&core, &inner, &key, &job_name, wrapped);
                }
            }
        }

        // Poll in-flight jobs for exits whose broadcast raced the
        // crash (apply_exit is idempotent, so an exit the standby
        // already witnessed is a no-op here).
        for (key, job_name, epr) in polls {
            if let Ok(snap) = es::query_job(&net, &epr) {
                if snap.status == es::status::EXITED {
                    apply_exit(
                        &core,
                        &inner,
                        &key,
                        &job_name,
                        snap.exit_code.unwrap_or(-1) as i32,
                        Some(snap.cpu_time),
                    );
                }
            }
        }

        // Re-arm watchdogs and drive every adopted set forward.
        for (key, _topic) in &adopted {
            let (dispatched, all_done) = {
                let runs = inner.runs.lock();
                let Some(run) = runs.get(key) else { continue };
                let dispatched: Vec<(String, String)> = run
                    .jobs
                    .iter()
                    .filter(|(_, j)| j.state == JobState::Dispatched)
                    .map(|(n, j)| (n.clone(), j.machine.clone().unwrap_or_default()))
                    .collect();
                let all_done =
                    !run.finished && run.jobs.values().all(|j| j.state == JobState::Completed);
                (dispatched, all_done)
            };
            for (name, machine) in dispatched {
                arm_watchdog(&core, &inner, key, &name, &machine);
            }
            if all_done {
                complete_job_set(&core, &inner, key);
            } else {
                dispatch_ready(&core, &inner, key);
            }
        }

        scheduler
    }
}

// ---------------------------------------------------------------------
// Client-side helper
// ---------------------------------------------------------------------

/// A submission's useful outputs.
#[derive(Debug, Clone)]
pub struct SubmitReply {
    /// The job-set resource EPR (query `Status`, `JobStatus`, ...).
    pub jobset: EndpointReference,
    /// The notification topic base for this set.
    pub topic: String,
}

/// Submit a job set to the Scheduler.
pub fn submit(
    net: &InProcNetwork,
    scheduler: &EndpointReference,
    spec: &JobSetSpec,
    client_listener: Option<&EndpointReference>,
    client_fileserver: Option<&str>,
    security_header: Option<Element>,
    plain_credentials: Option<(&str, &str)>,
) -> Result<SubmitReply, SoapFault> {
    let mut body = Element::new(UVACG, "SubmitJobSet").child(spec.to_element());
    if let Some(cl) = client_listener {
        body.push_child(cl.to_element_named(UVACG, "ClientListener"));
    }
    if let Some(fs) = client_fileserver {
        body.push_child(Element::new(UVACG, "ClientFileServer").text(fs));
    }
    if let Some((u, p)) = plain_credentials {
        body.push_child(
            Element::new(UVACG, "Credentials")
                .attr("user", u)
                .attr("password", p),
        );
    }
    let mut env = Envelope::new(body);
    MessageInfo::request(scheduler.clone(), action_uri("Scheduler", "SubmitJobSet"))
        .apply(&mut env);
    if let Some(h) = security_header {
        env.headers.push(h);
    }
    // Root span of the whole submission: every dispatch, transport hop,
    // staging call and broadcast triggered by this call (including the
    // inline ones on the test network) becomes a descendant.
    let tracer = net.metrics_registry().tracer().clone();
    let mut root = tracer
        .is_enabled()
        .then(|| tracer.start_root("client.submit", "Client", net.clock()));
    if let Some(span) = root.as_mut() {
        span.annotate("jobset", spec.name.as_str());
        let c = span.context();
        if c.is_active() {
            TraceContext::new(c.trace_id, c.span_id, c.sampled).stamp(&mut env);
        }
    }
    let resp = net
        .call(&scheduler.address, env)
        .map_err(|e| SoapFault::server(e.to_string()))?;
    if let Some(f) = resp.fault() {
        return Err(f);
    }
    let jobset = resp
        .body
        .find(UVACG, "JobSetEpr")
        .ok_or_else(|| SoapFault::server("SubmitJobSetResponse missing JobSetEpr"))
        .and_then(|e| {
            EndpointReference::from_element(e).map_err(|e| SoapFault::server(e.to_string()))
        })?;
    let topic = resp
        .body
        .find(UVACG, "Topic")
        .map(|t| t.text_content())
        .unwrap_or_default();
    Ok(SubmitReply { jobset, topic })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyless_jobset_epr_faults_instead_of_panicking() {
        // Submit() extracts the fresh job-set resource's key via
        // faults::require_key; a keyless EPR faults rather than panics.
        let keyless = EndpointReference::service("inproc://m1/Scheduler");
        let fault = faults::require_key(&keyless, "job-set").unwrap_err();
        assert_eq!(fault.error_code, "wsrf:BadRequest");
        assert!(fault
            .description
            .contains("job-set EPR carries no resource key"));
    }
}
