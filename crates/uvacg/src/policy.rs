//! Scheduling policies.
//!
//! The paper's Scheduler uses "a straightforward algorithm \[that]
//! chooses the fastest, most available machine" from the Node Info
//! Service snapshot. That policy is [`FastestAvailable`]; the others
//! are the baselines experiment E6 compares it against.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One row of the Node Info Service snapshot the Scheduler polls
/// before each placement (step 2 of Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// Machine name.
    pub machine: String,
    /// CPU speed in MHz.
    pub cpu_mhz: u32,
    /// Core count.
    pub cores: u32,
    /// RAM in MB.
    pub ram_mb: u32,
    /// Current utilization in `[0,1]`.
    pub utilization: f64,
    /// Address of the machine's Execution Service.
    pub execution: String,
    /// Address of the machine's File System Service.
    pub filesystem: String,
}

/// A placement policy: pick one node from the snapshot.
pub trait SchedulingPolicy: Send + Sync {
    /// Index of the chosen node, or `None` if nothing is acceptable.
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize>;

    /// Policy name for bench tables.
    fn name(&self) -> &'static str;
}

/// The paper's policy: maximize spare speed, `cpu_mhz × cores ×
/// (1 − utilization)`. Ties (notably a fully saturated grid, where
/// every score is zero) are broken by raw speed, so overflow work
/// piles onto the fastest machine rather than an arbitrary one.
#[derive(Debug, Default)]
pub struct FastestAvailable;

impl SchedulingPolicy for FastestAvailable {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let score = |n: &NodeSnapshot| {
                    n.cpu_mhz as f64 * n.cores as f64 * (1.0 - n.utilization).max(0.0)
                };
                let speed = |n: &NodeSnapshot| n.cpu_mhz as u64 * n.cores as u64;
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap()
                    .then(speed(a).cmp(&speed(b)))
                    .then(b.utilization.partial_cmp(&a.utilization).unwrap())
                    .then(b.machine.cmp(&a.machine))
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "fastest-available"
    }
}

/// Cycle through nodes regardless of load.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: AtomicUsize,
}

impl SchedulingPolicy for RoundRobin {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        if nodes.is_empty() {
            return None;
        }
        Some(self.counter.fetch_add(1, Ordering::Relaxed) % nodes.len())
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniform random choice (xorshift; no ambient entropy so runs are
/// reproducible from the seed).
#[derive(Debug)]
pub struct Random {
    state: AtomicU64,
}

impl Random {
    /// Seeded RNG policy.
    pub fn new(seed: u64) -> Self {
        Random {
            state: AtomicU64::new(seed.max(1)),
        }
    }
}

impl Default for Random {
    fn default() -> Self {
        Random::new(0x9E3779B97F4A7C15)
    }
}

impl SchedulingPolicy for Random {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        if nodes.is_empty() {
            return None;
        }
        let mut x = self.state.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state.store(x, Ordering::Relaxed);
        Some((x % nodes.len() as u64) as usize)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Minimize utilization; ties broken by speed.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl SchedulingPolicy for LeastLoaded {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.utilization
                    .partial_cmp(&b.utilization)
                    .unwrap()
                    .then((b.cpu_mhz * b.cores).cmp(&(a.cpu_mhz * a.cores)))
                    .then(a.machine.cmp(&b.machine))
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(machine: &str, mhz: u32, cores: u32, util: f64) -> NodeSnapshot {
        NodeSnapshot {
            machine: machine.into(),
            cpu_mhz: mhz,
            cores,
            ram_mb: 1024,
            utilization: util,
            execution: format!("inproc://{machine}/Execution"),
            filesystem: format!("inproc://{machine}/FileSystem"),
        }
    }

    #[test]
    fn fastest_available_prefers_spare_speed() {
        let nodes = vec![
            node("slow-idle", 1000, 1, 0.0), // score 1000
            node("fast-busy", 3000, 1, 0.9), // score 300
            node("fast-idle", 3000, 1, 0.1), // score 2700
            node("many-core", 1000, 4, 0.5), // score 2000
        ];
        assert_eq!(FastestAvailable.select(&nodes), Some(2));
    }

    #[test]
    fn fastest_available_saturated_grid_still_picks_something() {
        let nodes = vec![node("a", 1000, 1, 1.0), node("b", 2000, 1, 1.0)];
        assert!(FastestAvailable.select(&nodes).is_some());
    }

    #[test]
    fn policies_return_none_on_empty() {
        let empty: Vec<NodeSnapshot> = Vec::new();
        assert_eq!(FastestAvailable.select(&empty), None);
        assert_eq!(RoundRobin::default().select(&empty), None);
        assert_eq!(Random::default().select(&empty), None);
        assert_eq!(LeastLoaded.select(&empty), None);
    }

    #[test]
    fn round_robin_cycles() {
        let nodes = vec![
            node("a", 1, 1, 0.0),
            node("b", 1, 1, 0.0),
            node("c", 1, 1, 0.0),
        ];
        let rr = RoundRobin::default();
        let picks: Vec<usize> = (0..6).map(|_| rr.select(&nodes).unwrap()).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_seed_deterministic_and_in_range() {
        let nodes = vec![node("a", 1, 1, 0.0), node("b", 1, 1, 0.0)];
        let r1 = Random::new(7);
        let r2 = Random::new(7);
        let p1: Vec<usize> = (0..10).map(|_| r1.select(&nodes).unwrap()).collect();
        let p2: Vec<usize> = (0..10).map(|_| r2.select(&nodes).unwrap()).collect();
        assert_eq!(p1, p2);
        assert!(p1.iter().all(|&i| i < 2));
    }

    #[test]
    fn least_loaded_ignores_speed_until_tied() {
        let nodes = vec![node("fast", 3000, 2, 0.6), node("slow", 500, 1, 0.1)];
        assert_eq!(LeastLoaded.select(&nodes), Some(1));
        let tied = vec![node("a", 1000, 1, 0.5), node("b", 2000, 1, 0.5)];
        assert_eq!(LeastLoaded.select(&tied), Some(1), "ties broken by speed");
    }
}
