//! Scheduling policies.
//!
//! The paper's Scheduler uses "a straightforward algorithm \[that]
//! chooses the fastest, most available machine" from the Node Info
//! Service snapshot. That policy is [`FastestAvailable`]; the others
//! are the baselines experiment E6 compares it against.
//!
//! [`MetricsFeedback`] closes the loop the paper leaves open: the
//! Scheduler reports every dispatched job's per-machine outcome back
//! through [`SchedulingPolicy::observe`], and placement starts from the
//! `FastestAvailable` score but divides it by a penalty derived from
//! each machine's recent observed latencies (EWMA of dispatch/makespan,
//! median observed transfer time from the `wsrf-obs` transport
//! histograms) relative to the fleet median, plus a decaying failure
//! count. Machines whose observed behaviour lags the fleet lose work;
//! machines that recover win it back.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use wsrf_obs::MetricsRegistry;
use wsrf_soap::Uri;

/// One row of the Node Info Service snapshot the Scheduler polls
/// before each placement (step 2 of Figure 3).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// Machine name.
    pub machine: String,
    /// CPU speed in MHz.
    pub cpu_mhz: u32,
    /// Core count.
    pub cores: u32,
    /// RAM in MB.
    pub ram_mb: u32,
    /// Current utilization in `[0,1]`.
    pub utilization: f64,
    /// Virtual time (seconds) of the machine's last utilization
    /// report; `0` if it has never reported since registration.
    pub updated_at: f64,
    /// Address of the machine's Execution Service.
    pub execution: String,
    /// Address of the machine's File System Service.
    pub filesystem: String,
}

/// What the Scheduler observed about one job placed on one machine —
/// the feedback channel from execution back into placement.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineOutcome {
    /// Machine the job ran on (NIS `Machine` name).
    pub machine: String,
    /// What happened.
    pub kind: OutcomeKind,
}

/// Outcome categories the Scheduler reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// The Execution Service `Run` call returned; `virt_ns` is the
    /// virtual dispatch latency (`scheduler.es_run`). Zero on a manual
    /// clock, where synchronous calls don't advance virtual time.
    Dispatch {
        /// Virtual nanoseconds from pick to `Run` returning.
        virt_ns: u64,
    },
    /// The job exited cleanly; `virt_ns` is dispatch→exit (the
    /// per-job makespan on that machine).
    Makespan {
        /// Virtual nanoseconds from dispatch to the exit event.
        virt_ns: u64,
    },
    /// The job exited nonzero or faulted on the machine.
    Failure,
    /// The watchdog expired the job (machine presumed dead or wedged).
    Timeout,
}

/// One row of the per-machine penalty table (queryable from the
/// Scheduler's `feedback` resource as `{UVACG}MachinePenalty`).
#[derive(Debug, Clone, PartialEq)]
pub struct PenaltyRow {
    /// Machine name.
    pub machine: String,
    /// EWMA of observed latencies (dispatch + makespan), nanoseconds.
    pub ewma_ns: u64,
    /// Latency observations folded into the EWMA.
    pub observations: u64,
    /// Decaying failure count (halved on each success).
    pub failures: f64,
    /// Score divisor currently applied to the machine (`1.0` = no
    /// penalty, relative to the fleet observed so far).
    pub penalty: f64,
}

/// A placement policy: pick one node from the snapshot.
pub trait SchedulingPolicy: Send + Sync {
    /// Index of the chosen node, or `None` if nothing is acceptable.
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize>;

    /// Policy name for bench tables.
    fn name(&self) -> &'static str;

    /// Feedback channel: the Scheduler reports every dispatched job's
    /// per-machine outcome here. Feedback-less policies ignore it.
    fn observe(&self, _outcome: &MachineOutcome) {}

    /// Late binding of the deployment's metrics registry, for policies
    /// that read observed transport latencies. Default: ignored.
    fn bind_metrics(&self, _registry: &Arc<MetricsRegistry>) {}

    /// The current per-machine penalty table; empty for feedback-less
    /// policies. The Scheduler mirrors this into its `feedback`
    /// resource's `{UVACG}MachinePenalty` properties.
    fn penalties(&self) -> Vec<PenaltyRow> {
        Vec::new()
    }
}

/// The paper's policy: maximize spare speed, `cpu_mhz × cores ×
/// (1 − utilization)`. Ties (notably a fully saturated grid, where
/// every score is zero) are broken by raw speed, so overflow work
/// piles onto the fastest machine rather than an arbitrary one.
#[derive(Debug, Default)]
pub struct FastestAvailable;

fn spare_speed(n: &NodeSnapshot) -> f64 {
    n.cpu_mhz as f64 * n.cores as f64 * (1.0 - n.utilization).max(0.0)
}

/// Argmax over `score` with `FastestAvailable`'s tie-breaks: raw
/// speed, then lower utilization, then machine name.
fn max_by_score(nodes: &[NodeSnapshot], score: impl Fn(usize) -> f64) -> Option<usize> {
    nodes
        .iter()
        .enumerate()
        .max_by(|(i, a), (j, b)| {
            let speed = |n: &NodeSnapshot| n.cpu_mhz as u64 * n.cores as u64;
            score(*i)
                .partial_cmp(&score(*j))
                .unwrap()
                .then(speed(a).cmp(&speed(b)))
                .then(b.utilization.partial_cmp(&a.utilization).unwrap())
                .then(b.machine.cmp(&a.machine))
        })
        .map(|(i, _)| i)
}

impl SchedulingPolicy for FastestAvailable {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        max_by_score(nodes, |i| spare_speed(&nodes[i]))
    }

    fn name(&self) -> &'static str {
        "fastest-available"
    }
}

/// Cycle through nodes regardless of load.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: AtomicUsize,
}

impl SchedulingPolicy for RoundRobin {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        if nodes.is_empty() {
            return None;
        }
        Some(self.counter.fetch_add(1, Ordering::Relaxed) % nodes.len())
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniform random choice (xorshift; no ambient entropy so runs are
/// reproducible from the seed).
#[derive(Debug)]
pub struct Random {
    state: AtomicU64,
}

impl Random {
    /// Seeded RNG policy.
    pub fn new(seed: u64) -> Self {
        Random {
            state: AtomicU64::new(seed.max(1)),
        }
    }
}

impl Default for Random {
    fn default() -> Self {
        Random::new(0x9E3779B97F4A7C15)
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

impl SchedulingPolicy for Random {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        if nodes.is_empty() {
            return None;
        }
        // One atomic step per pick: concurrent selectors each advance
        // the state exactly once, so no two can emit the same draw.
        let prev = self
            .state
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |x| Some(xorshift(x)))
            .unwrap();
        let x = xorshift(prev);
        // Widening multiply maps the draw onto [0, len) without the
        // modulo bias `x % len` has for non-power-of-two fleets.
        Some(((x as u128 * nodes.len() as u128) >> 64) as usize)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Minimize utilization; ties broken by speed.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl SchedulingPolicy for LeastLoaded {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let speed = |n: &NodeSnapshot| n.cpu_mhz as u64 * n.cores as u64;
                a.utilization
                    .partial_cmp(&b.utilization)
                    .unwrap()
                    .then(speed(b).cmp(&speed(a)))
                    .then(a.machine.cmp(&b.machine))
            })
            .map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Per-machine feedback record.
#[derive(Debug, Default, Clone)]
struct MachineRecord {
    /// EWMA of observed latencies, nanoseconds.
    ewma_ns: f64,
    /// Latency observations folded in.
    observations: u64,
    /// Decaying failure count.
    failures: f64,
}

impl MachineRecord {
    fn record_latency(&mut self, ns: f64, alpha: f64) {
        self.observations += 1;
        self.ewma_ns = if self.observations == 1 {
            ns
        } else {
            alpha * ns + (1.0 - alpha) * self.ewma_ns
        };
    }
}

/// Below this, fleet-median latencies are too small to steer on —
/// avoids penalty blow-ups when the grid is effectively instantaneous.
const LATENCY_FLOOR_NS: f64 = 100e6; // 100 virtual ms

/// `FastestAvailable` steered by observed behaviour (ROADMAP item 1).
///
/// Score = spare speed ÷ penalty, where the penalty grows with how far
/// the machine's observed latencies sit above the fleet median:
///
/// ```text
/// penalty = 1 + w·excess(ewma) + w·excess(transfer_p50) + w_f·failures
///             + w_b·max(0, burn − 1)
/// excess(x) = max(0, x − fleet_median) / max(fleet_median, 100ms)
/// ```
///
/// * `ewma` comes from Scheduler feedback ([`OutcomeKind::Dispatch`]
///   and [`OutcomeKind::Makespan`] via [`SchedulingPolicy::observe`]);
/// * `transfer_p50` is the median modeled transfer time to the
///   machine's authority, read live from the deployment's
///   `transport.inproc.modeled.<authority>_ns` histogram;
/// * `failures` counts [`OutcomeKind::Failure`]/[`OutcomeKind::Timeout`]
///   reports and halves on each success;
/// * `burn` is the machine's SLO burn rate from the deployment's
///   rolling [`wsrf_obs::SloTracker`] window (the same signal the
///   `{UVACG}Health` monitoring property publishes) — a machine
///   burning its error budget faster than allowed is penalized even
///   while its EWMA still looks healthy.
///
/// With no observations at all the penalty is `1.0` everywhere and the
/// policy is exactly [`FastestAvailable`]. Medians are taken over the
/// *candidate* machines with unobserved ones counted as zero, so a
/// single slow machine is penalized from its first observed sample.
pub struct MetricsFeedback {
    /// EWMA smoothing factor for new latency observations.
    alpha: f64,
    /// Weight of each latency-excess penalty term.
    latency_weight: f64,
    /// Weight of the failure-count penalty term.
    failure_weight: f64,
    /// Weight of the SLO burn-rate penalty term.
    burn_weight: f64,
    fleet: Mutex<HashMap<String, MachineRecord>>,
    registry: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl Default for MetricsFeedback {
    fn default() -> Self {
        MetricsFeedback {
            alpha: 0.3,
            latency_weight: 4.0,
            failure_weight: 4.0,
            burn_weight: 2.0,
            fleet: Mutex::new(HashMap::new()),
            registry: Mutex::new(None),
        }
    }
}

impl MetricsFeedback {
    /// Feedback policy with default weights.
    pub fn new() -> Self {
        Self::default()
    }

    /// Median modeled transfer time (ns) to a node's authority, or 0
    /// when the deployment records no metrics / has no traffic yet.
    fn transfer_p50(registry: Option<&Arc<MetricsRegistry>>, node: &NodeSnapshot) -> f64 {
        let Some(reg) = registry.filter(|r| r.is_enabled()) else {
            return 0.0;
        };
        let Some(uri) = Uri::parse(&node.execution) else {
            return 0.0;
        };
        reg.histogram(&wsrf_transport::modeled_metric_name(&uri.authority))
            .quantile(0.5) as f64
    }

    /// How far `x` sits above the fleet median, in medians.
    fn excess(x: f64, median: f64) -> f64 {
        (x - median).max(0.0) / median.max(LATENCY_FLOOR_NS)
    }

    /// Excess SLO burn for `machine` from the deployment's rolling
    /// windows: 0 while the machine stays inside its error budget,
    /// `burn − 1` (capped) once it burns faster than allowed. `now_ns`
    /// anchors the window; callers pass the freshest NIS timestamp.
    fn slo_burn(registry: Option<&Arc<MetricsRegistry>>, machine: &str, now_ns: u64) -> f64 {
        const BURN_CAP: f64 = 10.0;
        let Some(reg) = registry.filter(|r| r.is_enabled()) else {
            return 0.0;
        };
        match reg.slo().health(machine, now_ns) {
            Some(h) if h.burn_rate > 1.0 => h.burn_rate.min(BURN_CAP) - 1.0,
            _ => 0.0,
        }
    }

    fn penalty_terms(&self, ewma: f64, med_ewma: f64, transfer: f64, med_transfer: f64) -> f64 {
        self.latency_weight * Self::excess(ewma, med_ewma)
            + self.latency_weight * Self::excess(transfer, med_transfer)
    }
}

/// Lower median: with an even count this takes the smaller middle
/// element, so when half the fleet is degraded the degraded half still
/// shows positive excess.
fn lower_median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sorted[(sorted.len() - 1) / 2]
}

impl SchedulingPolicy for MetricsFeedback {
    fn select(&self, nodes: &[NodeSnapshot]) -> Option<usize> {
        if nodes.is_empty() {
            return None;
        }
        let mut fleet = self.fleet.lock();
        // Seed a record for every candidate so the fleet median in
        // `penalties()` matches the one placement uses here.
        for n in nodes {
            fleet.entry(n.machine.clone()).or_default();
        }
        let registry = self.registry.lock().clone();
        let ewmas: Vec<f64> = nodes
            .iter()
            .map(|n| fleet.get(&n.machine).map_or(0.0, |r| r.ewma_ns))
            .collect();
        let transfers: Vec<f64> = nodes
            .iter()
            .map(|n| Self::transfer_p50(registry.as_ref(), n))
            .collect();
        let med_ewma = lower_median(&ewmas);
        let med_transfer = lower_median(&transfers);
        // Anchor the SLO window at the freshest NIS report: candidate
        // snapshots are the only virtual-time signal a policy sees.
        let now_ns = nodes
            .iter()
            .map(|n| (n.updated_at.max(0.0) * 1e9) as u64)
            .max()
            .unwrap_or(0);
        let scores: Vec<f64> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let failures = fleet.get(&n.machine).map_or(0.0, |r| r.failures);
                let burn = Self::slo_burn(registry.as_ref(), &n.machine, now_ns);
                let penalty = 1.0
                    + self.penalty_terms(ewmas[i], med_ewma, transfers[i], med_transfer)
                    + self.failure_weight * failures
                    + self.burn_weight * burn;
                spare_speed(n) / penalty
            })
            .collect();
        max_by_score(nodes, |i| scores[i])
    }

    fn name(&self) -> &'static str {
        "metrics-feedback"
    }

    fn observe(&self, outcome: &MachineOutcome) {
        // Manual-clock deployments see synchronous dispatch as
        // instantaneous; a zero sample carries no signal.
        if matches!(outcome.kind, OutcomeKind::Dispatch { virt_ns: 0 }) {
            return;
        }
        let mut fleet = self.fleet.lock();
        let rec = fleet.entry(outcome.machine.clone()).or_default();
        match outcome.kind {
            OutcomeKind::Dispatch { virt_ns } => rec.record_latency(virt_ns as f64, self.alpha),
            OutcomeKind::Makespan { virt_ns } => {
                rec.record_latency(virt_ns as f64, self.alpha);
                rec.failures *= 0.5;
            }
            OutcomeKind::Failure | OutcomeKind::Timeout => rec.failures += 1.0,
        }
    }

    fn bind_metrics(&self, registry: &Arc<MetricsRegistry>) {
        *self.registry.lock() = Some(registry.clone());
    }

    fn penalties(&self) -> Vec<PenaltyRow> {
        let fleet = self.fleet.lock();
        let ewmas: Vec<f64> = fleet.values().map(|r| r.ewma_ns).collect();
        let med_ewma = lower_median(&ewmas);
        let mut rows: Vec<PenaltyRow> = fleet
            .iter()
            .map(|(machine, rec)| PenaltyRow {
                machine: machine.clone(),
                ewma_ns: rec.ewma_ns as u64,
                observations: rec.observations,
                failures: rec.failures,
                penalty: 1.0
                    + self.latency_weight * Self::excess(rec.ewma_ns, med_ewma)
                    + self.failure_weight * rec.failures,
            })
            .collect();
        rows.sort_by(|a, b| a.machine.cmp(&b.machine));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(machine: &str, mhz: u32, cores: u32, util: f64) -> NodeSnapshot {
        NodeSnapshot {
            machine: machine.into(),
            cpu_mhz: mhz,
            cores,
            ram_mb: 1024,
            utilization: util,
            updated_at: 0.0,
            execution: format!("inproc://{machine}/Execution"),
            filesystem: format!("inproc://{machine}/FileSystem"),
        }
    }

    #[test]
    fn fastest_available_prefers_spare_speed() {
        let nodes = vec![
            node("slow-idle", 1000, 1, 0.0), // score 1000
            node("fast-busy", 3000, 1, 0.9), // score 300
            node("fast-idle", 3000, 1, 0.1), // score 2700
            node("many-core", 1000, 4, 0.5), // score 2000
        ];
        assert_eq!(FastestAvailable.select(&nodes), Some(2));
    }

    #[test]
    fn fastest_available_saturated_grid_still_picks_something() {
        let nodes = vec![node("a", 1000, 1, 1.0), node("b", 2000, 1, 1.0)];
        assert!(FastestAvailable.select(&nodes).is_some());
    }

    #[test]
    fn policies_return_none_on_empty() {
        let empty: Vec<NodeSnapshot> = Vec::new();
        assert_eq!(FastestAvailable.select(&empty), None);
        assert_eq!(RoundRobin::default().select(&empty), None);
        assert_eq!(Random::default().select(&empty), None);
        assert_eq!(LeastLoaded.select(&empty), None);
        assert_eq!(MetricsFeedback::new().select(&empty), None);
    }

    #[test]
    fn round_robin_cycles() {
        let nodes = vec![
            node("a", 1, 1, 0.0),
            node("b", 1, 1, 0.0),
            node("c", 1, 1, 0.0),
        ];
        let rr = RoundRobin::default();
        let picks: Vec<usize> = (0..6).map(|_| rr.select(&nodes).unwrap()).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_seed_deterministic_and_in_range() {
        let nodes = vec![node("a", 1, 1, 0.0), node("b", 1, 1, 0.0)];
        let r1 = Random::new(7);
        let r2 = Random::new(7);
        let p1: Vec<usize> = (0..10).map(|_| r1.select(&nodes).unwrap()).collect();
        let p2: Vec<usize> = (0..10).map(|_| r2.select(&nodes).unwrap()).collect();
        assert_eq!(p1, p2);
        assert!(p1.iter().all(|&i| i < 2));
    }

    #[test]
    fn random_concurrent_selects_never_duplicate_rng_states() {
        // The old load→xorshift→store sequence lost updates under
        // contention: two threads could read the same state and emit
        // identical draws. With fetch_update every select consumes
        // exactly one xorshift step, so the multiset of states drawn
        // by N threads equals the serial sequence of the same length.
        use std::collections::HashSet;
        use std::sync::Barrier;

        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;

        // 1021 nodes (prime) also exercises the non-power-of-two
        // index mapping.
        let nodes: Vec<NodeSnapshot> = (0..1021)
            .map(|i| node(&format!("m{i}"), 1, 1, 0.0))
            .collect();
        let policy = Arc::new(Random::new(42));
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let policy = policy.clone();
                let nodes = nodes.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..PER_THREAD {
                        assert!(policy.select(&nodes).unwrap() < nodes.len());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Exactly THREADS*PER_THREAD xorshift steps were consumed, so
        // the final state matches the serial walk — and because
        // xorshift64 is a permutation with period 2^64−1, that also
        // proves no step was drawn twice.
        let mut serial = 42u64;
        let mut seen = HashSet::new();
        for _ in 0..THREADS * PER_THREAD {
            serial = xorshift(serial);
            assert!(seen.insert(serial), "duplicated RNG state {serial}");
        }
        assert_eq!(policy.state.load(Ordering::Relaxed), serial);
    }

    #[test]
    fn random_index_mapping_is_unbiased_across_full_range() {
        // The widening multiply maps u64 draws onto [0, len) without
        // the bias `x % len` shows near the top of the range; spot-
        // check the endpoints of the mapping itself.
        let map = |x: u64, len: usize| ((x as u128 * len as u128) >> 64) as usize;
        assert_eq!(map(0, 3), 0);
        assert_eq!(map(u64::MAX, 3), 2);
        assert_eq!(map(u64::MAX / 2, 3), 1);
    }

    #[test]
    fn least_loaded_ignores_speed_until_tied() {
        let nodes = vec![node("fast", 3000, 2, 0.6), node("slow", 500, 1, 0.1)];
        assert_eq!(LeastLoaded.select(&nodes), Some(1));
        let tied = vec![node("a", 1000, 1, 0.5), node("b", 2000, 1, 0.5)];
        assert_eq!(LeastLoaded.select(&tied), Some(1), "ties broken by speed");
    }

    #[test]
    fn least_loaded_tie_break_survives_huge_cpu_rows() {
        // cpu_mhz * cores used to be computed in u32, which panics in
        // debug builds for adversarial NIS rows like this one.
        let nodes = vec![
            node("giant-a", u32::MAX, 4, 0.5),
            node("giant-b", u32::MAX, 8, 0.5),
        ];
        assert_eq!(LeastLoaded.select(&nodes), Some(1), "more cores wins tie");
        assert_eq!(FastestAvailable.select(&nodes), Some(1));
    }

    #[test]
    fn metrics_feedback_cold_start_equals_fastest_available() {
        let nodes = vec![
            node("slow-idle", 1000, 1, 0.0),
            node("fast-busy", 3000, 1, 0.9),
            node("fast-idle", 3000, 1, 0.1),
            node("many-core", 1000, 4, 0.5),
        ];
        let mf = MetricsFeedback::new();
        assert!(mf.penalties().is_empty(), "nothing observed yet");
        assert_eq!(mf.select(&nodes), FastestAvailable.select(&nodes));
        let rows = mf.penalties();
        assert_eq!(rows.len(), nodes.len(), "select seeds the fleet table");
        assert!(rows.iter().all(|r| r.penalty == 1.0), "{rows:?}");
    }

    #[test]
    fn metrics_feedback_penalizes_slow_makespans() {
        let nodes = vec![node("fast", 3000, 2, 0.0), node("steady", 1500, 1, 0.0)];
        let mf = MetricsFeedback::new();
        // "fast" looks great on paper but its observed makespans are
        // far above the fleet median (median counts "steady" as 0).
        for _ in 0..3 {
            mf.observe(&MachineOutcome {
                machine: "fast".into(),
                kind: OutcomeKind::Makespan {
                    virt_ns: 30_000_000_000,
                },
            });
        }
        assert_eq!(mf.select(&nodes), Some(1), "steers off the slow machine");
        let rows = mf.penalties();
        assert_eq!(rows.len(), 2);
        let fast = rows.iter().find(|r| r.machine == "fast").unwrap();
        let steady = rows.iter().find(|r| r.machine == "steady").unwrap();
        assert!(fast.penalty > steady.penalty, "{rows:?}");
        assert_eq!(steady.penalty, 1.0);
        assert_eq!(fast.observations, 3);
    }

    #[test]
    fn metrics_feedback_timeouts_penalize_and_successes_forgive() {
        let nodes = vec![node("flaky", 3000, 2, 0.0), node("steady", 1500, 1, 0.0)];
        let mf = MetricsFeedback::new();
        assert_eq!(mf.select(&nodes), Some(0), "prefers raw speed at first");
        mf.observe(&MachineOutcome {
            machine: "flaky".into(),
            kind: OutcomeKind::Timeout,
        });
        assert_eq!(mf.select(&nodes), Some(1), "timeout steers work away");
        // Successes decay the failure count back down; spare speed
        // (6000 vs 1000) wins again once the penalty drops below 6x.
        for _ in 0..4 {
            mf.observe(&MachineOutcome {
                machine: "flaky".into(),
                kind: OutcomeKind::Makespan { virt_ns: 0 },
            });
        }
        assert_eq!(mf.select(&nodes), Some(0), "recovered machine wins back");
    }

    #[test]
    fn metrics_feedback_ignores_zero_dispatch_samples() {
        let mf = MetricsFeedback::new();
        mf.observe(&MachineOutcome {
            machine: "m".into(),
            kind: OutcomeKind::Dispatch { virt_ns: 0 },
        });
        assert!(mf.penalties().is_empty(), "zero dispatch carries no signal");
        mf.observe(&MachineOutcome {
            machine: "m".into(),
            kind: OutcomeKind::Dispatch { virt_ns: 5_000 },
        });
        assert_eq!(mf.penalties()[0].observations, 1);
    }

    #[test]
    fn metrics_feedback_reads_transfer_latency_from_registry() {
        use std::time::Duration;
        let nodes = vec![node("far", 3000, 2, 0.0), node("near", 1500, 1, 0.0)];
        let registry = MetricsRegistry::enabled();
        // Simulate what InProcNetwork records: messages to "far" take
        // 15 virtual seconds, "near" is instantaneous.
        let h = registry.histogram(&wsrf_transport::modeled_metric_name("far"));
        for _ in 0..4 {
            h.record_duration(Duration::from_secs(15));
        }
        let mf = MetricsFeedback::new();
        assert_eq!(mf.select(&nodes), Some(0), "no registry bound yet");
        mf.bind_metrics(&registry);
        assert_eq!(mf.select(&nodes), Some(1), "observed slow link penalized");
    }
}
