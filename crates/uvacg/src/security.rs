//! The campus PKI wiring.
//!
//! Every principal (client users, the Scheduler, each Execution
//! Service) enrolls with the simulated campus CA. Credentials travel
//! as WS-Security UsernameToken headers encrypted to the *recipient's*
//! certificate: the client encrypts to the Scheduler; the Scheduler,
//! which alone knows where a job will land, re-encrypts to the chosen
//! Execution Service (the paper's client encrypted directly because
//! its scenario fixed the target machine per request; the mediated
//! variant preserves the same header format and crypto flow).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

use wsrf_security::pki::{Certificate, CertificateAuthority, KeyPair};
use wsrf_security::wsse::{SecurityError, UsernameToken};
use wsrf_xml::Element;

/// The shared campus security fabric.
pub struct GridSecurity {
    ca: CertificateAuthority,
    keys: Mutex<HashMap<String, KeyPair>>,
    certs: Mutex<HashMap<String, Certificate>>,
    rng: Mutex<StdRng>,
}

impl GridSecurity {
    /// A fresh CA, seeded for reproducibility (the virtual clock bans
    /// ambient entropy anyway).
    pub fn new(seed: u64) -> Arc<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        Arc::new(GridSecurity {
            ca: CertificateAuthority::new("uva-campus-ca", &mut rng),
            keys: Mutex::new(HashMap::new()),
            certs: Mutex::new(HashMap::new()),
            rng: Mutex::new(rng),
        })
    }

    /// Enroll a principal; idempotent.
    pub fn enroll(&self, subject: &str) {
        let mut keys = self.keys.lock();
        if keys.contains_key(subject) {
            return;
        }
        let (kp, cert) = self.ca.enroll(subject, &mut *self.rng.lock());
        keys.insert(subject.to_string(), kp);
        self.certs.lock().insert(subject.to_string(), cert);
    }

    /// A principal's certificate (public).
    pub fn certificate(&self, subject: &str) -> Option<Certificate> {
        self.certs.lock().get(subject).cloned()
    }

    /// A principal's key pair (in a real deployment this never leaves
    /// the principal's machine; the simulation hands it to the service
    /// that owns it at deployment time).
    pub fn key_pair(&self, subject: &str) -> Option<KeyPair> {
        self.keys.lock().get(subject).cloned()
    }

    /// Verify a certificate against the campus CA.
    pub fn verify(&self, cert: &Certificate) -> bool {
        self.ca.verify(cert)
    }

    /// Encrypt a username token to a principal, producing the
    /// `<wsse:Security>` header.
    pub fn encrypt_token(&self, token: &UsernameToken, to_subject: &str) -> Option<Element> {
        let cert = self.certificate(to_subject)?;
        Some(token.encrypt(&cert, &mut *self.rng.lock()))
    }

    /// Decrypt a `<wsse:Security>` header as a principal.
    pub fn decrypt_token(
        &self,
        header: &Element,
        as_subject: &str,
    ) -> Result<UsernameToken, SecurityError> {
        let keys = self.key_pair(as_subject).ok_or_else(|| {
            SecurityError::MalformedHeader(format!("'{as_subject}' not enrolled"))
        })?;
        UsernameToken::decrypt(header, &keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enroll_and_roundtrip_token() {
        let sec = GridSecurity::new(1);
        sec.enroll("scheduler");
        sec.enroll("es@machine01");
        let tok = UsernameToken::new("alice", "pw");
        let header = sec.encrypt_token(&tok, "es@machine01").unwrap();
        let back = sec.decrypt_token(&header, "es@machine01").unwrap();
        assert_eq!(back, tok);
        // The wrong principal cannot decrypt.
        assert!(sec.decrypt_token(&header, "scheduler").is_err());
    }

    #[test]
    fn enroll_is_idempotent() {
        let sec = GridSecurity::new(2);
        sec.enroll("svc");
        let k1 = sec.key_pair("svc").unwrap();
        sec.enroll("svc");
        assert_eq!(sec.key_pair("svc").unwrap(), k1);
    }

    #[test]
    fn certificates_verify_against_campus_ca() {
        let sec = GridSecurity::new(3);
        sec.enroll("svc");
        let cert = sec.certificate("svc").unwrap();
        assert!(sec.verify(&cert));
        let other = GridSecurity::new(4);
        assert!(!other.verify(&cert));
    }

    #[test]
    fn unknown_principals_yield_none() {
        let sec = GridSecurity::new(5);
        assert!(sec.certificate("ghost").is_none());
        assert!(sec
            .encrypt_token(&UsernameToken::new("u", "p"), "ghost")
            .is_none());
    }
}
