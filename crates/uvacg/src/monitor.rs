//! The grid monitoring plane — a G-Monitor-style console backend over
//! the WSRF machinery itself.
//!
//! Three pieces, layered on the observability substrate in `wsrf-obs`:
//!
//! * [`monitor_service`] deploys a WSRF service whose well-known
//!   `monitor` resource publishes the deployment's structured event
//!   log (`{UVACG}EventLog`) and rolling SLO health (`{UVACG}Health`)
//!   as *computed* resource properties — queryable with the standard
//!   WS-ResourceProperties port types like any other RP.
//! * [`EventPump`] bridges the in-process event rings onto the
//!   notification fabric: each flush publishes the events that arrived
//!   since the previous one on the [`MONITOR_TOPIC`] topic, so remote
//!   consoles see faults, WAL snapshots, auto-pauses and lease
//!   expiries as they happen. The pump pulls from the ring with a
//!   sequence cursor rather than hooking emit sites, so a delivery
//!   failure caused by the pump's own publish (which emits an
//!   auto-pause event) surfaces on the *next* flush instead of
//!   recursing into the broker.
//! * [`MonitorService`] is the aggregation side: it subscribes a
//!   listener per authority to that topic, periodically pulls each
//!   authority's metrics snapshot (live registry or the HTTP
//!   `/metrics.json` endpoint — both render the identical flat JSON),
//!   and folds everything into a [`GridCatalog`] the
//!   `examples/console.rs` live view renders.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simclock::Clock;
use ws_notification::broker;
use ws_notification::consumer::NotificationListener;
use ws_notification::message::NotificationMessage;
use ws_notification::topics::TopicExpression;
use wsrf_core::container::{Service, ServiceBuilder};
use wsrf_core::properties::PropertyDoc;
use wsrf_core::store::ResourceStore;
use wsrf_obs::{Event, MetricsRegistry};
use wsrf_soap::ns::UVACG;
use wsrf_soap::{EndpointReference, SoapFault};
use wsrf_transport::InProcNetwork;
use wsrf_xml::{Element, QName};

fn q(local: &str) -> QName {
    QName::new(UVACG, local)
}

/// The notification topic event pumps publish on.
pub const MONITOR_TOPIC: &str = "monitor/events";

/// Well-known resource key of the monitor RPs.
pub const MONITOR_KEY: &str = "monitor";

/// Serialize one structured event as a `{UVACG}Event` element.
pub fn event_to_element(e: &Event) -> Element {
    Element::with_name(q("Event"))
        .attr("seq", e.seq.to_string())
        .attr("severity", e.severity.as_str())
        .attr("kind", e.kind.as_str())
        .attr("service", &*e.service)
        .attr("t", e.virt_ns.to_string())
        .text(&e.detail)
}

/// Deploy the monitor WSRF service: a single well-known resource
/// (key [`MONITOR_KEY`]) whose `{UVACG}EventLog` and `{UVACG}Health`
/// properties are computed live from `registry` at query time, the
/// same pattern as the scheduler's `Trace` RP.
pub fn monitor_service(
    address: &str,
    registry: &Arc<MetricsRegistry>,
    store: Arc<dyn ResourceStore>,
    clock: Clock,
    net: Arc<InProcNetwork>,
) -> Arc<Service> {
    let ev_reg = registry.clone();
    let slo_reg = registry.clone();
    let service = ServiceBuilder::new("Monitor", address, store)
        .computed_property(q("EventLog"), move |_doc, _now| {
            let events = ev_reg.events().all();
            let mut el = Element::with_name(q("EventLog"))
                .attr("count", events.len().to_string())
                .attr("lastSeq", ev_reg.events().last_seq().to_string());
            for e in &events {
                el.push_child(event_to_element(e));
            }
            vec![el]
        })
        .computed_property(q("Health"), move |_doc, now| {
            let mut el = Element::with_name(q("Health"));
            for h in slo_reg.slo().health_all(now.as_nanos()) {
                el.push_child(
                    Element::with_name(q("Service"))
                        .attr("name", &*h.service)
                        .attr("total", h.total.to_string())
                        .attr("ok", h.ok.to_string())
                        .attr("successRate", format!("{:.6}", h.success_rate))
                        .attr("p99Ns", h.p99_ns.to_string())
                        .attr("burnRate", format!("{:.4}", h.burn_rate))
                        .attr("healthy", if h.is_healthy() { "true" } else { "false" }),
                );
            }
            vec![el]
        })
        .build(clock, net);
    let _ = service
        .core()
        .create_resource_with_key(MONITOR_KEY, PropertyDoc::new());
    service
}

/// Streams the deployment's event rings onto the notification fabric.
///
/// Cursor-based: [`EventPump::flush`] publishes everything past the
/// last flushed sequence number as one batched `{UVACG}Events`
/// notification on [`MONITOR_TOPIC`]. Events emitted *during* a flush
/// (e.g. an auto-pause triggered by this very publish) carry higher
/// sequence numbers and ride the next flush — no broker re-entrancy.
pub struct EventPump {
    net: Arc<InProcNetwork>,
    registry: Arc<MetricsRegistry>,
    broker: EndpointReference,
    authority: String,
    last_seq: AtomicU64,
}

impl EventPump {
    /// A pump draining `registry`'s event log to `broker`, stamping
    /// batches with `authority` so aggregators can tell grids apart.
    pub fn new(
        net: Arc<InProcNetwork>,
        registry: Arc<MetricsRegistry>,
        broker: EndpointReference,
        authority: &str,
    ) -> Arc<EventPump> {
        Arc::new(EventPump {
            net,
            registry,
            broker,
            authority: authority.to_string(),
            last_seq: AtomicU64::new(0),
        })
    }

    /// Publish all events newer than the cursor; returns how many went
    /// out (0 publishes nothing).
    pub fn flush(&self) -> usize {
        let after = self.last_seq.load(Ordering::Acquire);
        let events = self.registry.events().since(after);
        if events.is_empty() {
            return 0;
        }
        let mut batch = Element::with_name(q("Events")).attr("authority", &self.authority);
        let mut max_seq = after;
        for e in &events {
            max_seq = max_seq.max(e.seq);
            batch.push_child(event_to_element(e));
        }
        let msg = NotificationMessage::new(MONITOR_TOPIC, batch);
        let _ = broker::publish(&self.net, &self.broker, &msg);
        self.last_seq.store(max_seq, Ordering::Release);
        events.len()
    }

    /// Self-rescheduling flush every `every` of virtual time. On a
    /// manual clock each `advance` past a boundary drains once.
    pub fn start(self: &Arc<Self>, clock: &Clock, every: std::time::Duration) {
        let pump = self.clone();
        let clock2 = clock.clone();
        clock.schedule(every, move |_| {
            pump.flush();
            pump.start(&clock2, every);
        });
    }
}

/// Where an authority's metrics snapshot comes from.
pub enum MetricsSource {
    /// Read the registry in-process (same-process deployments).
    Registry(Arc<MetricsRegistry>),
    /// Scrape `http://<authority>/metrics.json` from a monitored
    /// [`wsrf_transport::http::HttpSoapServer`]; `/healthz` supplies
    /// the degraded flag.
    Http(String),
}

/// One event as received from an authority's pump.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteEvent {
    pub authority: String,
    pub seq: u64,
    pub severity: String,
    pub kind: String,
    pub service: String,
    pub virt_ns: u64,
    pub detail: String,
}

/// One parsed metric from the flat `/metrics.json` form.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricReading {
    /// Counter/gauge value (0 for histograms).
    pub value: i64,
    /// Histogram sample count (0 otherwise).
    pub count: u64,
    /// Histogram sum (0 otherwise).
    pub sum: u64,
    /// Histogram mean (0.0 otherwise).
    pub mean: f64,
    /// Histogram p99 (0 otherwise).
    pub p99: u64,
}

/// Parse the flat one-metric-per-line JSON that both
/// `MetricsSnapshot::to_json` and the `/metrics.json` endpoint render.
pub fn parse_flat_metrics(json: &str) -> BTreeMap<String, MetricReading> {
    let mut out = BTreeMap::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some(quote) = rest.find('"') else {
            continue;
        };
        let name = &rest[..quote];
        let body = &rest[quote + 1..];
        let mut r = MetricReading::default();
        if body.contains("\"counter\"") || body.contains("\"gauge\"") {
            r.value = field_i64(body, "\"value\": ").unwrap_or(0);
        } else if body.contains("\"histogram\"") {
            r.count = field_i64(body, "\"count\": ").unwrap_or(0).max(0) as u64;
            r.sum = field_i64(body, "\"sum\": ").unwrap_or(0).max(0) as u64;
            r.mean = field_f64(body, "\"mean\": ").unwrap_or(0.0);
            r.p99 = field_i64(body, "\"p99\": ").unwrap_or(0).max(0) as u64;
        } else {
            continue;
        }
        out.insert(name.to_string(), r);
    }
    out
}

fn field_i64(body: &str, key: &str) -> Option<i64> {
    let at = body.find(key)? + key.len();
    let rest = &body[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_f64(body: &str, key: &str) -> Option<f64> {
    let at = body.find(key)? + key.len();
    let rest = &body[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '.'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One Figure 3 step's latency digest (from a
/// `scheduler.step.<NN>_<name>_ns` histogram).
#[derive(Debug, Clone, PartialEq)]
pub struct StepStat {
    /// Step label, e.g. `03_es_run`.
    pub name: String,
    pub mean_ns: f64,
    pub count: u64,
}

/// Per-authority digest of one polling round.
#[derive(Debug, Clone, PartialEq)]
pub struct AuthorityStatus {
    pub name: String,
    /// Job sets completed (`scheduler.makespan_ns` count).
    pub sets_completed: u64,
    /// Mean set makespan, virtual ns.
    pub mean_makespan_ns: f64,
    /// Jobs dispatched (`scheduler.step.03_es_run_ns` count).
    pub jobs_dispatched: u64,
    /// Jobs whose exit broadcast arrived (step 10 count).
    pub jobs_completed: u64,
    /// Dispatched minus exited: the grid's current queue depth.
    pub jobs_in_flight: u64,
    /// Container dispatches across every service (`*.dispatches`).
    pub dispatches: u64,
    /// Fault envelopes across every service (`*.faults`).
    pub faults: u64,
    /// Broker deliveries so far.
    pub deliveries: u64,
    /// Slowest Figure 3 steps by mean latency, descending.
    pub slowest_steps: Vec<StepStat>,
    /// Active alerts (SLO burn, degraded `/healthz`, warn/error events).
    pub alerts: Vec<String>,
}

/// A grid-wide snapshot assembled by [`MonitorService::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridCatalog {
    /// Virtual time of the poll (the monitor's clock).
    pub at_ns: u64,
    pub authorities: Vec<AuthorityStatus>,
    /// Recent events across all authorities, oldest first.
    pub events: Vec<RemoteEvent>,
}

impl GridCatalog {
    /// Render a fixed-width console frame (the `examples/console.rs`
    /// live view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== grid monitor @ {:.3}s virtual ==\n",
            self.at_ns as f64 / 1e9
        ));
        out.push_str(&format!(
            "{:<12} {:>5} {:>6} {:>9} {:>7} {:>7} {:>8}  alerts\n",
            "authority", "sets", "jobs", "in-flight", "disp", "faults", "deliver"
        ));
        for a in &self.authorities {
            out.push_str(&format!(
                "{:<12} {:>5} {:>6} {:>9} {:>7} {:>7} {:>8}  {}\n",
                a.name,
                a.sets_completed,
                a.jobs_completed,
                a.jobs_in_flight,
                a.dispatches,
                a.faults,
                a.deliveries,
                if a.alerts.is_empty() {
                    "-".to_string()
                } else {
                    a.alerts.join("; ")
                }
            ));
        }
        for a in &self.authorities {
            if a.slowest_steps.is_empty() {
                continue;
            }
            out.push_str(&format!("-- slowest steps: {} --\n", a.name));
            for s in &a.slowest_steps {
                out.push_str(&format!(
                    "  {:<24} mean {:>12.0} ns  x{}\n",
                    s.name, s.mean_ns, s.count
                ));
            }
        }
        if !self.events.is_empty() {
            out.push_str("-- recent events --\n");
            for e in self
                .events
                .iter()
                .rev()
                .take(8)
                .collect::<Vec<_>>()
                .iter()
                .rev()
            {
                out.push_str(&format!(
                    "  [{:<5}] {}/{} {} @{:.3}s: {}\n",
                    e.severity,
                    e.authority,
                    e.service,
                    e.kind,
                    e.virt_ns as f64 / 1e9,
                    e.detail
                ));
            }
        }
        out
    }
}

struct AuthorityHandle {
    name: String,
    source: MetricsSource,
    /// Keeps the subscription's consumer endpoint alive.
    _listener: NotificationListener,
}

struct MonInner {
    authorities: Mutex<Vec<AuthorityHandle>>,
    events: Mutex<VecDeque<RemoteEvent>>,
    cap: usize,
}

/// The aggregation service: one listener per monitored authority on
/// that authority's network, a bounded cross-grid event buffer, and a
/// pull-based metrics poll.
pub struct MonitorService {
    clock: Clock,
    inner: Arc<MonInner>,
}

/// How many slowest steps a poll reports per authority.
const TOP_STEPS: usize = 5;

/// Cross-authority event buffer bound.
const EVENT_BUFFER_CAP: usize = 512;

impl MonitorService {
    /// A monitor on `clock` (drives the catalog's timestamp; share the
    /// grids' clock so virtual times line up).
    pub fn new(clock: Clock) -> MonitorService {
        MonitorService {
            clock,
            inner: Arc::new(MonInner {
                authorities: Mutex::new(Vec::new()),
                events: Mutex::new(VecDeque::new()),
                cap: EVENT_BUFFER_CAP,
            }),
        }
    }

    /// Attach one authority: register a listener at
    /// `inproc://monitor/<name>` on *that authority's* network,
    /// subscribe it to [`MONITOR_TOPIC`] at the authority's broker,
    /// and remember where its metrics snapshots come from.
    pub fn add_authority(
        &self,
        name: &str,
        net: &Arc<InProcNetwork>,
        broker_epr: &EndpointReference,
        source: MetricsSource,
    ) -> Result<(), SoapFault> {
        let address = format!("inproc://monitor/{name}");
        let listener = NotificationListener::register_counting(net, &address);
        let inner = self.inner.clone();
        let authority = name.to_string();
        listener.on_topic(TopicExpression::full(MONITOR_TOPIC), move |msg| {
            let mut events = inner.events.lock();
            for ev in msg.payload.find_all(UVACG, "Event") {
                let attr_u64 = |k: &str| ev.attr_value(k).and_then(|v| v.parse().ok()).unwrap_or(0);
                if events.len() == inner.cap {
                    events.pop_front();
                }
                events.push_back(RemoteEvent {
                    authority: authority.clone(),
                    seq: attr_u64("seq"),
                    severity: ev.attr_value("severity").unwrap_or("info").to_string(),
                    kind: ev.attr_value("kind").unwrap_or("").to_string(),
                    service: ev.attr_value("service").unwrap_or("").to_string(),
                    virt_ns: attr_u64("t"),
                    detail: ev.text_content(),
                });
            }
        });
        broker::subscribe(
            net,
            broker_epr,
            &listener.epr(),
            &TopicExpression::full(MONITOR_TOPIC),
            None,
        )?;
        self.inner.authorities.lock().push(AuthorityHandle {
            name: name.to_string(),
            source,
            _listener: listener,
        });
        Ok(())
    }

    /// Number of attached authorities.
    pub fn authority_count(&self) -> usize {
        self.inner.authorities.lock().len()
    }

    /// Events buffered so far (oldest first).
    pub fn events(&self) -> Vec<RemoteEvent> {
        self.inner.events.lock().iter().cloned().collect()
    }

    /// Pull every authority's metrics snapshot and fold the current
    /// state into a [`GridCatalog`].
    pub fn poll(&self) -> GridCatalog {
        let now_ns = self.clock.now().as_nanos();
        let events: Vec<RemoteEvent> = self.inner.events.lock().iter().cloned().collect();
        let authorities = self.inner.authorities.lock();
        let statuses = authorities
            .iter()
            .map(|a| {
                let (readings, degraded) = match &a.source {
                    MetricsSource::Registry(reg) => {
                        let degraded = reg.slo().health_all(now_ns).iter().any(|h| !h.is_healthy());
                        (parse_flat_metrics(&reg.snapshot().to_json()), degraded)
                    }
                    MetricsSource::Http(authority) => {
                        let readings = wsrf_transport::http::http_get(authority, "/metrics.json")
                            .ok()
                            .filter(|(code, _)| *code == 200)
                            .map(|(_, body)| parse_flat_metrics(&body))
                            .unwrap_or_default();
                        let degraded = wsrf_transport::http::http_get(authority, "/healthz")
                            .map(|(code, _)| code == 503)
                            .unwrap_or(false);
                        (readings, degraded)
                    }
                };
                digest(&a.name, &readings, degraded, &events)
            })
            .collect();
        GridCatalog {
            at_ns: now_ns,
            authorities: statuses,
            events,
        }
    }
}

/// Fold one authority's parsed metrics + event tail into its status row.
fn digest(
    name: &str,
    readings: &BTreeMap<String, MetricReading>,
    degraded: bool,
    events: &[RemoteEvent],
) -> AuthorityStatus {
    let get = |k: &str| readings.get(k).copied().unwrap_or_default();
    let makespan = get("scheduler.makespan_ns");
    let dispatched = get("scheduler.step.03_es_run_ns");
    let exited = get("scheduler.step.10_exit_broadcast_ns");
    let mut dispatches = 0u64;
    let mut faults = 0u64;
    let mut steps: Vec<StepStat> = Vec::new();
    for (k, r) in readings {
        if k.starts_with("container.") && k.ends_with(".dispatches") {
            dispatches += r.value.max(0) as u64;
        } else if k.starts_with("container.") && k.ends_with(".faults") {
            faults += r.value.max(0) as u64;
        } else if let Some(step) = k
            .strip_prefix("scheduler.step.")
            .and_then(|s| s.strip_suffix("_ns"))
        {
            if r.count > 0 {
                steps.push(StepStat {
                    name: step.to_string(),
                    mean_ns: r.mean,
                    count: r.count,
                });
            }
        }
    }
    steps.sort_by(|a, b| b.mean_ns.partial_cmp(&a.mean_ns).unwrap());
    steps.truncate(TOP_STEPS);

    let mut alerts = Vec::new();
    if degraded {
        alerts.push("SLO burn: degraded".to_string());
    }
    if faults > 0 {
        alerts.push(format!("{faults} dispatch faults"));
    }
    let noisy = events
        .iter()
        .filter(|e| e.authority == name && e.severity != "info")
        .count();
    if noisy > 0 {
        alerts.push(format!("{noisy} warn/error events"));
    }
    AuthorityStatus {
        name: name.to_string(),
        sets_completed: makespan.count,
        mean_makespan_ns: makespan.mean,
        jobs_dispatched: dispatched.count,
        jobs_completed: exited.count,
        jobs_in_flight: dispatched.count.saturating_sub(exited.count),
        dispatches,
        faults,
        deliveries: get("broker.deliveries").value.max(0) as u64,
        slowest_steps: steps,
        alerts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_metrics_parser_reads_all_kinds() {
        let reg = MetricsRegistry::enabled();
        reg.counter("a.count").add(7);
        reg.gauge("b.gauge").set(-3);
        let h = reg.histogram("c.hist_ns");
        h.record(100);
        h.record(300);
        let parsed = parse_flat_metrics(&reg.snapshot().to_json());
        assert_eq!(parsed["a.count"].value, 7);
        assert_eq!(parsed["b.gauge"].value, -3);
        assert_eq!(parsed["c.hist_ns"].count, 2);
        assert_eq!(parsed["c.hist_ns"].sum, 400);
        assert!(parsed["c.hist_ns"].mean > 0.0);
    }

    #[test]
    fn digest_ranks_slowest_steps_and_flags_faults() {
        let reg = MetricsRegistry::enabled();
        reg.counter("container.Scheduler.dispatches").add(10);
        reg.counter("container.Scheduler.faults").add(2);
        reg.histogram("scheduler.step.03_es_run_ns").record(50);
        reg.histogram("scheduler.step.10_exit_broadcast_ns")
            .record(5_000_000);
        let readings = parse_flat_metrics(&reg.snapshot().to_json());
        let status = digest("campus", &readings, false, &[]);
        assert_eq!(status.dispatches, 10);
        assert_eq!(status.faults, 2);
        assert_eq!(status.jobs_dispatched, 1);
        assert_eq!(status.jobs_completed, 1);
        assert_eq!(status.jobs_in_flight, 0);
        assert_eq!(status.slowest_steps[0].name, "10_exit_broadcast");
        assert!(status
            .alerts
            .iter()
            .any(|a| a.contains("2 dispatch faults")));
    }

    #[test]
    fn catalog_renders_every_authority_row() {
        let catalog = GridCatalog {
            at_ns: 2_500_000_000,
            authorities: vec![digest("campus-a", &BTreeMap::new(), true, &[])],
            events: vec![RemoteEvent {
                authority: "campus-a".into(),
                seq: 1,
                severity: "warn".into(),
                kind: "dispatch_fault".into(),
                service: "Scheduler".into(),
                virt_ns: 1_000_000_000,
                detail: "uvacg:NoSuchJob: gone".into(),
            }],
        };
        let frame = catalog.render();
        assert!(frame.contains("campus-a"));
        assert!(frame.contains("SLO burn: degraded"));
        assert!(frame.contains("dispatch_fault"));
        assert!(frame.contains("2.500s virtual"));
    }
}
